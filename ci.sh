#!/usr/bin/env bash
# CI entry point: tier-1 verification plus style gates.
#
#   ./ci.sh
#
# Runs, in order:
#   1. release build of the whole workspace          (tier-1)
#   2. the full test suite                           (tier-1)
#   3. rustfmt in check mode
#   4. clippy across the workspace with -D warnings
#   5. a quick-effort end-to-end run of every experiment (smoke test
#      for the harness + engine on real workloads; ~1 s)
#   6. the differential model-conformance suite, quick profile (the
#      Section 2 validator over property-generated workloads plus the
#      oracle-vs-physical and oracle-vs-multihop cross-checks, and the
#      medium sweep running the validator over all three media) — run
#      twice, under CRN_THREADS=1 (sequential stepping) and
#      CRN_THREADS=4 (every network fanned across the worker pool), so
#      the parallel decide/observe phases face the same contract and
#      serial winner replay as the sequential engine
#   7. the same experiment smoke with the in-step validator compiled
#      in (--features validate), so every slot of every experiment is
#      checked against the model contract end to end
#   8. rustdoc across the workspace with warnings denied (broken
#      intra-doc links are errors)
#
# Everything is offline: external dependencies resolve to the stubs
# under vendor/ (see Cargo.toml [workspace.dependencies]).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> experiments all --quick (smoke)"
cargo run --release -q -p crn-bench --bin experiments -- all --quick > /dev/null

echo "==> conformance --quick (differential suite, sequential stepping)"
CRN_THREADS=1 cargo run --release -q -p crn-bench --bin conformance -- --quick

echo "==> conformance --quick (differential suite, 4-worker parallel stepping)"
CRN_THREADS=4 cargo run --release -q -p crn-bench --bin conformance -- --quick

echo "==> experiments all --quick with the in-step validator (smoke)"
cargo run --release -q -p crn-bench --features validate --bin experiments -- all --quick > /dev/null

echo "==> cargo doc --workspace --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "ci.sh: all green"
