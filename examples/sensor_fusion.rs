//! Sensor fusion: a base station aggregates readings from a fleet of
//! sensors with COGCOMP — the "analyzing network condition snapshots"
//! use case from the paper's introduction.
//!
//! Computes min, max, and exact mean temperature over 60 sensors in a
//! single COGCOMP run each, and cross-checks against the ground truth.
//!
//! ```text
//! cargo run --example sensor_fusion
//! ```

use crn::core::aggregate::{Max, MeanAcc, Min};
use crn::core::cogcomp::run_aggregation_default;
use crn::sim::assignment::random_with_core;
use crn::sim::channel_model::StaticChannels;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, c, k) = (60usize, 10usize, 3usize);
    let seed = 7;

    // Synthetic readings: tenths of a degree around 21.5 C.
    let mut rng = StdRng::seed_from_u64(99);
    let readings: Vec<u64> = (0..n).map(|_| 180 + rng.gen_range(0u64..80)).collect();
    let truth_min = *readings.iter().min().unwrap();
    let truth_max = *readings.iter().max().unwrap();
    let truth_mean = readings.iter().sum::<u64>() as f64 / n as f64;

    // Each sensor found its own c usable channels; pairwise overlap is
    // at least k but otherwise the sets are random.
    let make_model = |stream: u64| -> Result<_, crn::sim::SimError> {
        let mut arng = StdRng::seed_from_u64(stream);
        let a = random_with_core(n, c, k, 64, &mut arng)?;
        Ok(StaticChannels::local(a, seed))
    };

    println!("fleet of {n} sensors, c = {c} channels each, overlap >= {k}");
    println!("ground truth: min {truth_min}, max {truth_max}, mean {truth_mean:.2} (deci-deg)");
    println!();

    // Node 0 is the base station; COGCOMP aggregates to it. Associative
    // functions keep every message O(polylog n) (Section 5 discussion).
    let run = run_aggregation_default(
        make_model(1)?,
        readings.iter().map(|&r| Min(r)).collect(),
        seed,
    )?;
    println!(
        "COGCOMP min : {:?} in {} slots (phase-4 steps: {})",
        run.result.as_ref().map(|m| m.0),
        run.slots.unwrap(),
        run.phase4_steps.unwrap()
    );
    assert_eq!(run.result, Some(Min(truth_min)));

    let run = run_aggregation_default(
        make_model(2)?,
        readings.iter().map(|&r| Max(r)).collect(),
        seed + 1,
    )?;
    println!(
        "COGCOMP max : {:?} in {} slots",
        run.result.as_ref().map(|m| m.0),
        run.slots.unwrap()
    );
    assert_eq!(run.result, Some(Max(truth_max)));

    let run = run_aggregation_default(
        make_model(3)?,
        readings.iter().map(|&r| MeanAcc::of(r)).collect(),
        seed + 2,
    )?;
    let mean = run.result.as_ref().map(|m| m.mean()).unwrap();
    println!("COGCOMP mean: {mean:.2} in {} slots", run.slots.unwrap());
    assert!((mean - truth_mean).abs() < 1e-9);

    println!();
    println!("all aggregates match the ground truth exactly.");
    Ok(())
}
