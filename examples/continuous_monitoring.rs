//! Continuous monitoring: build the aggregation tree once, reuse it
//! every epoch.
//!
//! COGCOMP's expensive parts — the COGCAST tree build and its rewind —
//! are paid once; each monitoring epoch afterwards is a single `O(n)`
//! phase-four pass with fresh sensor values. A base station tracks the
//! fleet-wide max temperature over ten epochs while values drift.
//!
//! ```text
//! cargo run --example continuous_monitoring
//! ```

use crn::core::aggregate::Max;
use crn::core::cogcomp::run_repeated_aggregation;
use crn::sim::assignment::shared_core;
use crn::sim::channel_model::StaticChannels;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, c, k) = (30usize, 8usize, 2usize);
    let epochs = 10usize;
    let mut rng = StdRng::seed_from_u64(99);

    // Synthetic drifting readings: a slow warm-up plus noise.
    let rounds: Vec<Vec<Max>> = (0..epochs)
        .map(|e| {
            (0..n)
                .map(|_| Max(200 + 3 * e as u64 + rng.gen_range(0u64..25)))
                .collect()
        })
        .collect();
    let truth: Vec<u64> = rounds
        .iter()
        .map(|r| r.iter().map(|m| m.0).max().unwrap())
        .collect();

    let model = StaticChannels::local(shared_core(n, c, k)?, 7);
    let run = run_repeated_aggregation(model, rounds, 7, 10.0)?;
    assert!(run.is_complete(), "monitoring rounds missed their windows");

    println!(
        "continuous monitoring: n = {n}, c = {c}, k = {k}; tree built once, {} epochs",
        epochs
    );
    println!(
        "total {} slots; tree build + setup {} slots; {} slots per epoch window",
        run.slots.unwrap(),
        run.cfg.phase4_start(),
        3 * run.cfg.round_steps()
    );
    println!();
    println!(
        "{:>6} {:>12} {:>12}",
        "epoch", "measured max", "ground truth"
    );
    for (e, result) in run.results.iter().enumerate() {
        let measured = result.as_ref().expect("complete").0;
        println!("{e:>6} {measured:>12} {:>12}", truth[e]);
        assert_eq!(measured, truth[e]);
    }
    println!();
    println!("every epoch matched ground truth, at O(n) slots per epoch after the first.");
    Ok(())
}
