//! Multi-hop flooding: the same COGCAST, a bigger world.
//!
//! The paper's protocols are single-hop, but its epidemic structure is
//! exactly a flood: informed nodes never stop transmitting, so the
//! message crosses hop after hop. This example floods a firmware
//! notice across a 6×4 sensor grid and a random unit-disk deployment,
//! and shows completion tracking the network diameter.
//!
//! ```text
//! cargo run --example multihop_flood
//! ```

use crn::multihop::{run_flood, Topology};
use crn::sim::assignment::shared_core;
use crn::sim::channel_model::StaticChannels;
use crn::stats::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (c, k) = (4usize, 2usize);
    let trials = 10u64;

    println!("multi-hop COGCAST flood (c = {c}, k = {k}, {trials} trials per topology):");
    println!(
        "{:>16} {:>4} {:>9} {:>12} {:>16}",
        "topology", "n", "diameter", "mean slots", "slots per hop"
    );
    let mut disk_rng = StdRng::seed_from_u64(77);
    let mut topologies: Vec<(String, Topology)> = vec![
        ("complete".into(), Topology::complete(24)),
        ("grid 6x4".into(), Topology::grid(6, 4)),
        ("ring".into(), Topology::ring(24)),
        ("line".into(), Topology::line(24)),
    ];
    // A random deployment: retry until connected.
    loop {
        let t = Topology::unit_disk(24, 0.35, &mut disk_rng);
        if t.is_connected() {
            topologies.push(("unit-disk r=0.35".into(), t));
            break;
        }
    }

    for (name, topo) in topologies {
        let n = topo.len();
        let diameter = topo.diameter().expect("connected");
        let mut slots = Vec::new();
        for seed in 0..trials {
            let model = StaticChannels::local(shared_core(n, c, k)?, seed);
            let run = run_flood(topo.clone(), model, seed, 10_000_000)?;
            slots.push(run.slots.expect("flood completes"));
        }
        let s = Summary::of_u64(&slots).unwrap();
        println!(
            "{name:>16} {n:>4} {diameter:>9} {:>12.1} {:>16.1}",
            s.mean,
            s.mean / diameter as f64
        );
    }
    println!();
    println!("slots-per-hop stays roughly flat: the flood moves at diameter speed.");
    Ok(())
}
