//! Robustness: COGCAST keeps its promise while nodes blink in and out.
//!
//! The paper's Section 1 argues the protocol's uniform structure makes
//! it robust to "temporary faults". Here every node — including the
//! source — is wrapped in a fault injector and loses 30% of its slots
//! at random, plus one node that duty-cycles 50/50 and one that sleeps
//! through a long contiguous window. Broadcast still completes; it just
//! pays roughly the lost airtime.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```

use crn::core::cogcast::CogCast;
use crn::sim::assignment::shared_core;
use crn::sim::channel_model::StaticChannels;
use crn::sim::faults::{FaultSchedule, Flaky};
use crn::sim::Network;
use crn::stats::Summary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, c, k) = (30usize, 8usize, 2usize);
    let trials = 15u64;

    let run_with = |label: &str, schedule_for: &dyn Fn(usize) -> FaultSchedule| {
        let mut slots = Vec::new();
        let mut downtime = Vec::new();
        for seed in 0..trials {
            let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
            let mut protos: Vec<Flaky<CogCast<&str>>> = Vec::with_capacity(n);
            protos.push(Flaky::new(CogCast::source("fw-update"), schedule_for(0)));
            protos.extend((1..n).map(|i| Flaky::new(CogCast::node(), schedule_for(i))));
            let mut net = Network::new(model, protos, seed).unwrap();
            let mut done = None;
            for s in 0..1_000_000u64 {
                net.step();
                if net.protocols().iter().all(|f| f.inner().is_informed()) {
                    done = Some(s + 1);
                    break;
                }
            }
            slots.push(done.expect("broadcast completes despite faults"));
            downtime.push(net.protocols().iter().map(|f| f.downtime()).sum::<u64>());
        }
        let s = Summary::of_u64(&slots).unwrap();
        let d = Summary::of_u64(&downtime).unwrap();
        println!(
            "  {label:<28} mean {:>7.1} slots (p90 {:>5.0}), total downtime {:>6.0} node-slots",
            s.mean, s.p90, d.mean
        );
    };

    println!("COGCAST with fault injection (n = {n}, c = {c}, k = {k}, {trials} trials):");
    run_with("healthy", &|_| FaultSchedule::None);
    run_with("30% random downtime (all)", &|_| FaultSchedule::Random {
        p: 0.3,
    });
    run_with("mixed: duty-cycle + outage", &|i| match i {
        0 => FaultSchedule::None, // keep the source honest... it fails below too
        1 => FaultSchedule::Periodic { period: 2, down: 1 },
        2 => FaultSchedule::Window { from: 0, to: 40 },
        _ => FaultSchedule::Random { p: 0.1 },
    });
    run_with("flaky source (p = 0.5)", &|i| {
        if i == 0 {
            FaultSchedule::Random { p: 0.5 }
        } else {
            FaultSchedule::None
        }
    });
    println!();
    println!("every configuration completed — the epidemic needs no repair protocol.");
    Ok(())
}
