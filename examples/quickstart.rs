//! Quickstart: flood a configuration message through a cognitive radio
//! network with COGCAST and inspect the distribution tree it builds.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use crn::core::bounds;
use crn::core::cogcast::CogCast;
use crn::core::tree::DistributionTree;
use crn::sim::assignment::shared_core;
use crn::sim::channel_model::StaticChannels;
use crn::sim::Network;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A network of 40 nodes; each holds 8 channels out of a crowded
    // band, and any two nodes share at least 2 channels. Labels are
    // local: no two nodes need to agree on channel names.
    let (n, c, k) = (40usize, 8usize, 2usize);
    let seed = 2015;
    let assignment = shared_core(n, c, k)?;
    println!(
        "network: n = {n}, c = {c}, k = {k}, C = {} global channels",
        assignment.total_channels()
    );

    let model = StaticChannels::local(assignment, seed);
    let mut protocols = vec![CogCast::source("channel-map-v2")];
    protocols.extend((1..n).map(|_| CogCast::node()));
    let mut net = Network::new(model, protocols, seed)?;

    // Theorem 4 sizes the budget: O((c/k)·max{1, c/n}·lg n) slots.
    let budget = bounds::cogcast_slots(n, c, k, bounds::DEFAULT_ALPHA);
    println!("running COGCAST with a {budget}-slot budget...");

    let mut completed_at = None;
    for slot in 0..budget {
        net.step();
        let informed = net.protocols().iter().filter(|p| p.is_informed()).count();
        if slot < 10 || informed == n {
            println!("  slot {:>4}: {informed:>3}/{n} informed", slot + 1);
        }
        if informed == n {
            completed_at = Some(slot + 1);
            break;
        }
    }
    let slots = completed_at.expect("COGCAST completes w.h.p. within the budget");
    println!("broadcast complete in {slots} slots (budget {budget})");

    // Every node now knows the message, and the "who informed whom"
    // pointers form a spanning tree rooted at the source (Lemma 5).
    let protocols = net.into_protocols();
    assert!(protocols
        .iter()
        .all(|p| p.message() == Some(&"channel-map-v2")));
    let tree = DistributionTree::from_cogcast(&protocols)?;
    println!(
        "distribution tree: height {}, {} leaves, root degree {}",
        tree.height(),
        tree.leaves(),
        tree.children(tree.root()).len()
    );
    Ok(())
}
