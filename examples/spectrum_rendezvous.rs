//! Why epidemic beats rendezvous: measure COGCAST against the
//! rendezvous-broadcast baseline as channels multiply, then watch the
//! Lemma 11 hitting-game floor hold against two players.
//!
//! ```text
//! cargo run --example spectrum_rendezvous
//! ```

use crn::core::bounds::hitting_game_floor;
use crn::core::cogcast::run_broadcast;
use crn::lowerbounds::players::{survival_curve, FreshPlayer, UniformPlayer};
use crn::rendezvous::broadcast::run_baseline_broadcast;
use crn::sim::assignment::shared_core;
use crn::sim::channel_model::StaticChannels;
use crn::stats::Summary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, k) = (48usize, 2usize);
    let trials = 10u64;

    println!("local broadcast, n = {n}, k = {k}, mean slots over {trials} trials:");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "c", "COGCAST", "rendezvous", "speedup"
    );
    for c in [4usize, 8, 16, 24] {
        let mut ours = Vec::new();
        let mut base = Vec::new();
        for seed in 0..trials {
            let model = StaticChannels::local(shared_core(n, c, k)?, seed);
            ours.push(run_broadcast(model, seed, 10_000_000)?.slots.unwrap());
            let model = StaticChannels::local(shared_core(n, c, k)?, seed + 100);
            base.push(
                run_baseline_broadcast(model, seed + 100, 10_000_000)?
                    .slots
                    .unwrap(),
            );
        }
        let ours = Summary::of_u64(&ours).unwrap().mean;
        let base = Summary::of_u64(&base).unwrap().mean;
        println!("{c:>6} {ours:>12.1} {base:>12.1} {:>8.1}x", base / ours);
    }
    println!("(the speedup column tracks the paper's factor-c separation)");
    println!();

    // The lower-bound side: nobody wins the (c,k)-bipartite hitting
    // game by round c²/(8k) with probability 1/2 (Lemma 11).
    let (c, gk) = (32usize, 4usize);
    let floor = hitting_game_floor(c, gk, 2.0);
    println!("(c = {c}, k = {gk})-bipartite hitting game, floor c²/(8k) = {floor}:");
    let uni = survival_curve(c, gk, 400, floor * 4, 5, UniformPlayer::new);
    let fresh = survival_curve(c, gk, 400, floor * 4, 6, FreshPlayer::new);
    for (label, curve) in [("uniform", uni), ("fresh", fresh)] {
        println!(
            "  {label:>8} player: P[win by floor] = {:.3}, by 2x floor = {:.3}, by 4x floor = {:.3}",
            curve[floor as usize - 1],
            curve[2 * floor as usize - 1],
            curve[4 * floor as usize - 1],
        );
        assert!(curve[floor as usize - 1] < 0.5, "Lemma 11 floor violated");
    }
    println!("  both stay below 1/2 at the floor, as Lemma 11 demands.");
    Ok(())
}
