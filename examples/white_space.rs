//! TV white space, end to end: sense the spectrum, broadcast the
//! coordinator's channel map, aggregate interference reports.
//!
//! The paper's motivating scenario is secondary users scavenging
//! leftover spectrum in licensed bands. This example builds the whole
//! pipeline on the library:
//!
//! 1. a synthetic spectrum with primary users and noisy per-node
//!    sensing produces each node's channel set (with `k` database
//!    anchors realizing the overlap guarantee);
//! 2. COGCAST floods the coordinator's configuration message;
//! 3. COGCOMP aggregates, per node, the worst (max) interference
//!    reading and the set of bands anyone observed busy.
//!
//! ```text
//! cargo run --example white_space
//! ```

use crn::core::aggregate::{BitSet, Max};
use crn::core::bounds;
use crn::core::cogcast::run_broadcast;
use crn::core::cogcomp::run_aggregation_default;
use crn::sim::channel_model::StaticChannels;
use crn::sim::sensing::{sense_assignment, SpectrumConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, c, k) = (24usize, 8usize, 2usize);
    let cfg = SpectrumConfig::tv_white_space();
    let mut rng = StdRng::seed_from_u64(2015);

    // Step 1: sensing.
    let (assignment, report) = sense_assignment(n, c, k, cfg, &mut rng)?;
    let free_bands = report.occupied.iter().filter(|&&b| !b).count();
    println!(
        "spectrum: {} bands, {} free; anchors (database channels): {:?}",
        cfg.bands,
        free_bands,
        report.anchors.iter().map(|g| g.0).collect::<Vec<_>>()
    );
    println!(
        "sensing: {} total flipped readings, {} interfering picks across the fleet",
        report.sensing_errors.iter().sum::<usize>(),
        report.interfering_picks.iter().sum::<usize>()
    );
    println!(
        "assignment: n = {n}, c = {c}, min pairwise overlap = {}",
        assignment.min_pairwise_overlap()
    );
    println!();

    // Step 2: the coordinator floods its configuration with COGCAST.
    let model = StaticChannels::local(assignment.clone(), 42);
    let budget = bounds::cogcast_slots(n, c, k, bounds::DEFAULT_ALPHA);
    let run = run_broadcast(model, 42, budget)?;
    println!(
        "COGCAST: channel map distributed in {} slots (budget {budget})",
        run.slots.expect("completes w.h.p.")
    );

    // Step 3a: aggregate the worst interference reading (max picks).
    let model = StaticChannels::local(assignment.clone(), 43);
    let readings: Vec<Max> = report
        .interfering_picks
        .iter()
        .map(|&i| Max(i as u64))
        .collect();
    let agg = run_aggregation_default(model, readings, 43)?;
    println!(
        "COGCOMP: worst interfering-pick count = {} (in {} slots)",
        agg.result.as_ref().map(|m| m.0).expect("complete"),
        agg.slots.unwrap()
    );
    assert_eq!(
        agg.result.map(|m| m.0),
        report.interfering_picks.iter().map(|&i| i as u64).max()
    );

    // Step 3b: union of busy bands anyone selected (first 128 bands).
    let model = StaticChannels::local(assignment.clone(), 44);
    let sets: Vec<BitSet> = (0..n)
        .map(|node| {
            let mut s = BitSet::default();
            for g in assignment.channels_of(node) {
                if report.occupied[g.index()] && g.0 < 128 {
                    let mut one = BitSet::of(g.0);
                    crn::core::aggregate::Aggregate::merge(&mut one, &s);
                    s = one;
                }
            }
            s
        })
        .collect();
    let agg = run_aggregation_default(model, sets, 44)?;
    let busy = agg.result.expect("complete");
    println!(
        "COGCOMP: {} distinct occupied bands in active use fleet-wide",
        busy.len()
    );
    println!();
    println!("the coordinator now knows exactly which picks to reassign.");
    Ok(())
}
