//! COGCAST does not care who is hostile: the same unmodified protocol
//! completes under per-slot channel churn (the dynamic model of
//! Section 7) and against n-uniform jamming adversaries (Theorem 18).
//!
//! ```text
//! cargo run --example jamming_resilience
//! ```

use crn::core::cogcast::{run_broadcast, CogCast};
use crn::jamming::{run_jammed_broadcast, JammerStrategy, SilencerJammer};
use crn::sim::assignment::full_overlap;
use crn::sim::channel_model::{DynamicSharedCore, StaticChannels};
use crn::sim::Network;
use crn::stats::Summary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials = 10u64;

    // Part 1: dynamic channel assignments. The non-core channels of
    // every node are re-drawn each slot with the given probability;
    // the per-slot overlap guarantee (the k-channel core) is all
    // COGCAST needs.
    let (n, c, k) = (24usize, 8usize, 2usize);
    println!("dynamic channels: n = {n}, c = {c}, k = {k} (mean slots over {trials} trials)");
    for churn in [0.0, 0.5, 1.0] {
        let mut slots = Vec::new();
        for seed in 0..trials {
            let model = DynamicSharedCore::new(n, c, k, 60, churn, seed)?;
            slots.push(run_broadcast(model, seed, 10_000_000)?.slots.unwrap());
        }
        let s = Summary::of_u64(&slots).unwrap();
        println!(
            "  churn {churn:>4.1}: {:>7.1} slots (p90 {:>5.0})",
            s.mean, s.p90
        );
    }
    println!();

    // Part 2: an n-uniform jammer disables up to j channels per node
    // per slot. With j < c/2 the effective pairwise overlap is c − 2j
    // and COGCAST still completes (Theorem 18).
    let (n, c) = (20usize, 12usize);
    println!("n-uniform jamming: n = {n}, c = {c} shared channels");
    println!(
        "{:>10} {:>16} {:>10} {:>10} {:>10}",
        "jam budget", "eff. overlap", "random", "sweep", "targeted"
    );
    for j in [0usize, 2, 4, 5] {
        let mut row = format!("{j:>10} {:>16}", c - 2 * j);
        for strategy in JammerStrategy::ALL {
            let mut slots = Vec::new();
            for seed in 0..trials {
                let run = run_jammed_broadcast(n, c, j, strategy, seed, 60.0)?;
                slots.push(run.slots.expect("completes within the padded budget"));
            }
            row.push_str(&format!(" {:>10.1}", Summary::of_u64(&slots).unwrap().mean));
        }
        println!("{row}");
    }
    println!();
    println!("broadcast completed in every configuration — no protocol changes needed.");
    println!();

    // Part 3: the limit of that robustness (Theorem 17's intuition).
    // An *adaptive* adversary — one that sees each slot's committed
    // channel choices before deciding what to jam — silences the
    // network with a budget of just one channel per node per slot.
    let (n, c) = (12usize, 8usize);
    let model = StaticChannels::local(full_overlap(n, c)?, 7);
    let mut protos = vec![CogCast::source(())];
    protos.extend((1..n).map(|_| CogCast::node()));
    let mut net = Network::with_interference(model, protos, 7, Box::new(SilencerJammer::new(1)))?;
    net.run_slots(20_000);
    let informed = net.protocols().iter().filter(|p| p.is_informed()).count();
    println!("adaptive jammer (budget 1): {informed}/{n} informed after 20,000 slots");
    assert_eq!(informed, 1, "the adaptive adversary stalls the epidemic");
    println!("— the oblivious-vs-adaptive gap is exactly Theorem 18 vs Theorem 17.");
    Ok(())
}
