//! # crn — Efficient Communication in Cognitive Radio Networks
//!
//! A from-scratch Rust reproduction of *Efficient Communication in
//! Cognitive Radio Networks* (Gilbert, Kuhn, Newport, Zheng; PODC
//! 2015): the COGCAST local-broadcast and COGCOMP data-aggregation
//! protocols, the single-hop cognitive radio network model they run on,
//! the rendezvous baselines they are measured against, the bipartite
//! hitting games behind the paper's lower bounds, the backoff substrate
//! that realizes the abstract collision model, and the jamming
//! reduction of Theorem 18.
//!
//! This facade re-exports every sub-crate under a stable path:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `crn-sim` | the network model and slot engine |
//! | [`core`] | `crn-core` | COGCAST, COGCOMP, trees, bounds |
//! | [`rendezvous`] | `crn-rendezvous` | baseline protocols |
//! | [`lowerbounds`] | `crn-lowerbounds` | hitting games & reductions |
//! | [`backoff`] | `crn-backoff` | decay contention resolution |
//! | [`jamming`] | `crn-jamming` | n-uniform jammers, Theorem 18 |
//! | [`stats`] | `crn-stats` | summaries, fits, tables |
//!
//! ## Quickstart
//!
//! ```
//! use crn::core::cogcast::run_broadcast_default;
//! use crn::sim::{assignment::shared_core, channel_model::StaticChannels};
//!
//! // 32 nodes, 8 channels each, pairwise overlap >= 2, local labels.
//! let model = StaticChannels::local(shared_core(32, 8, 2)?, 42);
//! let run = run_broadcast_default(model, 42, 10.0)?;
//! println!("broadcast finished in {:?} slots", run.slots);
//! assert!(run.completed());
//! # Ok::<(), crn::sim::SimError>(())
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios and
//! DESIGN.md / EXPERIMENTS.md for the experiment index.

#![warn(missing_docs)]

pub use crn_backoff as backoff;
pub use crn_core as core;
pub use crn_jamming as jamming;
pub use crn_lowerbounds as lowerbounds;
pub use crn_multihop as multihop;
pub use crn_rendezvous as rendezvous;
pub use crn_sim as sim;
pub use crn_stats as stats;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crn_core::aggregate::{Aggregate, Collect, Count, Max, MeanAcc, Min, Sum};
    pub use crn_core::bounds;
    pub use crn_core::cogcast::{run_broadcast, run_broadcast_default, BroadcastRun, CogCast};
    pub use crn_core::cogcomp::{
        run_aggregation, run_aggregation_default, AggregationRun, CogComp, CogCompConfig,
    };
    pub use crn_core::tree::DistributionTree;
    pub use crn_sim::{
        assignment, Action, ChannelAssignment, ChannelModel, DynamicSharedCore, Event,
        GlobalChannel, LocalChannel, Network, NodeCtx, NodeId, Protocol, RunOutcome, SimError,
        StaticChannels,
    };
}
