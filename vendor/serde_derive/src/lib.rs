//! No-op derive macros for the offline serde stand-in.
//!
//! The companion `serde` crate blanket-implements its marker traits for
//! every type, so these derives have nothing to generate: they accept
//! the item and expand to nothing. They exist so `#[derive(Serialize,
//! Deserialize)]` keeps compiling exactly as written against real serde.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
