//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API the workspace's
//! benches use — `criterion_group!`/`criterion_main!`, `Criterion`
//! builder knobs, benchmark groups, `BenchmarkId`, and `Bencher::iter`
//! — on top of plain `std::time::Instant` wall-clock timing. There is
//! no statistical analysis or HTML report: each benchmark warms up,
//! sizes its iteration batch to the configured measurement time, runs
//! `sample_size` batches, and prints min/median/mean nanoseconds per
//! iteration. That is enough to compare before/after on the same
//! machine, which is all the repository's perf workflow needs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of timed samples (batches) per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Total time budget the samples should roughly fill.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Untimed warm-up period before sampling starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.to_string(), f);
        self
    }

    /// Opens a named group; benchmarks inside print as `group/id`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one<F>(&mut self, id: String, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns_per_iter: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        bencher.report(&id);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(full, f);
        self
    }

    /// Runs `group/id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(full, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; real criterion finalizes reports).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("fn", param)` → `fn/param`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns_per_iter: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, calling it repeatedly.
    ///
    /// Warm-up doubles the batch size until `warm_up_time` has elapsed,
    /// which also yields a time-per-iteration estimate; the measured
    /// phase then runs `sample_size` fixed-size batches sized so the
    /// whole phase fits in roughly `measurement_time`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up with geometrically growing batches.
        let warm_start = Instant::now();
        let mut batch: u64 = 1;
        let last_batch_time = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = t0.elapsed();
            if warm_start.elapsed() >= self.warm_up_time {
                break elapsed;
            }
            batch = batch.saturating_mul(2);
        };
        let est_ns_per_iter =
            (last_batch_time.as_nanos() as f64 / batch as f64).max(1.0);

        // Size samples so sample_size batches fill measurement_time.
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let iters = (budget_ns / est_ns_per_iter / self.sample_size as f64)
            .ceil()
            .max(1.0) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.samples_ns_per_iter = samples;
        self.iters_per_sample = iters;
    }

    fn report(&self, id: &str) {
        if self.samples_ns_per_iter.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns_per_iter.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{id:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            sorted.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `fn main()` running the listed groups.
///
/// Accepts (and ignores) harness CLI flags such as `--bench`, which
/// `cargo bench` always passes.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut cr = fast_criterion();
        let mut ran = false;
        cr.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(ran);
    }

    #[test]
    fn group_and_id_formatting() {
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        let mut cr = fast_criterion();
        let mut g = cr.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
    }
}
