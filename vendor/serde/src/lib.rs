//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so
//! that downstream users (and a future JSON/CSV exporter) have the
//! hooks, but no code path in the repository actually serializes
//! anything yet — results files are written by hand in `crn-bench`.
//! Since the build container has no crates.io access, this crate
//! provides the two trait names as blanket-implemented markers, and
//! [`serde_derive`] provides no-op derive macros. Swapping the real
//! serde back in later is a one-line Cargo change; no source edits.

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de> + ?Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// `serde::de` module shim.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// `serde::ser` module shim.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_serialize<T: Serialize>() {}
    fn assert_deserialize<T: for<'de> Deserialize<'de>>() {}

    #[test]
    fn blanket_impls_cover_arbitrary_types() {
        struct Plain;
        assert_serialize::<Plain>();
        assert_deserialize::<Plain>();
        assert_serialize::<Vec<String>>();
    }
}
