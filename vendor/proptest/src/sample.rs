//! Sampling strategies over explicit value lists
//! (`proptest::sample::select`).

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy choosing uniformly from `options`; must be non-empty.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone + Debug> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn select_eventually_picks_everything() {
        let s = select(vec![10, 20, 30]);
        let mut rng = case_rng("sample::select", 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one option")]
    fn empty_select_panics() {
        select(Vec::<u8>::new());
    }
}
