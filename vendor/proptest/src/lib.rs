//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the subset of the proptest 1.x surface this workspace
//! uses — the `proptest!`, `prop_assert!`, `prop_assert_eq!` and
//! `prop_oneof!` macros, `Strategy` with `prop_map`/`prop_flat_map`,
//! range / tuple / `Just` / `collection::vec` / `sample::select` /
//! `any::<T>()` strategies, and `ProptestConfig::with_cases` — on top
//! of a deterministic per-test RNG.
//!
//! Differences from real proptest, deliberate for an offline build:
//! - **No shrinking.** A failing case reports the exact generated
//!   inputs (every parameter is `Debug`-printed), which is enough to
//!   paste into a unit test; it just won't be minimal.
//! - **Fully deterministic.** Case `i` of test `t` always sees the same
//!   inputs, derived from `(module_path!::test_name, i)`; there is no
//!   wall-clock entropy, so CI and local runs explore identical cases.
//! - **`proptest-regressions` files are not consulted.** Known bad
//!   inputs must be pinned as explicit unit tests (this repo does).

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-imported surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current property case with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn` runs `config.cases` deterministic
/// cases, sampling every parameter from its strategy.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                |__rng, __inputs| {
                    $crate::__proptest_case!(__rng, __inputs, $body; $($params)*)
                },
            );
        }
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, $inputs:ident, $body:block;) => {{
        $body
        ::core::result::Result::Ok(())
    }};
    // `name: Type` — implicit `any::<Type>()`.
    ($rng:ident, $inputs:ident, $body:block;
     $pname:ident : $pty:ty $(, $($rest:tt)*)?) => {{
        let __value = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$pty>(),
            $rng,
        );
        $inputs.push(format!("{} = {:?}", stringify!($pname), __value));
        let $pname = __value;
        $crate::__proptest_case!($rng, $inputs, $body; $($($rest)*)?)
    }};
    // `pattern in strategy`.
    ($rng:ident, $inputs:ident, $body:block;
     $pat:pat_param in $strategy:expr $(, $($rest:tt)*)?) => {{
        let __value = $crate::strategy::Strategy::sample(&($strategy), $rng);
        $inputs.push(format!("{} = {:?}", stringify!($pat), __value));
        let $pat = __value;
        $crate::__proptest_case!($rng, $inputs, $body; $($($rest)*)?)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(
            a in 3usize..9,
            b in -5i64..=5,
            x in 0.25f64..4.0,
            flag: bool,
        ) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.25..4.0).contains(&x));
            prop_assert!(flag || !flag);
        }

        #[test]
        fn tuple_and_pattern_binding((n, c) in (1usize..5, 10u32..20)) {
            prop_assert!(n >= 1 && n < 5);
            prop_assert!((10..20).contains(&c));
        }

        #[test]
        fn early_return_is_allowed(n in 0usize..10) {
            if n == 0 {
                return Ok(());
            }
            prop_assert!(n > 0);
        }
    }

    proptest! {
        #[test]
        fn flat_map_and_vec_sizes(
            v in (1usize..6).prop_flat_map(|len| {
                (Just(len), crate::collection::vec(0u32..100, len))
            })
        ) {
            let (len, items) = v;
            prop_assert_eq!(items.len(), len);
            for &i in &items {
                prop_assert!(i < 100);
            }
        }

        #[test]
        fn oneof_covers_all_arms(choice in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&choice));
        }

        #[test]
        fn select_picks_from_the_list(
            x in crate::sample::select(vec!["a", "b", "c"])
        ) {
            prop_assert!(["a", "b", "c"].contains(&x));
        }
    }

    #[test]
    fn cases_are_deterministic_per_test_and_case() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let mut r1 = crate::test_runner::case_rng("t", 3);
        let mut r2 = crate::test_runner::case_rng("t", 3);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        let mut r3 = crate::test_runner::case_rng("t", 4);
        let a = s.sample(&mut r3);
        let mut r4 = crate::test_runner::case_rng("u", 4);
        let b = s.sample(&mut r4);
        // Overwhelmingly likely to differ across case index / test name.
        let mut r5 = crate::test_runner::case_rng("t", 3);
        assert!(a != s.sample(&mut r5) || b != a);
    }

    #[test]
    #[should_panic(expected = "inputs")]
    fn failing_property_reports_inputs() {
        proptest! {
            #[test]
            fn always_fails(n in 0usize..10) {
                prop_assert!(n > 100, "n was {n}");
            }
        }
        always_fails();
    }
}
