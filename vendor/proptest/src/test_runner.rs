//! Case execution: config, deterministic per-case RNG, and failure
//! reporting with the generated inputs attached.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

pub use rand::rngs::StdRng as TestRng;
use rand::SeedableRng;

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single property case failed.
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion (what `prop_assert!` produces).
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias for [`TestCaseError::fail`], matching proptest's API.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Result type a property body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic RNG for case `case` of the test named `name`.
///
/// FNV-1a over the test path, mixed with the case index, so every test
/// gets an independent, reproducible stream.
pub fn case_rng(name: &str, case: u64) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Runs `config.cases` cases of one property, panicking (with the
/// generated inputs) on the first failure.
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut property: F)
where
    F: FnMut(&mut TestRng, &mut Vec<String>) -> TestCaseResult,
{
    for case in 0..config.cases as u64 {
        let mut rng = case_rng(name, case);
        let mut inputs: Vec<String> = Vec::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut rng, &mut inputs)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(err)) => panic!(
                "property `{name}` failed at case {case}/{}\n  {err}\n  inputs: {{ {} }}",
                config.cases,
                inputs.join(", "),
            ),
            Err(payload) => {
                eprintln!(
                    "property `{name}` panicked at case {case}/{}\n  inputs: {{ {} }}",
                    config.cases,
                    inputs.join(", "),
                );
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_is_stable_for_same_inputs() {
        use rand::Rng;
        let a: u64 = case_rng("x::y", 0).gen();
        let b: u64 = case_rng("x::y", 0).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn run_cases_runs_the_requested_count() {
        let mut count = 0u32;
        run_cases("counter", &ProptestConfig::with_cases(17), |_, _| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn run_cases_surfaces_failures() {
        run_cases("failing", &ProptestConfig::with_cases(3), |_, inputs| {
            inputs.push("n = 1".to_string());
            Err(TestCaseError::fail("boom"))
        });
    }
}
