//! `any::<T>()` — default strategies for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

arbitrary_via_gen!(bool, u8, u16, u32, u64, u128, i8, i16, i32, i64, f32, f64);

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.gen::<u64>() as usize
    }
}

impl Arbitrary for isize {
    fn arbitrary(rng: &mut TestRng) -> isize {
        rng.gen::<i64>() as isize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn any_bool_takes_both_values() {
        let s = any::<bool>();
        let mut rng = case_rng("arbitrary::bool", 0);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn any_u64_varies() {
        let s = any::<u64>();
        let mut rng = case_rng("arbitrary::u64", 0);
        let a = s.sample(&mut rng);
        let b = s.sample(&mut rng);
        assert_ne!(a, b);
    }
}
