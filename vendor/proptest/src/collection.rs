//! Collection strategies (`proptest::collection::vec`).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A length specification for generated collections.
///
/// Converts from a fixed `usize`, a half-open `Range<usize>`, or an
/// inclusive `RangeInclusive<usize>`, matching proptest's `SizeRange`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            lo: len,
            hi_inclusive: len,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = case_rng("collection::vec", 0);
        let fixed = vec(0u32..5, 7usize);
        assert_eq!(fixed.sample(&mut rng).len(), 7);

        let ranged = vec(0u32..5, 2..6);
        for _ in 0..100 {
            let v = ranged.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn nested_vec_of_vec() {
        let mut rng = case_rng("collection::nested", 0);
        let s = vec(vec(0u8..2, 3usize), 4usize);
        let v = s.sample(&mut rng);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|inner| inner.len() == 3));
    }
}
