//! The [`Strategy`] trait and the combinators the workspace uses:
//! ranges, tuples, [`Just`], `prop_map`, `prop_flat_map`, and the
//! boxed [`Union`] behind `prop_oneof!`.

use std::fmt::Debug;

use crate::test_runner::TestRng;
use rand::Rng;

/// Something that can generate a value for one property case.
///
/// Unlike real proptest there is no value *tree* (no shrinking): a
/// strategy is just a deterministic sampler over the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// `strategy.prop_flat_map(f)`.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = case_rng("strategy::map", 0);
        let doubled = (1u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.sample(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
        let nested = (1usize..4).prop_flat_map(|n| (Just(n), 0usize..n));
        for _ in 0..100 {
            let (n, i) = nested.sample(&mut rng);
            assert!(i < n);
        }
    }

    #[test]
    fn union_samples_every_arm_eventually() {
        let u = Union::new(vec![Just(0u8).boxed(), Just(1u8).boxed()]);
        let mut rng = case_rng("strategy::union", 0);
        let mut seen = [false; 2];
        for _ in 0..200 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let s = 0u8..=1;
        let mut rng = case_rng("strategy::incl", 0);
        let mut seen = [false; 2];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn empty_union_panics() {
        Union::<u8>::new(Vec::new());
    }
}
