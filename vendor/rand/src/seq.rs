//! Sequence helpers: shuffling, choosing, and index sampling.

use crate::{Rng, RngCore};

/// Extension methods on slices (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, back to front).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Returns an iterator over `amount` distinct elements chosen
    /// uniformly without replacement (in no particular order). If the
    /// slice has fewer than `amount` elements, yields all of them.
    fn choose_multiple<'a, R: Rng + ?Sized>(
        &'a self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'a, Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = crate::uniform_below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[crate::uniform_below(rng, self.len() as u64) as usize])
        }
    }

    fn choose_multiple<'a, R: Rng + ?Sized>(
        &'a self,
        rng: &mut R,
        amount: usize,
    ) -> SliceChooseIter<'a, T> {
        let amount = amount.min(self.len());
        let indices = index::sample(rng, self.len(), amount);
        SliceChooseIter {
            slice: self,
            indices: indices.into_vec().into_iter(),
        }
    }
}

/// Iterator returned by [`SliceRandom::choose_multiple`].
#[derive(Debug)]
pub struct SliceChooseIter<'a, T> {
    slice: &'a [T],
    indices: std::vec::IntoIter<usize>,
}

impl<'a, T> Iterator for SliceChooseIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        self.indices.next().map(|i| &self.slice[i])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.indices.size_hint()
    }
}

impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

/// Index sampling (subset of `rand::seq::index`).
pub mod index {
    use super::*;

    /// A set of sampled indices.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// The sampled indices as a vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// True if no indices were sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Iterates over the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices from `0..length`, uniformly
    /// without replacement (partial Fisher–Yates).
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`.
    pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} indices from 0..{length}"
        );
        let mut pool: Vec<usize> = (0..length).collect();
        let mut out = Vec::with_capacity(amount);
        for i in 0..amount {
            let j = i + crate::uniform_below(rng, (length - i) as u64) as usize;
            pool.swap(i, j);
            out.push(pool[i]);
        }
        IndexVec(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let set: HashSet<u32> = v.iter().copied().collect();
        assert_eq!(set.len(), 50);
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "50! shuffles are never identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [1, 2, 3];
        let mut seen = HashSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_multiple_is_distinct_and_sized() {
        let mut rng = StdRng::seed_from_u64(3);
        let v: Vec<u32> = (0..20).collect();
        for amount in [0usize, 1, 5, 20] {
            let picks: Vec<u32> = v.choose_multiple(&mut rng, amount).copied().collect();
            assert_eq!(picks.len(), amount);
            let set: HashSet<u32> = picks.iter().copied().collect();
            assert_eq!(set.len(), amount, "duplicates in sample");
        }
    }

    #[test]
    fn index_sample_uniformity_smoke() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 10];
        for _ in 0..2000 {
            for i in index::sample(&mut rng, 10, 3) {
                counts[i] += 1;
            }
        }
        // Each index expected 600 times; allow wide tolerance.
        assert!(counts.iter().all(|&c| (400..800).contains(&c)), "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn index_sample_rejects_oversized() {
        let mut rng = StdRng::seed_from_u64(5);
        index::sample(&mut rng, 3, 4);
    }
}
