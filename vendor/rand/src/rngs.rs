//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard RNG: xoshiro256++ with SplitMix64 seeding.
///
/// Not the upstream `rand::rngs::StdRng` (ChaCha12) — this is an offline
/// stand-in — but it has the same shape: deterministic for a fixed seed,
/// platform-independent, and statistically strong for simulation use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // xoshiro's all-zero state is a fixed point; SplitMix64 cannot
        // produce four zero words from any input, but guard anyway.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_stability() {
        // Pin the stream so accidental algorithm changes are caught:
        // recorded experiment artifacts depend on this exact sequence.
        let mut r = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        // SplitMix64(0) = 0xE220A8397B1DCDAF seeds word 0; the first
        // output mixes words 0 and 3 — just assert it is nonzero and
        // stable across two constructions (the full KAT lives in the
        // equality above).
        assert_ne!(first[0], 0);
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = StdRng::seed_from_u64(99);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
