//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The container this repository builds in has no access to crates.io,
//! so the workspace vendors a minimal, dependency-free implementation of
//! the exact `rand` surface it uses: [`rngs::StdRng`] (xoshiro256++
//! seeded via SplitMix64 — deterministic and platform-independent),
//! the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, and the
//! [`seq`] helpers (`SliceRandom`, `index::sample`).
//!
//! Determinism contract: for a fixed seed, every method here produces
//! the same stream on every platform and in every release of this
//! vendored crate. The simulation results recorded in EXPERIMENTS.md
//! depend on that stability.

pub mod rngs;
pub mod seq;

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator seedable from a `u64` (subset of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it with
    /// SplitMix64 so nearby seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`] (stand-in for
/// sampling from the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one uniform value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, bound)` via Lemire's widening-multiply
/// rejection method.
#[inline]
pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Threshold for rejection: (2^64 - bound) % bound == 2^64 % bound.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Uniform value of type `T` (ints over their full domain, floats in
    /// `[0, 1)`).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        f64::standard_sample(self) < p
    }

    /// `true` with probability `numerator / denominator`.
    #[inline]
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "denominator must be positive");
        assert!(numerator <= denominator, "ratio must be <= 1");
        uniform_below(self, denominator as u64) < numerator as u64
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_is_in_bounds_and_hits_all_values() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let x = r.gen_range(0u32..5);
            assert!(x < 5);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_inclusive_hits_endpoints() {
        let mut r = StdRng::seed_from_u64(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            let x = r.gen_range(0usize..=3);
            assert!(x <= 3);
            lo_seen |= x == 0;
            hi_seen |= x == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_range_negative_ints() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let x = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _ = r.gen_range(3u32..3);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4500..=5500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn rng_usable_through_mut_reference() {
        fn takes_rng(rng: &mut impl Rng) -> u64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(1);
        let _ = takes_rng(&mut r);
        // And through a reborrowed &mut StdRng, as generator code does.
        let rr = &mut r;
        let _ = takes_rng(rr);
    }
}
