//! Offline stand-in for the `bytes` crate: a cheaply cloneable,
//! immutable byte buffer with the subset of the `Bytes` API the
//! workspace uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    ///
    /// (The real `Bytes` borrows statics without copying; this stand-in
    /// copies once at construction, which is irrelevant at the payload
    /// sizes the emulation layer uses.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(a[0], b'h');
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn debug_escapes_non_printable() {
        let s = format!("{:?}", Bytes::from(vec![b'a', 0x01]));
        assert_eq!(s, "b\"a\\x01\"");
    }
}
