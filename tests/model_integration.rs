//! Cross-crate integration: the model layers — backoff realizing the
//! abstract collision slot, jamming through the engine, dynamic
//! assignments, and whole-stack determinism.

use crn::backoff::decay::{recommended_rounds, resolve_contention};
use crn::core::aggregate::Sum;
use crn::core::cogcast::run_broadcast;
use crn::core::cogcomp::run_aggregation_default;
use crn::jamming::{jammed_budget, run_jammed_broadcast, JammerStrategy};
use crn::sim::channel_model::DynamicSharedCore;
use crn::sim::SimRng;
use rand::SeedableRng;

#[test]
fn backoff_realizes_the_abstract_slot_cheaply() {
    // Footnote 4: the abstract slot costs O(log² n) physical rounds.
    // With n_max = 1024, epoch_len = 11, budget 8·11² ≈ 976; the mean
    // must be far below that and the success rate essentially 1.
    let n_max = 1024usize;
    let budget = recommended_rounds(n_max);
    for m in [1usize, 3, 33, 1024] {
        let trials = 200;
        let mut total = 0u64;
        let mut fails = 0usize;
        for seed in 0..trials {
            let mut rng = SimRng::seed_from_u64(seed);
            match resolve_contention(m, n_max, budget, &mut rng).unwrap() {
                Some(r) => total += r.rounds,
                None => fails += 1,
            }
        }
        assert!(fails <= 2, "m={m}: {fails}/{trials} failures");
        let mean = total as f64 / (trials as usize - fails) as f64;
        assert!(
            mean < budget as f64 / 4.0,
            "m={m}: mean {mean} close to the budget {budget}"
        );
    }
}

#[test]
fn jamming_budget_interpolates_to_unjammed() {
    assert_eq!(
        jammed_budget(20, 8, 0, 10.0),
        crn::core::bounds::cogcast_slots(20, 8, 8, 10.0)
    );
    assert!(jammed_budget(20, 8, 3, 10.0) > jammed_budget(20, 8, 1, 10.0));
}

#[test]
fn jammed_broadcast_completes_near_effective_overlap_prediction() {
    // Theorem 18: with jam budget j, behaviour tracks overlap c − 2j.
    // Compare the jammed run against an unjammed run at k = c − 2j.
    let (n, c, j) = (20usize, 12usize, 3usize);
    let trials = 10;
    let mut jammed_total = 0u64;
    let mut proxy_total = 0u64;
    for seed in 0..trials {
        let run = run_jammed_broadcast(n, c, j, JammerStrategy::Random, seed, 60.0).unwrap();
        jammed_total += run.slots.unwrap();
        let a = crn::sim::assignment::shared_core(n, c, c - 2 * j).unwrap();
        let model = crn::sim::channel_model::StaticChannels::local(a, seed);
        proxy_total += run_broadcast(model, seed, 10_000_000)
            .unwrap()
            .slots
            .unwrap();
    }
    let ratio = jammed_total as f64 / proxy_total as f64;
    assert!(
        (0.2..5.0).contains(&ratio),
        "jammed time should track the c-2k proxy within small constants: {ratio}"
    );
}

#[test]
fn dynamic_model_supports_full_protocol_stack() {
    // COGCAST under 100% churn still completes; COGCOMP (which needs a
    // static tree) runs on the static special case of the same model.
    for seed in 0..3 {
        let model = DynamicSharedCore::new(24, 8, 2, 80, 1.0, seed).unwrap();
        let run = run_broadcast(model, seed, 10_000_000).unwrap();
        assert!(run.completed(), "dynamic COGCAST seed {seed}");

        let model = DynamicSharedCore::new(24, 8, 2, 80, 0.0, seed).unwrap();
        let values: Vec<Sum> = (0..24).map(Sum).collect();
        let run = run_aggregation_default(model, values, seed).unwrap();
        assert!(run.is_complete(), "static-dynamic COGCOMP seed {seed}");
        assert_eq!(run.result, Some(Sum((0..24).sum())));
    }
}

#[test]
fn whole_stack_is_deterministic() {
    let run_once = |seed: u64| {
        let model = DynamicSharedCore::new(16, 6, 2, 30, 0.5, seed).unwrap();
        run_broadcast(model, seed, 100_000)
            .unwrap()
            .informed_per_slot
    };
    assert_eq!(run_once(7), run_once(7));

    let jam_once = |seed: u64| {
        run_jammed_broadcast(12, 8, 2, JammerStrategy::Random, seed, 30.0)
            .unwrap()
            .informed_per_slot
    };
    assert_eq!(jam_once(9), jam_once(9));
}
