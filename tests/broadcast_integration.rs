//! Cross-crate integration: COGCAST end to end, against every overlap
//! pattern, both label models, the theorem budgets, and the baselines.

use crn::core::bounds;
use crn::core::cogcast::{run_broadcast, CogCast};
use crn::core::tree::DistributionTree;
use crn::rendezvous::broadcast::run_baseline_broadcast;
use crn::sim::assignment::{shared_core, OverlapPattern};
use crn::sim::channel_model::StaticChannels;
use crn::sim::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn cogcast_completes_within_theorem4_budget_across_patterns() {
    let (n, c, k) = (48usize, 8usize, 2usize);
    let budget = bounds::cogcast_slots(n, c, k, bounds::DEFAULT_ALPHA);
    for pattern in OverlapPattern::ALL {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed * 31);
            let a = pattern.generate(n, c, k, &mut rng).unwrap();
            let model = StaticChannels::local(a, seed);
            let run = run_broadcast(model, seed, budget).unwrap();
            assert!(
                run.completed(),
                "pattern {} seed {seed} missed the Theorem 4 budget {budget}",
                pattern.name()
            );
        }
    }
}

#[test]
fn cogcast_works_with_global_labels_too() {
    // The global-label model is a special case of the local one; the
    // protocol must behave identically well.
    let (n, c, k) = (32usize, 6usize, 2usize);
    let budget = bounds::cogcast_slots(n, c, k, bounds::DEFAULT_ALPHA);
    for seed in 0..5 {
        let model = StaticChannels::global(shared_core(n, c, k).unwrap());
        let run = run_broadcast(model, seed, budget).unwrap();
        assert!(run.completed(), "seed {seed}");
    }
}

#[test]
fn distribution_tree_is_valid_spanning_tree() {
    let (n, c, k) = (64usize, 8usize, 3usize);
    for seed in 0..5 {
        let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
        let mut protos = vec![CogCast::source(1u8)];
        protos.extend((1..n).map(|_| CogCast::node()));
        let mut net = Network::new(model, protos, seed).unwrap();
        assert!(net.run(1_000_000, |net| net.all_done()).is_done());
        let protos = net.into_protocols();
        let tree = DistributionTree::from_cogcast(&protos).unwrap();
        assert_eq!(tree.len(), n);
        assert_eq!(tree.subtree_size(tree.root()), n, "spanning");
        // Every edge respects time: children informed strictly after
        // parents (checked internally by the constructor) and depth is
        // bounded by the number of informing slots.
        assert!(tree.height() as usize <= n);
    }
}

#[test]
fn epidemic_curve_shows_two_stages() {
    // Stage 1 doubles fast; the tail (last c/2 nodes) is slower per
    // node. Verify the curve reaches c/2 in well under half the total
    // time.
    let (n, c, k) = (128usize, 16usize, 4usize);
    let model = StaticChannels::local(shared_core(n, c, k).unwrap(), 3);
    let run = run_broadcast(model, 3, 10_000_000).unwrap();
    let total = run.slots.unwrap() as usize;
    let half_informed_at = run
        .informed_per_slot
        .iter()
        .position(|&i| i >= n / 2)
        .unwrap()
        + 1;
    assert!(
        half_informed_at * 2 < total + 2,
        "half the nodes at slot {half_informed_at} of {total}: no epidemic speedup visible"
    );
}

#[test]
fn cogcast_scales_inversely_with_k() {
    let (n, c) = (48usize, 16usize);
    let mean = |k: usize| -> f64 {
        let trials = 10;
        let mut total = 0;
        for seed in 0..trials {
            let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
            total += run_broadcast(model, seed, 10_000_000)
                .unwrap()
                .slots
                .unwrap();
        }
        total as f64 / trials as f64
    };
    let t1 = mean(1);
    let t4 = mean(4);
    let t16 = mean(16);
    assert!(t1 > t4 && t4 > t16, "t1={t1}, t4={t4}, t16={t16}");
    // Roughly multiplicative: 16x the overlap should buy >= 4x.
    assert!(t1 / t16 > 4.0, "t1={t1}, t16={t16}");
}

#[test]
fn baseline_loses_by_roughly_factor_c() {
    let (n, k) = (64usize, 2usize);
    let ratio = |c: usize| -> f64 {
        let trials = 6;
        let (mut ours, mut base) = (0u64, 0u64);
        for seed in 0..trials {
            let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
            ours += run_broadcast(model, seed, 10_000_000)
                .unwrap()
                .slots
                .unwrap();
            let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed + 50);
            base += run_baseline_broadcast(model, seed + 50, 10_000_000)
                .unwrap()
                .slots
                .unwrap();
        }
        base as f64 / ours as f64
    };
    let r8 = ratio(8);
    let r16 = ratio(16);
    // The separation must grow with c (it is Θ(c) in theory).
    assert!(
        r16 > r8,
        "speedup should grow with c: r8={r8:.1}, r16={r16:.1}"
    );
    assert!(r8 > 2.0, "at c=8 the baseline should already lose: {r8:.1}");
}

#[test]
fn seeds_reproduce_exact_runs() {
    let (n, c, k) = (32usize, 8usize, 2usize);
    let run = |seed: u64| {
        let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
        run_broadcast(model, seed, 100_000).unwrap()
    };
    let a = run(12345);
    let b = run(12345);
    assert_eq!(a.slots, b.slots);
    assert_eq!(a.informed_per_slot, b.informed_per_slot);
    let c_run = run(54321);
    assert_ne!(
        a.informed_per_slot, c_run.informed_per_slot,
        "different seeds should explore different executions"
    );
}
