//! Cross-crate integration: COGCOMP end to end — exactness, budgets,
//! phase structure, and the baseline comparison.

use crn::core::aggregate::{Collect, Count, Max, MeanAcc, Min, Sum};
use crn::core::bounds;
use crn::core::cogcomp::{run_aggregation, run_aggregation_default, CogComp, CogCompConfig};
use crn::rendezvous::aggregate::run_baseline_aggregation;
use crn::sim::assignment::{full_overlap, shared_core, OverlapPattern};
use crn::sim::channel_model::StaticChannels;
use crn::sim::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn exact_collection_across_patterns_and_seeds() {
    let (n, c, k) = (40usize, 8usize, 2usize);
    let expect: Vec<u64> = (0..n as u64).collect();
    for pattern in OverlapPattern::ALL {
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(seed * 17 + 3);
            let a = pattern.generate(n, c, k, &mut rng).unwrap();
            let model = StaticChannels::local(a, seed);
            let values: Vec<Collect> = (0..n as u64).map(Collect::of).collect();
            let run = run_aggregation_default(model, values, seed).unwrap();
            assert!(
                run.is_complete(),
                "pattern {} seed {seed} incomplete",
                pattern.name()
            );
            assert_eq!(
                run.result.unwrap().values(),
                expect.as_slice(),
                "pattern {} seed {seed} lost or duplicated values",
                pattern.name()
            );
        }
    }
}

#[test]
fn all_aggregate_types_agree_with_ground_truth() {
    let n = 30usize;
    let values: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) % 100).collect();
    let model = || StaticChannels::local(shared_core(n, 6, 2).unwrap(), 8);

    let run =
        run_aggregation_default(model(), values.iter().map(|&v| Sum(v)).collect(), 1).unwrap();
    assert_eq!(run.result, Some(Sum(values.iter().sum())));

    let run =
        run_aggregation_default(model(), values.iter().map(|&v| Min(v)).collect(), 2).unwrap();
    assert_eq!(run.result, Some(Min(*values.iter().min().unwrap())));

    let run =
        run_aggregation_default(model(), values.iter().map(|&v| Max(v)).collect(), 3).unwrap();
    assert_eq!(run.result, Some(Max(*values.iter().max().unwrap())));

    let run =
        run_aggregation_default(model(), values.iter().map(|_| Count(1)).collect(), 4).unwrap();
    assert_eq!(run.result, Some(Count(n as u64)));

    let run = run_aggregation_default(model(), values.iter().map(|&v| MeanAcc::of(v)).collect(), 5)
        .unwrap();
    let mean = run.result.unwrap().mean();
    let truth = values.iter().sum::<u64>() as f64 / n as f64;
    assert!((mean - truth).abs() < 1e-9);
}

#[test]
fn completes_within_recommended_budget_and_phase4_is_linear() {
    let (c, k) = (8usize, 2usize);
    for n in [16usize, 64, 160] {
        let cfg = CogCompConfig::new(n, c, k, bounds::DEFAULT_ALPHA);
        for seed in 0..3 {
            let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
            let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
            let run = run_aggregation_default(model, values, seed).unwrap();
            assert!(run.is_complete(), "n={n} seed={seed}");
            let slots = run.slots.unwrap();
            assert!(
                slots <= cfg.recommended_budget(),
                "n={n}: {slots} > {}",
                cfg.recommended_budget()
            );
            // Theorem 10: phase 4 is O(n) steps; our headroom factor is 4.
            assert!(
                run.phase4_steps.unwrap() <= 4 * n as u64 + 32,
                "n={n}: phase 4 used {} steps",
                run.phase4_steps.unwrap()
            );
        }
    }
}

#[test]
fn mediator_and_cluster_invariants_hold() {
    let (n, c, k) = (50usize, 6usize, 2usize);
    let cfg = CogCompConfig::new(n, c, k, bounds::DEFAULT_ALPHA);
    let model = StaticChannels::local(shared_core(n, c, k).unwrap(), 4);
    let mut protos = vec![CogComp::source(cfg, Count(1))];
    protos.extend((1..n).map(|_| CogComp::node(cfg, Count(1))));
    let mut net = Network::new(model, protos, 4).unwrap();
    assert!(net.run_to_completion(cfg.recommended_budget()).is_done());
    let protos = net.into_protocols();

    // The source aggregated exactly n contributions.
    assert_eq!(protos[0].result(), Some(&Count(n as u64)));
    // Nobody failed, everyone terminated.
    assert!(protos.iter().all(|p| !p.is_failed()));
    // Cluster sizes are consistent: summing each node's cluster size
    // reciprocally (each member reports the same size) must cover all
    // non-source nodes.
    let mut cluster_total = 0f64;
    for p in protos.iter().filter(|p| !p.is_source()) {
        assert!(p.cluster_size() >= 1);
        cluster_total += 1.0 / p.cluster_size() as f64;
    }
    // Σ over members of 1/size = number of clusters; must be an
    // integer (within float noise) and at least 1.
    assert!(
        (cluster_total - cluster_total.round()).abs() < 1e-6,
        "inconsistent cluster sizes: {cluster_total}"
    );
    assert!(cluster_total >= 1.0);
    // Mediators: at least one, at most one per global channel.
    let mediators = protos.iter().filter(|p| p.is_mediator()).count();
    assert!(mediators >= 1);
}

#[test]
fn aggregation_floor_n_over_k_respected() {
    // All nodes share exactly k channels and nothing else (c = k):
    // slots >= n/k by the information bottleneck.
    let k = 2usize;
    for n in [20usize, 60] {
        let model = StaticChannels::local(full_overlap(n, k).unwrap(), 9);
        let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
        let run = run_aggregation_default(model, values, 9).unwrap();
        assert!(run.is_complete());
        assert!(
            run.slots.unwrap() >= (n / k) as u64,
            "n={n}: {} < n/k",
            run.slots.unwrap()
        );
    }
}

#[test]
fn cogcomp_beats_baseline_when_channels_dominate() {
    // The c²/k >> n regime: COGCOMP pays (c/k)·lg n twice; the baseline
    // pays a per-sender rendezvous of c²/k.
    let (n, c, k) = (48usize, 24usize, 1usize);
    let trials = 4;
    let (mut ours, mut base) = (0u64, 0u64);
    for seed in 0..trials {
        let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
        let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
        let run = run_aggregation(model, values, seed, 6.0).unwrap();
        assert!(run.is_complete());
        ours += run.slots.unwrap();

        let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed + 40);
        let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
        let run = run_baseline_aggregation(model, values, seed + 40, 100_000_000).unwrap();
        base += run.slots.unwrap();
    }
    assert!(
        base > ours,
        "baseline ({base}) should lose to COGCOMP ({ours}) at c²/k >> n"
    );
}

#[test]
fn single_and_two_node_edge_cases() {
    let model = StaticChannels::local(full_overlap(1, 4).unwrap(), 0);
    let run = run_aggregation_default(model, vec![Sum(42)], 0).unwrap();
    assert_eq!(run.result, Some(Sum(42)));

    let model = StaticChannels::local(shared_core(2, 4, 1).unwrap(), 1);
    let run = run_aggregation_default(model, vec![Sum(1), Sum(2)], 1).unwrap();
    assert_eq!(run.result, Some(Sum(3)));
}
