//! Cross-crate integration for the substrate extensions: the physical
//! stack, spectrum sensing, seed-exchange rendezvous, fault injection,
//! and global-id permutation invariance.

use crn::backoff::stack::run_physical_broadcast;
use crn::core::aggregate::Sum;
use crn::core::cogcast::{run_broadcast, CogCast};
use crn::core::cogcomp::run_aggregation_default;
use crn::rendezvous::acquainted::run_acquainted;
use crn::sim::assignment::shared_core;
use crn::sim::channel_model::StaticChannels;
use crn::sim::faults::{FaultSchedule, Flaky};
use crn::sim::sensing::{sense_assignment, SpectrumConfig};
use crn::sim::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn physical_stack_and_oracle_model_agree_on_slot_scale() {
    let (n, c, k) = (24usize, 6usize, 2usize);
    let trials = 10u64;
    let mut oracle_total = 0u64;
    let mut physical_total = 0u64;
    for seed in 0..trials {
        let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
        oracle_total += run_broadcast(model, seed, 10_000_000)
            .unwrap()
            .slots
            .unwrap();

        let sets: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                shared_core(n, c, k)
                    .unwrap()
                    .channels_of(i)
                    .iter()
                    .map(|g| g.0)
                    .collect()
            })
            .collect();
        let run = run_physical_broadcast(&sets, seed, 10_000_000).unwrap();
        assert!(run.completed());
        assert_eq!(run.failed_episodes, 0);
        physical_total += run.slots.unwrap();
    }
    let ratio = physical_total as f64 / oracle_total as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "stack substitution drifted: ratio {ratio}"
    );
}

#[test]
fn sensed_spectrum_supports_broadcast_and_aggregation() {
    let (n, c, k) = (20usize, 7usize, 2usize);
    for seed in 0..3 {
        let mut rng = StdRng::seed_from_u64(seed * 13);
        let (assignment, report) =
            sense_assignment(n, c, k, SpectrumConfig::tv_white_space(), &mut rng).unwrap();
        assert_eq!(report.anchors.len(), k);

        let model = StaticChannels::local(assignment.clone(), seed);
        let run = run_broadcast(model, seed, 10_000_000).unwrap();
        assert!(run.completed(), "seed {seed} broadcast");

        let model = StaticChannels::local(assignment, seed + 100);
        let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
        let agg = run_aggregation_default(model, values, seed + 100).unwrap();
        assert!(agg.is_complete(), "seed {seed} aggregation");
        assert_eq!(agg.result, Some(Sum((0..n as u64).sum())));
    }
}

#[test]
fn heterogeneous_channel_counts_work_end_to_end() {
    // The generalized model of the rendezvous literature (c_u != c_v):
    // COGCAST and COGCOMP only ever use ctx.c, so they run unchanged.
    use crn::sim::assignment::ragged_with_core;
    for seed in 0..3 {
        let mut rng = StdRng::seed_from_u64(seed * 7 + 1);
        let cs: Vec<usize> = (0..16).map(|i| 3 + (i % 4) * 2).collect();
        let a = ragged_with_core(&cs, 2, 60, &mut rng).unwrap();
        assert!(!a.is_uniform());

        let model = StaticChannels::local(a.clone(), seed);
        let run = run_broadcast(model, seed, 10_000_000).unwrap();
        assert!(run.completed(), "seed {seed} broadcast");

        let model = StaticChannels::local(a, seed + 50);
        let values: Vec<Sum> = (0..16).map(Sum).collect();
        let agg = run_aggregation_default(model, values, seed + 50).unwrap();
        assert!(agg.is_complete(), "seed {seed} aggregation");
        assert_eq!(agg.result, Some(Sum((0..16).sum())));
    }
}

#[test]
fn heterogeneous_rendezvous_scales_with_product_of_counts() {
    // Gu et al. bound rendezvous by O(max{c_u, c_v}²); for uniform
    // random hopping the meeting probability is k/(c_u·c_v), so the
    // expected time scales with c_u·c_v/k.
    use crn::rendezvous::pairwise::rendezvous_slots;
    use crn::sim::assignment::ragged_with_core;
    let mean = |c0: usize, c1: usize| -> f64 {
        let trials = 150;
        let mut total = 0u64;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed + 900);
            let a = ragged_with_core(&[c0, c1], 1, 40 * (c0 + c1), &mut rng).unwrap();
            let model = StaticChannels::local(a, seed);
            total += rendezvous_slots(model, seed, 10_000_000)
                .unwrap()
                .expect("meets");
        }
        total as f64 / trials as f64
    };
    let small = mean(4, 4); // product 16
    let large = mean(4, 16); // product 64
    let ratio = large / small;
    assert!(
        (2.0..8.0).contains(&ratio),
        "expected ~4x from the c_u*c_v product: {small} vs {large}"
    );
}

#[test]
fn acquainted_pairs_meet_every_slot_afterwards() {
    for seed in 0..5 {
        let model = StaticChannels::global(shared_core(2, 8, 2).unwrap());
        let run = run_acquainted(model, seed, 10_000_000, 200).unwrap();
        assert!(run.acquainted_slot.is_some(), "seed {seed}");
        assert_eq!(run.followup_meetings, 200, "seed {seed}");
    }
}

#[test]
fn permuted_globals_do_not_change_cogcast_statistics() {
    // COGCAST is oblivious to global ids (it only sees local labels),
    // so permuting the id space must leave completion-time statistics
    // unchanged up to sampling noise.
    let (n, c, k) = (32usize, 8usize, 2usize);
    let trials = 20u64;
    let mean = |permute: bool| -> f64 {
        let mut total = 0u64;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed + 500);
            let a = shared_core(n, c, k).unwrap();
            let a = if permute {
                a.permute_globals(&mut rng)
            } else {
                a
            };
            let model = StaticChannels::local(a, seed);
            total += run_broadcast(model, seed, 10_000_000)
                .unwrap()
                .slots
                .unwrap();
        }
        total as f64 / trials as f64
    };
    let plain = mean(false);
    let permuted = mean(true);
    assert!(
        (permuted / plain - 1.0).abs() < 0.5,
        "permutation should be statistically invisible: {plain} vs {permuted}"
    );
}

#[test]
fn flaky_cogcomp_aggregates_exactly_despite_listener_downtime() {
    // COGCOMP's phases assume nodes stay up (a down mediator would
    // stall phase four), but *pre-phase-one* downtime windows are
    // harmless: wrap every node in a fault window that ends before the
    // protocol's critical phases... here the window covers the first
    // few phase-one slots only.
    let (n, c, k) = (16usize, 5usize, 2usize);
    for seed in 0..3 {
        let cfg = crn::core::cogcomp::CogCompConfig::new(n, c, k, 10.0);
        let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
        let mut protos = vec![Flaky::new(
            crn::core::cogcomp::CogComp::source(cfg, Sum(0)),
            FaultSchedule::None,
        )];
        protos.extend((1..n).map(|i| {
            Flaky::new(
                crn::core::cogcomp::CogComp::node(cfg, Sum(i as u64)),
                FaultSchedule::Window {
                    from: 0,
                    to: (i % 5) as u64,
                },
            )
        }));
        let mut net = Network::new(model, protos, seed).unwrap();
        let outcome = net.run_to_completion(cfg.recommended_budget());
        assert!(outcome.is_done(), "seed {seed}");
        let protos = net.into_protocols();
        assert_eq!(
            protos[0].inner().result(),
            Some(&Sum((0..n as u64).sum())),
            "seed {seed}"
        );
    }
}

#[test]
fn flaky_broadcast_with_heavy_asymmetric_faults() {
    // Half the nodes duty-cycle 50%, the rest are healthy; broadcast
    // must still complete.
    let (n, c, k) = (20usize, 6usize, 2usize);
    for seed in 0..3 {
        let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
        let mut protos: Vec<Flaky<CogCast<u8>>> =
            vec![Flaky::new(CogCast::source(7), FaultSchedule::None)];
        protos.extend((1..n).map(|i| {
            let schedule = if i % 2 == 0 {
                FaultSchedule::Periodic { period: 2, down: 1 }
            } else {
                FaultSchedule::None
            };
            Flaky::new(CogCast::node(), schedule)
        }));
        let mut net = Network::new(model, protos, seed).unwrap();
        let outcome = net.run(1_000_000, |net| {
            net.protocols().iter().all(|f| f.inner().is_informed())
        });
        assert!(outcome.is_done(), "seed {seed}");
    }
}
