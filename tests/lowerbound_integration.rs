//! Cross-crate integration: the lower-bound machinery against the real
//! protocols — upper and lower bounds must bracket the measurements.

use crn::core::bounds::{global_label_floor, hitting_game_floor};
use crn::core::cogcast::run_broadcast;
use crn::lowerbounds::global_label::{mean_first_overlap, SourceStrategy};
use crn::lowerbounds::players::{survival_curve, FreshPlayer, UniformPlayer};
use crn::lowerbounds::reduction::run_reduction_cogcast;
use crn::sim::assignment::shared_core;
use crn::sim::channel_model::StaticChannels;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn measured_cogcast_sits_between_floor_and_budget() {
    // Lemma 13 floor Ω((c/k)·max{1,c/n}) <= measured mean <= Theorem 4
    // budget, for several shapes.
    for &(n, c, k) in &[(64usize, 8usize, 2usize), (32, 16, 4), (16, 32, 8)] {
        let trials = 10;
        let mut total = 0u64;
        for seed in 0..trials {
            let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
            total += run_broadcast(model, seed, 10_000_000)
                .unwrap()
                .slots
                .unwrap();
        }
        let mean = total as f64 / trials as f64;
        let floor = (c as f64 / k as f64) * (c as f64 / n as f64).max(1.0);
        let budget = crn::core::bounds::cogcast_slots(n, c, k, 10.0) as f64;
        assert!(
            mean >= floor / 8.0,
            "(n={n},c={c},k={k}): mean {mean} below a constant of the floor {floor}"
        );
        assert!(
            mean <= budget,
            "(n={n},c={c},k={k}): mean {mean} above the budget {budget}"
        );
    }
}

#[test]
fn reduction_rounds_bounded_by_min_c_n_times_slots() {
    // Lemma 12's accounting, with COGCAST as the algorithm.
    for &(c, k, n) in &[(8usize, 2usize, 4usize), (16, 2, 64), (12, 3, 6)] {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = run_reduction_cogcast(c, k, n, 10_000_000, &mut rng);
            assert!(out.won, "(c={c},k={k},n={n}) seed {seed}");
            assert!(
                out.game_rounds <= out.sim_slots * c.min(n) as u64,
                "accounting violated: {out:?}"
            );
        }
    }
}

#[test]
fn lemma11_floor_holds_for_reduction_player_too() {
    // The reduction player (COGCAST driving the game) must also fail
    // to win within the floor with probability 1/2 — Lemma 12 + 11.
    let (c, k, n) = (32usize, 4usize, 64usize);
    let floor = hitting_game_floor(c, k, 2.0);
    let trials = 300;
    let wins_within_floor = (0..trials)
        .filter(|&seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = run_reduction_cogcast(c, k, n, 10_000_000, &mut rng);
            out.won && out.game_rounds <= floor
        })
        .count();
    let p = wins_within_floor as f64 / trials as f64;
    assert!(p < 0.5, "reduction player beat the Lemma 11 floor: {p}");
}

#[test]
fn survival_curves_eventually_win() {
    // Sanity on the other side: with 8x the floor, players do win.
    let (c, k) = (16usize, 2usize);
    let horizon = hitting_game_floor(c, k, 2.0) * 16;
    let uni = survival_curve(c, k, 200, horizon, 3, UniformPlayer::new);
    let fresh = survival_curve(c, k, 200, horizon, 4, FreshPlayer::new);
    assert!(
        *uni.last().unwrap() > 0.5,
        "uniform never wins: {:?}",
        uni.last()
    );
    assert!(
        *fresh.last().unwrap() > 0.9,
        "fresh never wins: {:?}",
        fresh.last()
    );
}

#[test]
fn theorem16_floor_under_global_labels() {
    for &(c, k) in &[(16usize, 2usize), (32, 4), (64, 8)] {
        let floor = global_label_floor(c, k);
        for strategy in [SourceStrategy::Uniform, SourceStrategy::Scan] {
            let mean = mean_first_overlap(c, k, strategy, 2000, 7, 1_000_000);
            assert!(
                mean >= floor * 0.85,
                "(c={c},k={k}) {} mean {mean} below floor {floor}",
                strategy.name()
            );
        }
    }
}

#[test]
fn hop_together_beats_cogcast_in_the_c_much_greater_n_regime() {
    // The Section 6 separation, end to end through both crates.
    let n = 5usize;
    let c = n * n;
    let k = c - 1;
    let trials = 10;
    let mut hop_total = 0u64;
    let mut cog_total = 0u64;
    for seed in 0..trials {
        let model = StaticChannels::global(shared_core(n, c, k).unwrap());
        hop_total += crn::rendezvous::hop_together::run_hop_together(model, seed, 1_000_000)
            .unwrap()
            .slots
            .unwrap();
        let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
        cog_total += run_broadcast(model, seed, 1_000_000)
            .unwrap()
            .slots
            .unwrap();
    }
    assert!(
        hop_total < cog_total,
        "hop-together ({hop_total}) must beat COGCAST ({cog_total}) when c >> n"
    );
}
