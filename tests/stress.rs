//! Large-scale stress tests. Ignored by default (minutes in debug
//! builds); run explicitly with:
//!
//! ```text
//! cargo test --release --test stress -- --ignored
//! ```

use crn::core::aggregate::{Collect, Sum};
use crn::core::bounds;
use crn::core::cogcast::run_broadcast;
use crn::core::cogcomp::run_aggregation_default;
use crn::multihop::{run_flood, Topology};
use crn::sim::assignment::shared_core;
use crn::sim::channel_model::StaticChannels;

#[test]
#[ignore = "large-scale; run with --ignored in release"]
fn broadcast_at_two_thousand_nodes() {
    let (n, c, k) = (2048usize, 16usize, 4usize);
    let budget = bounds::cogcast_slots(n, c, k, bounds::DEFAULT_ALPHA);
    for seed in 0..3 {
        let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
        let run = run_broadcast(model, seed, budget).unwrap();
        assert!(run.completed(), "seed {seed} missed budget {budget}");
    }
}

#[test]
#[ignore = "large-scale; run with --ignored in release"]
fn aggregation_at_five_hundred_nodes_is_exact() {
    let (n, c, k) = (512usize, 8usize, 2usize);
    let model = StaticChannels::local(shared_core(n, c, k).unwrap(), 1);
    let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
    let run = run_aggregation_default(model, values, 1).unwrap();
    assert!(run.is_complete());
    assert_eq!(run.result, Some(Sum((0..n as u64).sum())));
}

#[test]
#[ignore = "large-scale; run with --ignored in release"]
fn exact_collection_at_scale() {
    let n = 256usize;
    let model = StaticChannels::local(shared_core(n, 8, 2).unwrap(), 3);
    let values: Vec<Collect> = (0..n as u64).map(Collect::of).collect();
    let run = run_aggregation_default(model, values, 3).unwrap();
    assert!(run.is_complete());
    let expect: Vec<u64> = (0..n as u64).collect();
    assert_eq!(run.result.unwrap().values(), expect.as_slice());
}

#[test]
#[ignore = "large-scale; run with --ignored in release"]
fn flood_across_a_twenty_by_twenty_grid() {
    let topo = Topology::grid(20, 20);
    let n = topo.len();
    let model = StaticChannels::local(shared_core(n, 4, 2).unwrap(), 2);
    let run = run_flood(topo, model, 2, 100_000_000).unwrap();
    assert!(run.completed());
    // Diameter 38: completion is at least one slot per hop.
    assert!(run.slots.unwrap() >= 38);
}
