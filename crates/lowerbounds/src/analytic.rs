//! Closed-form win probabilities for the hitting games, used to
//! validate the simulated games against exact analysis.
//!
//! Against the Lemma 11 referee (a uniformly random `k`-matching), a
//! single uniformly random edge proposal hits the matching with
//! probability exactly `k/c²` (each of the `k` matched edges is at any
//! fixed position with probability `1/c²` by symmetry, and the events
//! are disjoint). Hence:
//!
//! - the **uniform player** (fresh independent edge per round) wins
//!   within `l` rounds with probability `1 − (1 − k/c²)^l`;
//! - the **fresh player** (no repeats) wins within `l ≤ c²` rounds
//!   with probability `1 − Π_{j=0}^{l−1} (1 − k/(c² − j))` — the
//!   expected fraction of matched edges among the first `l` of a
//!   uniformly shuffled edge order.

/// Per-proposal hit probability `k/c²` for a uniformly random edge.
///
/// # Examples
///
/// ```
/// use crn_lowerbounds::analytic::single_hit_probability;
/// assert!((single_hit_probability(4, 2) - 0.125).abs() < 1e-12);
/// ```
pub fn single_hit_probability(c: usize, k: usize) -> f64 {
    k as f64 / (c * c) as f64
}

/// Exact win-within-`l` probability for the uniform (memoryless)
/// player.
///
/// # Examples
///
/// ```
/// use crn_lowerbounds::analytic::uniform_win_by;
/// let p1 = uniform_win_by(4, 2, 1);
/// assert!((p1 - 0.125).abs() < 1e-12);
/// assert!(uniform_win_by(4, 2, 100) > 0.99);
/// ```
pub fn uniform_win_by(c: usize, k: usize, l: u64) -> f64 {
    let p = single_hit_probability(c, k);
    1.0 - (1.0 - p).powf(l as f64)
}

/// Exact win-within-`l` probability for the fresh (never-repeat)
/// player, `l ≤ c²`.
///
/// By symmetry the player's shuffled edge order is uniform, so the
/// probability that none of the first `l` edges is matched equals the
/// probability that a uniform `l`-subset of the `c²` edges avoids the
/// `k` matched ones — but the matched edges are *themselves* a random
/// matching; conditioned on the player's order, each matched edge is
/// uniform over positions. The avoidance probability telescopes as
/// `Π_{j=0}^{k−1} (c² − l − j)/(c² − j)`.
///
/// # Examples
///
/// ```
/// use crn_lowerbounds::analytic::fresh_win_by;
/// // Exhausting all edges always wins.
/// assert!((fresh_win_by(3, 2, 9) - 1.0).abs() < 1e-12);
/// // One proposal: same as uniform.
/// assert!((fresh_win_by(3, 2, 1) - 2.0 / 9.0).abs() < 1e-12);
/// ```
pub fn fresh_win_by(c: usize, k: usize, l: u64) -> f64 {
    let m = (c * c) as f64;
    let l = (l as f64).min(m);
    let mut avoid = 1.0;
    for j in 0..k {
        avoid *= (m - l - j as f64) / (m - j as f64);
        if avoid <= 0.0 {
            return 1.0;
        }
    }
    1.0 - avoid
}

/// Expected winning round of the fresh player on the `c`-complete game
/// (`k = c`), ≈ `c·ln 2` for the median and `(c² + 1)/(c + 1)` for the
/// mean (the mean of the minimum of `c` uniform positions among `c²`).
pub fn fresh_complete_mean_round(c: usize) -> f64 {
    let m = (c * c) as f64;
    (m + 1.0) / (c as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{Edge, HittingGame, Matching};
    use crate::players::{play, survival_curve, FreshPlayer, UniformPlayer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_hit_probability_matches_simulation() {
        let (c, k) = (6usize, 2usize);
        let trials = 40_000;
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..trials)
            .filter(|_| Matching::sample(c, k, &mut rng).contains(Edge::new(0, 0)))
            .count();
        let emp = hits as f64 / trials as f64;
        let exact = single_hit_probability(c, k);
        assert!(
            (emp - exact).abs() < 0.15 * exact + 0.002,
            "empirical {emp} vs exact {exact}"
        );
    }

    #[test]
    fn uniform_curve_matches_closed_form() {
        let (c, k, trials) = (8usize, 2usize, 4000usize);
        let horizon = 64;
        let curve = survival_curve(c, k, trials, horizon, 9, UniformPlayer::new);
        for &l in &[4u64, 16, 64] {
            let emp = curve[l as usize - 1];
            let exact = uniform_win_by(c, k, l);
            assert!(
                (emp - exact).abs() < 0.04,
                "l={l}: empirical {emp} vs exact {exact}"
            );
        }
    }

    #[test]
    fn fresh_curve_matches_closed_form() {
        let (c, k, trials) = (8usize, 2usize, 4000usize);
        let horizon = 64;
        let curve = survival_curve(c, k, trials, horizon, 10, FreshPlayer::new);
        for &l in &[4u64, 16, 64] {
            let emp = curve[l as usize - 1];
            let exact = fresh_win_by(c, k, l);
            assert!(
                (emp - exact).abs() < 0.04,
                "l={l}: empirical {emp} vs exact {exact}"
            );
        }
    }

    #[test]
    fn fresh_beats_uniform_everywhere() {
        let (c, k) = (10usize, 3usize);
        for l in [5u64, 20, 50, 100] {
            assert!(
                fresh_win_by(c, k, l) >= uniform_win_by(c, k, l) - 1e-12,
                "no-repeat must dominate at l={l}"
            );
        }
    }

    #[test]
    fn complete_game_mean_round_matches_simulation() {
        let c = 16usize;
        let trials = 800u64;
        let mut total = 0u64;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut game = HittingGame::complete(c, &mut rng);
            let mut player = FreshPlayer::new(c);
            total += play(&mut game, &mut player, (c * c) as u64, &mut rng)
                .expect("fresh always wins within c²");
        }
        let emp = total as f64 / trials as f64;
        let exact = fresh_complete_mean_round(c);
        assert!(
            (emp - exact).abs() < 0.15 * exact,
            "empirical {emp} vs exact {exact}"
        );
    }

    #[test]
    fn closed_forms_are_probabilities() {
        for c in [2usize, 5, 12] {
            for k in 1..=c {
                for l in [0u64, 1, 7, 1000] {
                    for p in [uniform_win_by(c, k, l), fresh_win_by(c, k, l)] {
                        assert!((0.0..=1.0 + 1e-12).contains(&p), "c={c},k={k},l={l}: {p}");
                    }
                }
            }
        }
    }
}
