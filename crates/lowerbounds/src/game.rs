//! The bipartite hitting games of Section 6.
//!
//! In the `(c,k)`-bipartite hitting game a referee privately samples a
//! matching of size `k` in the complete bipartite graph on `A ∪ B`
//! (`|A| = |B| = c`); the player proposes one edge per round and wins on
//! the first proposal inside the matching. Lemma 11 shows any player
//! needs `≥ c²/(αk)` rounds to win with probability ½ (for `k ≤ c/β`,
//! `α = 2(β/(β−1))²`); the `c`-complete variant (`k = c`, a perfect
//! matching) needs `≥ c/3` rounds (Lemma 14).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An edge `(a_i, b_j)` of the complete bipartite graph, as a pair of
/// side indices in `0..c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Index into the `A` side.
    pub a: u32,
    /// Index into the `B` side.
    pub b: u32,
}

impl Edge {
    /// Convenience constructor.
    pub fn new(a: u32, b: u32) -> Self {
        Edge { a, b }
    }
}

/// A matching in the complete bipartite graph: a set of edges sharing no
/// endpoints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matching {
    edges: Vec<Edge>,
}

impl Matching {
    /// Samples a matching the way the Lemma 11 referee does: pick each
    /// of the `k` edges uniformly at random among edges whose endpoints
    /// are still free, then remove its endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `k > c`.
    pub fn sample(c: usize, k: usize, rng: &mut impl Rng) -> Self {
        assert!(k <= c, "matching size k = {k} exceeds side size c = {c}");
        let mut free_a: Vec<u32> = (0..c as u32).collect();
        let mut free_b: Vec<u32> = (0..c as u32).collect();
        let mut edges = Vec::with_capacity(k);
        for _ in 0..k {
            let ia = rng.gen_range(0..free_a.len());
            let ib = rng.gen_range(0..free_b.len());
            edges.push(Edge::new(free_a.swap_remove(ia), free_b.swap_remove(ib)));
        }
        Matching { edges }
    }

    /// The matching's edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for the empty matching.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, e: Edge) -> bool {
        self.edges.contains(&e)
    }

    /// Validates the matching property (no shared endpoints) and range.
    pub fn is_valid(&self, c: usize) -> bool {
        let mut seen_a = vec![false; c];
        let mut seen_b = vec![false; c];
        for e in &self.edges {
            let (a, b) = (e.a as usize, e.b as usize);
            if a >= c || b >= c || seen_a[a] || seen_b[b] {
                return false;
            }
            seen_a[a] = true;
            seen_b[b] = true;
        }
        true
    }
}

/// One instance of the hitting game: a hidden matching plus a round
/// counter.
///
/// # Examples
///
/// ```
/// use crn_lowerbounds::game::{Edge, HittingGame};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut game = HittingGame::new(4, 2, &mut rng);
/// let won = game.propose(Edge::new(0, 0));
/// assert_eq!(game.rounds(), 1);
/// let _ = won;
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HittingGame {
    c: usize,
    matching: Matching,
    rounds: u64,
    won: bool,
}

impl HittingGame {
    /// Starts a `(c,k)`-bipartite hitting game against the uniform
    /// referee.
    ///
    /// # Panics
    ///
    /// Panics if `k > c` or `c == 0`.
    pub fn new(c: usize, k: usize, rng: &mut impl Rng) -> Self {
        assert!(c >= 1, "c must be at least 1");
        HittingGame {
            c,
            matching: Matching::sample(c, k, rng),
            rounds: 0,
            won: false,
        }
    }

    /// Starts the `c`-complete bipartite hitting game (`k = c`; the
    /// hidden matching is a uniform perfect matching).
    pub fn complete(c: usize, rng: &mut impl Rng) -> Self {
        Self::new(c, c, rng)
    }

    /// Side size `c`.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Proposes an edge; returns true exactly when it is in the hidden
    /// matching. Proposals after a win are counted but always lose the
    /// round (the game is over).
    ///
    /// # Panics
    ///
    /// Panics if the edge is out of range.
    pub fn propose(&mut self, e: Edge) -> bool {
        assert!(
            (e.a as usize) < self.c && (e.b as usize) < self.c,
            "edge {e:?} out of range for c = {}",
            self.c
        );
        self.rounds += 1;
        if !self.won && self.matching.contains(e) {
            self.won = true;
            return true;
        }
        false
    }

    /// Rounds played so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// True once a proposal has hit the matching.
    pub fn is_won(&self) -> bool {
        self.won
    }

    /// Exposes the hidden matching — for tests and post-hoc analysis
    /// only; a player consulting this is cheating by definition.
    pub fn reveal(&self) -> &Matching {
        &self.matching
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_matching_is_valid() {
        let mut rng = StdRng::seed_from_u64(0);
        for c in [1usize, 2, 5, 16] {
            for k in 1..=c {
                let m = Matching::sample(c, k, &mut rng);
                assert_eq!(m.len(), k);
                assert!(m.is_valid(c), "c={c}, k={k}: {m:?}");
            }
        }
    }

    #[test]
    fn complete_game_is_perfect_matching() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = HittingGame::complete(8, &mut rng);
        assert_eq!(g.reveal().len(), 8);
        assert!(g.reveal().is_valid(8));
    }

    #[test]
    fn winning_proposal_detected() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = HittingGame::new(4, 2, &mut rng);
        let e = g.reveal().edges()[0];
        assert!(g.propose(e));
        assert!(g.is_won());
        assert_eq!(g.rounds(), 1);
    }

    #[test]
    fn losing_proposals_counted() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = HittingGame::new(4, 1, &mut rng);
        let hidden = g.reveal().edges()[0];
        let mut misses = 0;
        for a in 0..4u32 {
            for b in 0..4u32 {
                let e = Edge::new(a, b);
                if e != hidden {
                    assert!(!g.propose(e));
                    misses += 1;
                }
            }
        }
        assert_eq!(g.rounds(), misses);
        assert!(!g.is_won());
    }

    #[test]
    fn proposals_after_win_do_not_rewin() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut g = HittingGame::new(3, 3, &mut rng);
        let e = g.reveal().edges()[0];
        assert!(g.propose(e));
        assert!(!g.propose(e), "game already over");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = HittingGame::new(2, 1, &mut rng);
        g.propose(Edge::new(5, 0));
    }

    #[test]
    fn matching_distribution_is_roughly_uniform_over_endpoints() {
        // Each a-vertex should appear in the k-matching with probability
        // k/c; check frequencies over many samples.
        let (c, k, trials) = (6usize, 2usize, 6000usize);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; c];
        for _ in 0..trials {
            for e in Matching::sample(c, k, &mut rng).edges() {
                counts[e.a as usize] += 1;
            }
        }
        let expect = trials * k / c;
        for (a, &cnt) in counts.iter().enumerate() {
            assert!(
                (cnt as f64) > expect as f64 * 0.8 && (cnt as f64) < expect as f64 * 1.2,
                "vertex {a} count {cnt} vs expected {expect}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_matchings_valid(c in 1usize..24, k_off in 0usize..24, seed in 0u64..500) {
            let k = 1 + k_off % c;
            let mut rng = StdRng::seed_from_u64(seed);
            let m = Matching::sample(c, k, &mut rng);
            prop_assert!(m.is_valid(c));
            prop_assert_eq!(m.len(), k);
        }
    }
}
