//! # crn-lowerbounds — the hitting games behind Theorems 15 and 16
//!
//! Section 6 of the paper proves COGCAST near-optimal by reducing local
//! broadcast to bipartite *hitting games*. This crate makes those
//! arguments executable:
//!
//! - [`game`] — the `(c,k)`-bipartite hitting game and its `c`-complete
//!   (perfect-matching) variant, with the uniform referee of Lemma 11;
//! - [`players`] — uniform and never-repeat players, game drivers, and
//!   empirical survival curves (used to exhibit the `c²/(αk)` and `c/3`
//!   floors of Lemmas 11 and 14);
//! - [`reduction`] — the Lemma 12 construction turning any broadcast
//!   algorithm into a player, with COGCAST plugged in;
//! - [`global_label`] — the Theorem 16 random-network setup and its
//!   `(c+1)/(k+1)` first-overlap expectation floor.
//!
//! ```
//! use crn_lowerbounds::game::HittingGame;
//! use crn_lowerbounds::players::{play, UniformPlayer};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let mut game = HittingGame::new(6, 2, &mut rng);
//! let mut player = UniformPlayer::new(6);
//! let round = play(&mut game, &mut player, 100_000, &mut rng);
//! assert!(round.is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analytic;
pub mod game;
pub mod global_label;
pub mod players;
pub mod reduction;

pub use analytic::{fresh_win_by, single_hit_probability, uniform_win_by};
pub use game::{Edge, HittingGame, Matching};
pub use global_label::{first_overlap_slots, mean_first_overlap, SourceStrategy};
pub use players::{play, survival_curve, FreshPlayer, Player, UniformPlayer};
pub use reduction::{run_reduction, run_reduction_cogcast, ReductionOutcome};
