//! The Lemma 12 reduction: a broadcast algorithm *is* a hitting-game
//! player.
//!
//! The reduction simulates an `n`-node network in which the `n − 1`
//! uninformed nodes share one channel set `B` while the source holds a
//! set `A`, and the hidden `k`-matching of the game encodes which
//! channels of `A` and `B` are physically identical. Until the source
//! lands on a matched channel together with some other node, the
//! message cannot move — so every simulated slot yields at most
//! `min{c, n}` *new* edge proposals `(a_r, b_r^u)`, and a fast broadcast
//! algorithm would win the hitting game fast. Combined with Lemma 11
//! this transfers the game bound to local broadcast (Theorem 15).

use crate::game::{Edge, HittingGame};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The result of driving a broadcast algorithm through the reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionOutcome {
    /// Hitting-game rounds consumed (edge proposals made).
    pub game_rounds: u64,
    /// Simulated broadcast slots executed.
    pub sim_slots: u64,
    /// Whether the game was won (the source met another node).
    pub won: bool,
}

/// Simulates `max_slots` slots of a broadcast algorithm through the
/// Lemma 12 reduction against a fresh `(c,k)` hitting game.
///
/// `choose(slot, node, rng)` must return the local channel (`0..c`)
/// that `node` selects in `slot`; node `0` is the source (choosing from
/// `A`), nodes `1..n` are the receivers (choosing from `B`). For
/// COGCAST every choice is uniform — see [`run_reduction_cogcast`].
///
/// # Panics
///
/// Panics if `choose` returns a channel `>= c`.
///
/// # Examples
///
/// ```
/// use crn_lowerbounds::reduction::run_reduction_cogcast;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let out = run_reduction_cogcast(8, 2, 16, 100_000, &mut rng);
/// assert!(out.won);
/// ```
pub fn run_reduction(
    c: usize,
    k: usize,
    n: usize,
    mut choose: impl FnMut(u64, usize, &mut StdRng) -> u32,
    max_slots: u64,
    rng: &mut StdRng,
) -> ReductionOutcome {
    let mut game = HittingGame::new(c, k, rng);
    let mut proposed: HashSet<Edge> = HashSet::new();
    let mut slots = 0;
    for slot in 0..max_slots {
        slots = slot + 1;
        let a_r = choose(slot, 0, rng);
        assert!((a_r as usize) < c, "source chose channel {a_r} >= c = {c}");
        for node in 1..n {
            let b_r = choose(slot, node, rng);
            assert!(
                (b_r as usize) < c,
                "node {node} chose channel {b_r} >= c = {c}"
            );
            let e = Edge::new(a_r, b_r);
            if proposed.insert(e) && game.propose(e) {
                return ReductionOutcome {
                    game_rounds: game.rounds(),
                    sim_slots: slots,
                    won: true,
                };
            }
        }
    }
    ReductionOutcome {
        game_rounds: game.rounds(),
        sim_slots: slots,
        won: false,
    }
}

/// [`run_reduction`] with COGCAST's channel rule: every node picks
/// uniformly at random each slot.
pub fn run_reduction_cogcast(
    c: usize,
    k: usize,
    n: usize,
    max_slots: u64,
    rng: &mut StdRng,
) -> ReductionOutcome {
    run_reduction(
        c,
        k,
        n,
        |_slot, _node, rng| rng.gen_range(0..c as u32),
        max_slots,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn cogcast_reduction_wins() {
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = run_reduction_cogcast(6, 2, 8, 1_000_000, &mut rng);
            assert!(out.won, "seed {seed}");
            assert!(out.game_rounds >= 1);
            assert!(out.sim_slots >= 1);
        }
    }

    #[test]
    fn proposals_per_slot_bounded_by_min_c_n() {
        // The reduction's key accounting: at most min{c, n} *unique*
        // proposals per simulated slot.
        let (c, k, n) = (4usize, 1usize, 20usize);
        let mut rng = StdRng::seed_from_u64(3);
        let out = run_reduction_cogcast(c, k, n, 50, &mut rng);
        let bound = out.sim_slots * c.min(n) as u64;
        assert!(
            out.game_rounds <= bound,
            "rounds {} exceed min(c,n)·slots {bound}",
            out.game_rounds
        );
    }

    #[test]
    fn deterministic_stuck_algorithm_never_wins_offmatch() {
        // An algorithm where everyone sits on channel 0 proposes only
        // the single edge (0, 0); it wins iff (0,0) is in the matching,
        // i.e. with probability k/c² per Lemma 11's referee — measure
        // that it usually loses.
        let (c, k, n) = (8usize, 1usize, 4usize);
        let mut wins = 0;
        for seed in 0..300 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = run_reduction(c, k, n, |_, _, _| 0, 1_000, &mut rng);
            wins += out.won as usize;
            assert!(out.game_rounds <= 1, "only one unique proposal exists");
        }
        // Expected win rate 1/64 ≈ 4.7 of 300.
        assert!(wins < 30, "constant algorithm won {wins}/300 times");
    }

    #[test]
    fn sim_slots_track_game_rounds_for_cogcast() {
        // Median game rounds for COGCAST through the reduction should
        // be on the order of c²/k (the Lemma 11 floor is c²/(8k)).
        let (c, k, n) = (16usize, 2usize, 64usize);
        let trials = 60;
        let mut rounds: Vec<u64> = (0..trials)
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let out = run_reduction_cogcast(c, k, n, 1_000_000, &mut rng);
                assert!(out.won);
                out.game_rounds
            })
            .collect();
        rounds.sort_unstable();
        let median = rounds[trials as usize / 2];
        let floor = (c * c) as u64 / (8 * k as u64);
        assert!(
            median >= floor / 4,
            "median {median} implausibly below the Lemma 11 regime ({floor})"
        );
    }

    #[test]
    #[should_panic(expected = ">= c")]
    fn out_of_range_choice_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        run_reduction(2, 1, 2, |_, _, _| 9, 10, &mut rng);
    }
}
