//! The Theorem 16 experiment: the `Ω(c/k)` expectation floor under
//! global channel labels.
//!
//! Theorem 16's setup randomizes the *network*: `C = k + n(c−k)`
//! channels, a uniformly random set of `k` of them shared by everybody,
//! and the rest partitioned into disjoint private blocks. From the
//! source's perspective, the `k` overlap channels occupy a uniformly
//! random `k`-subset of its own `c` channels — so *whatever* channel
//! sequence an algorithm uses, the expected number of slots before the
//! source first touches an overlap channel is `(c+1)/(k+1)`.
//!
//! This module samples that first-overlap time for several source
//! strategies, letting the harness exhibit the floor empirically.

use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The channel-selection strategies the experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceStrategy {
    /// A fresh uniform pick every slot (COGCAST's rule).
    Uniform,
    /// A deterministic scan `0, 1, 2, …, c−1, 0, …`.
    Scan,
    /// Park forever on channel 0 (wins in slot 1 with probability
    /// `k/c`, otherwise never — the pathological extreme).
    Stay,
}

impl SourceStrategy {
    /// All strategies, in sweep order.
    pub const ALL: [SourceStrategy; 3] = [
        SourceStrategy::Uniform,
        SourceStrategy::Scan,
        SourceStrategy::Stay,
    ];

    /// Human-readable name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            SourceStrategy::Uniform => "uniform",
            SourceStrategy::Scan => "scan",
            SourceStrategy::Stay => "stay",
        }
    }

    fn pick(self, slot: u64, c: usize, rng: &mut StdRng) -> usize {
        match self {
            SourceStrategy::Uniform => rng.gen_range(0..c),
            SourceStrategy::Scan => (slot % c as u64) as usize,
            SourceStrategy::Stay => 0,
        }
    }
}

/// Samples, for `trials` random Theorem 16 setups, the slot (1-based)
/// in which the source first lands on an overlap channel; `None` when
/// `budget` slots pass first.
///
/// # Panics
///
/// Panics if `k > c` or `c == 0`.
///
/// # Examples
///
/// ```
/// use crn_lowerbounds::global_label::{first_overlap_slots, SourceStrategy};
/// let samples = first_overlap_slots(8, 2, SourceStrategy::Uniform, 100, 7, 10_000);
/// assert_eq!(samples.len(), 100);
/// assert!(samples.iter().all(|s| s.is_some()));
/// ```
pub fn first_overlap_slots(
    c: usize,
    k: usize,
    strategy: SourceStrategy,
    trials: usize,
    seed: u64,
    budget: u64,
) -> Vec<Option<u64>> {
    assert!(c >= 1 && k >= 1 && k <= c, "need 1 <= k <= c");
    (0..trials)
        .map(|t| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64));
            // The k overlap channels sit at a uniform k-subset of the
            // source's c channel positions.
            let mut core = vec![false; c];
            for i in sample(&mut rng, c, k) {
                core[i] = true;
            }
            (0..budget)
                .map(|slot| (slot, strategy.pick(slot, c, &mut rng)))
                .find(|&(_, pick)| core[pick])
                .map(|(slot, _)| slot + 1)
        })
        .collect()
}

/// Mean first-overlap slot, counting timeouts as `budget` (a lower
/// bound on the truth).
pub fn mean_first_overlap(
    c: usize,
    k: usize,
    strategy: SourceStrategy,
    trials: usize,
    seed: u64,
    budget: u64,
) -> f64 {
    let samples = first_overlap_slots(c, k, strategy, trials, seed, budget);
    let total: u64 = samples.iter().map(|s| s.unwrap_or(budget)).sum();
    total as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_core::bounds::global_label_floor;

    #[test]
    fn uniform_matches_the_floor() {
        // E[first overlap] should be close to (c+1)/(k+1) for the
        // uniform strategy... in fact uniform picks give a geometric
        // with mean c/k, slightly above the floor.
        let (c, k) = (12usize, 3usize);
        let mean = mean_first_overlap(c, k, SourceStrategy::Uniform, 4000, 1, 100_000);
        let floor = global_label_floor(c, k);
        assert!(mean >= floor * 0.9, "mean {mean} below floor {floor}");
        assert!(mean <= (c as f64 / k as f64) * 1.3, "mean {mean} too large");
    }

    #[test]
    fn scan_matches_the_floor() {
        // The deterministic scan against a random k-subset achieves
        // exactly the (c+1)/(k+1) expectation of Theorem 16.
        let (c, k) = (12usize, 3usize);
        let mean = mean_first_overlap(c, k, SourceStrategy::Scan, 4000, 2, 100_000);
        let floor = global_label_floor(c, k);
        assert!(
            (mean - floor).abs() / floor < 0.15,
            "scan mean {mean} should be ~{floor}"
        );
    }

    #[test]
    fn stay_usually_times_out() {
        let (c, k) = (10usize, 1usize);
        let samples = first_overlap_slots(c, k, SourceStrategy::Stay, 500, 3, 100);
        let timeouts = samples.iter().filter(|s| s.is_none()).count();
        // P(channel 0 is core) = k/c = 0.1, so ~90% of trials never hit.
        assert!(timeouts > 350, "only {timeouts}/500 timed out");
    }

    #[test]
    fn all_strategies_hit_immediately_when_k_equals_c() {
        for strategy in SourceStrategy::ALL {
            let samples = first_overlap_slots(5, 5, strategy, 50, 4, 10);
            assert!(samples.iter().all(|&s| s == Some(1)), "{}", strategy.name());
        }
    }

    #[test]
    fn floor_scales_with_c_over_k() {
        let m_small = mean_first_overlap(8, 4, SourceStrategy::Scan, 2000, 5, 1000);
        let m_large = mean_first_overlap(32, 4, SourceStrategy::Scan, 2000, 6, 1000);
        assert!(
            m_large > m_small * 2.0,
            "4x c should raise the floor clearly: {m_small} vs {m_large}"
        );
    }
}
