//! Players for the bipartite hitting games.
//!
//! Lemma 11 allows the player to be *any* probabilistic automaton; we
//! implement the two natural extremes — a memoryless uniform guesser
//! and a never-repeat guesser — plus (in [`crate::reduction`]) the
//! player that Lemma 12 constructs out of a broadcast algorithm.

use crate::game::{Edge, HittingGame};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// A hitting-game player: a (possibly randomized) proposal stream.
pub trait Player {
    /// Produces the next proposal.
    fn next_proposal(&mut self, rng: &mut StdRng) -> Edge;
}

/// Proposes a uniformly random edge every round (with repetition).
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformPlayer {
    c: u32,
}

impl UniformPlayer {
    /// A player for side size `c`.
    pub fn new(c: usize) -> Self {
        UniformPlayer { c: c as u32 }
    }
}

impl Player for UniformPlayer {
    fn next_proposal(&mut self, rng: &mut StdRng) -> Edge {
        Edge::new(rng.gen_range(0..self.c), rng.gen_range(0..self.c))
    }
}

/// Proposes the `c²` edges in a uniformly random order without
/// repetition — the strongest memory-using strategy against a uniform
/// referee (every untried edge is equally likely to be in the
/// matching).
#[derive(Debug, Clone)]
pub struct FreshPlayer {
    queue: Vec<Edge>,
    at: usize,
    shuffled: bool,
}

impl FreshPlayer {
    /// A player for side size `c`.
    pub fn new(c: usize) -> Self {
        let mut queue = Vec::with_capacity(c * c);
        for a in 0..c as u32 {
            for b in 0..c as u32 {
                queue.push(Edge::new(a, b));
            }
        }
        FreshPlayer {
            queue,
            at: 0,
            shuffled: false,
        }
    }
}

impl Player for FreshPlayer {
    fn next_proposal(&mut self, rng: &mut StdRng) -> Edge {
        if !self.shuffled {
            self.queue.shuffle(rng);
            self.shuffled = true;
        }
        let e = self.queue[self.at % self.queue.len()];
        self.at += 1;
        e
    }
}

/// Plays `player` against `game` until it wins or `max_rounds` pass;
/// returns the winning round (1-based) or `None`.
///
/// # Examples
///
/// ```
/// use crn_lowerbounds::game::HittingGame;
/// use crn_lowerbounds::players::{play, FreshPlayer};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut game = HittingGame::new(4, 2, &mut rng);
/// let mut player = FreshPlayer::new(4);
/// let won_at = play(&mut game, &mut player, 1_000, &mut rng);
/// assert!(won_at.is_some());
/// ```
pub fn play(
    game: &mut HittingGame,
    player: &mut impl Player,
    max_rounds: u64,
    rng: &mut StdRng,
) -> Option<u64> {
    (1..=max_rounds).find(|_| game.propose(player.next_proposal(rng)))
}

/// Empirical win-by-round curve: for each round `1..=max_rounds`, the
/// fraction of `trials` games won within that many rounds.
///
/// `make_player` builds a fresh player per trial; games use seeds
/// `seed, seed+1, …` so curves are reproducible.
pub fn survival_curve<P: Player>(
    c: usize,
    k: usize,
    trials: usize,
    max_rounds: u64,
    seed: u64,
    mut make_player: impl FnMut(usize) -> P,
) -> Vec<f64> {
    use rand::SeedableRng;
    let mut wins_at = vec![0usize; max_rounds as usize + 1];
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64));
        let mut game = HittingGame::new(c, k, &mut rng);
        let mut player = make_player(c);
        if let Some(r) = play(&mut game, &mut player, max_rounds, &mut rng) {
            wins_at[r as usize] += 1;
        }
    }
    // Cumulative fraction.
    let mut curve = Vec::with_capacity(max_rounds as usize);
    let mut cum = 0usize;
    for wins in wins_at.iter().skip(1) {
        cum += wins;
        curve.push(cum as f64 / trials as f64);
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_core::bounds::hitting_game_floor;
    use rand::SeedableRng;

    #[test]
    fn uniform_player_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = UniformPlayer::new(5);
        for _ in 0..100 {
            let e = p.next_proposal(&mut rng);
            assert!(e.a < 5 && e.b < 5);
        }
    }

    #[test]
    fn fresh_player_never_repeats_within_c_squared() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = FreshPlayer::new(6);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..36 {
            assert!(seen.insert(p.next_proposal(&mut rng)));
        }
    }

    #[test]
    fn fresh_player_always_wins_within_c_squared() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut game = HittingGame::new(5, 2, &mut rng);
            let mut p = FreshPlayer::new(5);
            let r = play(&mut game, &mut p, 25, &mut rng);
            assert!(r.is_some(), "seed {seed}");
        }
    }

    #[test]
    fn lemma11_no_player_wins_fast() {
        // At l = c²/(8k) rounds (β = 2), win probability must be < 1/2.
        // Check both players empirically.
        let (c, k, trials) = (24usize, 3usize, 400usize);
        let floor = hitting_game_floor(c, k, 2.0); // c²/(8k) = 24
        let uni = survival_curve(c, k, trials, floor, 100, UniformPlayer::new);
        let fresh = survival_curve(c, k, trials, floor, 200, FreshPlayer::new);
        assert!(
            *uni.last().unwrap() < 0.5,
            "uniform player won too fast: {}",
            uni.last().unwrap()
        );
        assert!(
            *fresh.last().unwrap() < 0.5,
            "fresh player won too fast: {}",
            fresh.last().unwrap()
        );
    }

    #[test]
    fn lemma14_complete_game_needs_c_over_3() {
        // k = c: at c/3 rounds win probability must be < 1/2.
        let (c, trials) = (30usize, 400usize);
        let floor = (c / 3) as u64;
        let fresh = survival_curve(c, c, trials, floor, 300, FreshPlayer::new);
        assert!(
            *fresh.last().unwrap() < 0.5,
            "fresh player beat the Lemma 14 floor: {}",
            fresh.last().unwrap()
        );
    }

    #[test]
    fn fresh_player_median_near_ln2_c_on_complete_game() {
        // With a perfect matching, each fresh proposal hits w.p.
        // ≈ 1/c, so the median win round is ≈ c·ln 2 ≈ 0.69c.
        let (c, trials) = (40usize, 300usize);
        let curve = survival_curve(c, c, trials, (3 * c) as u64, 400, FreshPlayer::new);
        let median_round = curve.iter().position(|&p| p >= 0.5).unwrap() + 1;
        let expect = 0.69 * c as f64;
        assert!(
            (median_round as f64) > expect * 0.6 && (median_round as f64) < expect * 1.6,
            "median {median_round} vs expected ~{expect}"
        );
    }

    #[test]
    fn survival_curve_is_monotone() {
        let curve = survival_curve(8, 2, 100, 64, 7, UniformPlayer::new);
        for w in curve.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
