//! Adaptive jamming and the Theorem 17 impossibility intuition.
//!
//! Theorem 17 states that under the *dynamic* model with `k < c`, no
//! algorithm can **guarantee** local broadcast in finite time: channel
//! availability can conspire against communication forever. The
//! adversarial mirror image in the jamming world makes that intuition
//! executable: an adversary that sees each node's committed channel
//! choice before resolution ([`crn_sim::Interference::observe_intents`])
//! can, with a budget of just **one** channel per node per slot, jam
//! every transmitter's channel at every listener — so no message is
//! ever delivered and broadcast stalls *indefinitely* ([`SilencerJammer`]).
//!
//! Contrast with Theorem 18's regime (oblivious jamming, `k < c/2`),
//! where unmodified COGCAST completes: see [`crate::theorem18`]. The
//! pair of results brackets exactly how much adversarial power the
//! model can absorb.

use crn_sim::rng::SimRng;
use crn_sim::{GlobalChannel, Intent, Interference, NodeId};
use std::collections::HashSet;

/// An adaptive adversary that silences all communication: for every
/// listener, it jams every channel that any node is transmitting on
/// this slot (subject to its per-node budget).
///
/// With budget ≥ the number of *distinct transmission channels* in a
/// slot it blocks all deliveries; in the worst case for the adversary
/// that is `min(n, c)` channels, but against COGCAST's early phase
/// (one informed transmitter) a budget of **1** already suffices to
/// stall the epidemic forever.
#[derive(Debug, Clone)]
pub struct SilencerJammer {
    /// Per-node, per-slot jam budget.
    budget: usize,
    /// The transmission channels observed this slot (jam targets),
    /// capped at `budget`.
    targets: Vec<GlobalChannel>,
    /// Nodes currently transmitting (they are left unjammed so their
    /// wasted transmissions keep burning slots).
    transmitters: HashSet<NodeId>,
}

impl SilencerJammer {
    /// Creates the adversary with the given per-node budget.
    pub fn new(budget: usize) -> Self {
        SilencerJammer {
            budget,
            targets: Vec::new(),
            transmitters: HashSet::new(),
        }
    }

    /// The configured per-node budget.
    pub fn budget(&self) -> usize {
        self.budget
    }
}

impl Interference for SilencerJammer {
    fn advance(&mut self, _slot: u64, _rng: &mut SimRng) {
        self.targets.clear();
        self.transmitters.clear();
    }

    fn observe_intents(&mut self, _slot: u64, intents: &[Intent]) {
        for intent in intents {
            if intent.broadcast {
                self.transmitters.insert(intent.node);
                if !self.targets.contains(&intent.channel) && self.targets.len() < self.budget {
                    self.targets.push(intent.channel);
                }
            }
        }
    }

    fn is_jammed(&self, node: NodeId, channel: GlobalChannel) -> bool {
        // Jam the transmission channels for every *listener*; leave the
        // transmitters themselves alone (their sends die for lack of
        // unjammed listeners anyway — and leaving them unjammed keeps
        // their feedback plausible).
        !self.transmitters.contains(&node) && self.targets.contains(&channel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_core::cogcast::CogCast;
    use crn_sim::assignment::full_overlap;
    use crn_sim::channel_model::StaticChannels;
    use crn_sim::Network;

    fn informed_after(slots: u64, budget: usize, n: usize, c: usize, seed: u64) -> usize {
        let model = StaticChannels::local(full_overlap(n, c).unwrap(), seed);
        let mut protos = vec![CogCast::source(())];
        protos.extend((1..n).map(|_| CogCast::node()));
        let mut net =
            Network::with_interference(model, protos, seed, Box::new(SilencerJammer::new(budget)))
                .unwrap();
        net.run_slots(slots);
        net.protocols().iter().filter(|p| p.is_informed()).count()
    }

    #[test]
    fn budget_one_stalls_the_epidemic_forever() {
        // Only the source transmits while nobody else is informed, so
        // one jammed channel per node per slot silences the network —
        // the Theorem 17 "conspiring availability" in jamming form.
        for seed in 0..3 {
            assert_eq!(informed_after(20_000, 1, 12, 8, seed), 1, "seed {seed}");
        }
    }

    #[test]
    fn zero_budget_is_harmless() {
        let informed = informed_after(10_000, 0, 12, 8, 1);
        assert_eq!(informed, 12, "no budget, no jamming");
    }

    #[test]
    fn oblivious_jammer_with_same_budget_cannot_stall() {
        // The contrast that makes Theorem 18 meaningful: an oblivious
        // random jammer with the same tiny budget barely slows COGCAST.
        use crate::{run_jammed_broadcast, JammerStrategy};
        let run = run_jammed_broadcast(12, 8, 1, JammerStrategy::Random, 1, 20.0).unwrap();
        assert!(run.completed(), "oblivious k=1 must not stall broadcast");
    }

    #[test]
    fn jams_only_listeners_on_target_channels() {
        let mut j = SilencerJammer::new(2);
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(0);
        j.advance(0, &mut rng);
        j.observe_intents(
            0,
            &[
                Intent {
                    node: NodeId(0),
                    channel: GlobalChannel(3),
                    broadcast: true,
                },
                Intent {
                    node: NodeId(1),
                    channel: GlobalChannel(3),
                    broadcast: false,
                },
            ],
        );
        assert!(j.is_jammed(NodeId(1), GlobalChannel(3)), "listener jammed");
        assert!(
            !j.is_jammed(NodeId(0), GlobalChannel(3)),
            "transmitter spared"
        );
        assert!(
            !j.is_jammed(NodeId(1), GlobalChannel(4)),
            "other channels clean"
        );
    }

    #[test]
    fn budget_caps_targets() {
        let mut j = SilencerJammer::new(1);
        let mut rng = <SimRng as rand::SeedableRng>::seed_from_u64(0);
        j.advance(0, &mut rng);
        j.observe_intents(
            0,
            &[
                Intent {
                    node: NodeId(0),
                    channel: GlobalChannel(1),
                    broadcast: true,
                },
                Intent {
                    node: NodeId(2),
                    channel: GlobalChannel(5),
                    broadcast: true,
                },
            ],
        );
        let jammed = [1u32, 5]
            .iter()
            .filter(|&&ch| j.is_jammed(NodeId(9), GlobalChannel(ch)))
            .count();
        assert_eq!(jammed, 1, "budget 1 jams exactly one channel");
    }
}
