//! The Theorem 18 reduction in action: COGCAST under jamming.
//!
//! Theorem 18 maps a multi-channel network `N'` with an n-uniform
//! jammer disabling at most `k < c/2` channels per node per slot onto a
//! *dynamic* cognitive radio network `N` with per-slot pairwise overlap
//! at least `c − 2k`: a node's usable channel set in a slot is its
//! unjammed set (≥ `c − k` channels), and two nodes' usable sets
//! intersect in at least `c − 2k` channels. Since COGCAST solves
//! broadcast in dynamic networks without modification, it solves
//! broadcast in `N'` too — at the cost of the reduced effective
//! overlap, plus a constant factor `c/(c−k)` for slots wasted on
//! jammed picks.
//!
//! [`run_jammed_broadcast`] measures this: COGCAST (unchanged, uniform
//! hopping over all `c` channels) running in a fully-shared `c`-channel
//! network under each [`JammerStrategy`].

use crate::jammer::{JammerStrategy, UniformJammer};
use crn_core::bounds;
use crn_core::cogcast::CogCast;
use crn_sim::assignment::full_overlap;
use crn_sim::channel_model::StaticChannels;
use crn_sim::{Network, SimError};
use serde::{Deserialize, Serialize};

/// Statistics of one jammed broadcast run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JammedRun {
    /// Slots until everyone was informed, or `None` on timeout.
    pub slots: Option<u64>,
    /// The slot budget allowed.
    pub budget: u64,
    /// Informed count after each slot.
    pub informed_per_slot: Vec<usize>,
}

impl JammedRun {
    /// True if broadcast completed within the budget.
    pub fn completed(&self) -> bool {
        self.slots.is_some()
    }
}

/// The slot budget the reduction predicts: the Theorem 4 budget at
/// effective overlap `c − 2k`, inflated by the `c/(c−k)` jammed-pick
/// factor (and never less than the unjammed budget).
///
/// # Panics
///
/// Panics unless `k < c/2` (the Theorem 18 regime).
pub fn jammed_budget(n: usize, c: usize, k: usize, alpha: f64) -> u64 {
    assert!(2 * k < c, "Theorem 18 needs k < c/2 (k = {k}, c = {c})");
    let effective = c - 2 * k;
    let base = bounds::cogcast_slots(n, c, effective.max(1), alpha);
    let waste = c as f64 / (c - k) as f64;
    (base as f64 * waste).ceil() as u64
}

/// Runs COGCAST (node 0 the source) in an `n`-node, `c`-channel
/// fully-shared network against an n-uniform jammer of budget `k`.
///
/// # Errors
///
/// Propagates [`SimError`] from model or network construction.
///
/// # Panics
///
/// Panics unless `k < c/2`.
///
/// # Examples
///
/// ```
/// use crn_jamming::{run_jammed_broadcast, JammerStrategy};
/// let run = run_jammed_broadcast(10, 8, 2, JammerStrategy::Random, 5, 10.0)?;
/// assert!(run.completed());
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn run_jammed_broadcast(
    n: usize,
    c: usize,
    k: usize,
    strategy: JammerStrategy,
    seed: u64,
    alpha: f64,
) -> Result<JammedRun, SimError> {
    let budget = jammed_budget(n, c, k, alpha);
    let model = StaticChannels::local(full_overlap(n, c)?, seed);
    let mut protos = Vec::with_capacity(n);
    protos.push(CogCast::source(()));
    protos.extend((1..n).map(|_| CogCast::node()));
    let jammer = UniformJammer::new(n, c, k, strategy);
    let mut net = Network::with_interference(model, protos, seed, Box::new(jammer))?;

    let mut informed_per_slot = Vec::new();
    let mut slots = None;
    for s in 0..budget {
        net.step();
        let informed = net.protocols().iter().filter(|p| p.is_informed()).count();
        informed_per_slot.push(informed);
        if informed == n {
            slots = Some(s + 1);
            break;
        }
    }
    Ok(JammedRun {
        slots,
        budget,
        informed_per_slot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_under_every_strategy() {
        for strategy in JammerStrategy::ALL {
            for seed in 0..3 {
                let run = run_jammed_broadcast(12, 9, 3, strategy, seed, 12.0).unwrap();
                assert!(
                    run.completed(),
                    "{} seed {seed} missed budget {}",
                    strategy.name(),
                    run.budget
                );
            }
        }
    }

    #[test]
    fn unjammed_special_case_matches_plain_cogcast_budget() {
        // k = 0 means no interference at all.
        let run = run_jammed_broadcast(10, 6, 0, JammerStrategy::Random, 1, 10.0).unwrap();
        assert!(run.completed());
        assert_eq!(run.budget, bounds::cogcast_slots(10, 6, 6, 10.0));
    }

    #[test]
    fn heavier_jamming_slows_broadcast() {
        let mean = |k: usize| -> f64 {
            let trials = 12;
            let mut total = 0u64;
            for seed in 0..trials {
                let run =
                    run_jammed_broadcast(16, 12, k, JammerStrategy::Random, seed, 40.0).unwrap();
                total += run.slots.expect("must complete within the padded budget");
            }
            total as f64 / trials as f64
        };
        let light = mean(1);
        let heavy = mean(5);
        assert!(
            heavy > light,
            "k=5 ({heavy}) should be slower than k=1 ({light})"
        );
    }

    #[test]
    #[should_panic(expected = "k < c/2")]
    fn out_of_regime_rejected() {
        jammed_budget(4, 6, 3, 10.0);
    }

    #[test]
    fn informed_curve_monotone_under_jamming() {
        let run = run_jammed_broadcast(14, 8, 3, JammerStrategy::Sweep, 7, 20.0).unwrap();
        for w in run.informed_per_slot.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
