//! n-uniform jamming adversaries (Section 7, Theorem 18).
//!
//! An *n-uniform* jamming adversary may partition the `n` nodes into `n`
//! singleton groups and make a separate jamming decision for each node:
//! per slot, per node, she disables up to `k` of the `c` channels *for
//! that node*. A node whose chosen channel is jammed can neither deliver
//! nor receive on it that slot (it observes
//! [`crn_sim::Event::Jammed`]).
//!
//! Three concrete strategies cover the adversary space the experiments
//! sweep: oblivious-random, a rotating sweep, and a static targeted
//! jammer.

use crn_sim::rng::SimRng;
use crn_sim::{GlobalChannel, Interference, NodeId};
use rand::seq::index::sample;
use serde::{Deserialize, Serialize};

/// The jammer strategies swept by experiment F9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JammerStrategy {
    /// A fresh uniform `k`-subset per node per slot.
    Random,
    /// Node `u` in slot `t` has the contiguous block starting at
    /// `(t + u) mod c` jammed — deterministic, full coverage over time.
    Sweep,
    /// Channels `0..k` are jammed for every node in every slot (the
    /// strongest *static* jammer: it simply deletes `k` channels).
    Targeted,
}

impl JammerStrategy {
    /// All strategies, in sweep order.
    pub const ALL: [JammerStrategy; 3] = [
        JammerStrategy::Random,
        JammerStrategy::Sweep,
        JammerStrategy::Targeted,
    ];

    /// Human-readable name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            JammerStrategy::Random => "random",
            JammerStrategy::Sweep => "sweep",
            JammerStrategy::Targeted => "targeted",
        }
    }
}

/// An n-uniform jammer with budget `k` channels per node per slot.
#[derive(Debug, Clone)]
pub struct UniformJammer {
    n: usize,
    c: usize,
    k: usize,
    strategy: JammerStrategy,
    /// `jammed[node][channel]` for the current slot.
    jammed: Vec<Vec<bool>>,
    slot: u64,
}

impl UniformJammer {
    /// Creates a jammer for `n` nodes and `c` channels, jamming at most
    /// `k` channels per node per slot.
    ///
    /// # Panics
    ///
    /// Panics if `k > c`.
    pub fn new(n: usize, c: usize, k: usize, strategy: JammerStrategy) -> Self {
        assert!(
            k <= c,
            "jam budget k = {k} exceeds the channel count c = {c}"
        );
        UniformJammer {
            n,
            c,
            k,
            strategy,
            jammed: vec![vec![false; c]; n],
            slot: 0,
        }
    }

    /// The per-node jam budget.
    pub fn budget(&self) -> usize {
        self.k
    }

    /// Number of channels currently jammed for `node`.
    pub fn jammed_count(&self, node: usize) -> usize {
        self.jammed[node].iter().filter(|&&b| b).count()
    }
}

impl Interference for UniformJammer {
    fn advance(&mut self, slot: u64, rng: &mut SimRng) {
        self.slot = slot;
        for node in 0..self.n {
            let mask = &mut self.jammed[node];
            mask.iter_mut().for_each(|b| *b = false);
            if self.k == 0 {
                continue;
            }
            match self.strategy {
                JammerStrategy::Random => {
                    for i in sample(rng, self.c, self.k) {
                        mask[i] = true;
                    }
                }
                JammerStrategy::Sweep => {
                    let start = ((slot + node as u64) % self.c as u64) as usize;
                    for off in 0..self.k {
                        mask[(start + off) % self.c] = true;
                    }
                }
                JammerStrategy::Targeted => {
                    for ch in mask.iter_mut().take(self.k) {
                        *ch = true;
                    }
                }
            }
        }
    }

    fn is_jammed(&self, node: NodeId, channel: GlobalChannel) -> bool {
        self.jammed
            .get(node.index())
            .and_then(|m| m.get(channel.index()))
            .copied()
            .unwrap_or(false)
    }

    fn jam_budget(&self) -> Option<usize> {
        Some(self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn advanced(strategy: JammerStrategy, slot: u64) -> UniformJammer {
        let mut j = UniformJammer::new(4, 8, 3, strategy);
        let mut rng = SimRng::seed_from_u64(1);
        for s in 0..=slot {
            j.advance(s, &mut rng);
        }
        j
    }

    #[test]
    fn budget_respected_by_all_strategies() {
        for strategy in JammerStrategy::ALL {
            for slot in 0..20 {
                let j = advanced(strategy, slot);
                for node in 0..4 {
                    assert_eq!(
                        j.jammed_count(node),
                        3,
                        "{} at slot {slot}",
                        strategy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn targeted_jams_prefix() {
        let j = advanced(JammerStrategy::Targeted, 5);
        for node in 0..4u32 {
            for ch in 0..3u32 {
                assert!(j.is_jammed(NodeId(node), GlobalChannel(ch)));
            }
            for ch in 3..8u32 {
                assert!(!j.is_jammed(NodeId(node), GlobalChannel(ch)));
            }
        }
    }

    #[test]
    fn sweep_rotates_per_node_and_slot() {
        let j = advanced(JammerStrategy::Sweep, 0);
        // slot 0, node 0: block [0,3); node 1: [1,4).
        assert!(j.is_jammed(NodeId(0), GlobalChannel(0)));
        assert!(!j.is_jammed(NodeId(0), GlobalChannel(3)));
        assert!(j.is_jammed(NodeId(1), GlobalChannel(1)));
        assert!(!j.is_jammed(NodeId(1), GlobalChannel(0)));
    }

    #[test]
    fn random_changes_between_slots() {
        let mut j = UniformJammer::new(1, 32, 4, JammerStrategy::Random);
        let mut rng = SimRng::seed_from_u64(9);
        j.advance(0, &mut rng);
        let first: Vec<bool> = (0..32u32)
            .map(|ch| j.is_jammed(NodeId(0), GlobalChannel(ch)))
            .collect();
        j.advance(1, &mut rng);
        let second: Vec<bool> = (0..32u32)
            .map(|ch| j.is_jammed(NodeId(0), GlobalChannel(ch)))
            .collect();
        assert_ne!(first, second, "a 4-of-32 redraw virtually always differs");
    }

    #[test]
    fn zero_budget_never_jams() {
        let mut j = UniformJammer::new(2, 4, 0, JammerStrategy::Random);
        let mut rng = SimRng::seed_from_u64(0);
        j.advance(0, &mut rng);
        for ch in 0..4u32 {
            assert!(!j.is_jammed(NodeId(0), GlobalChannel(ch)));
        }
    }

    #[test]
    fn out_of_range_queries_are_unjammed() {
        let j = advanced(JammerStrategy::Targeted, 0);
        assert!(!j.is_jammed(NodeId(99), GlobalChannel(0)));
        assert!(!j.is_jammed(NodeId(0), GlobalChannel(99)));
    }

    #[test]
    #[should_panic(expected = "exceeds the channel count")]
    fn over_budget_rejected() {
        UniformJammer::new(2, 4, 5, JammerStrategy::Random);
    }
}
