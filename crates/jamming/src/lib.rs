//! # crn-jamming — n-uniform jamming adversaries and Theorem 18
//!
//! The paper closes (Section 7, Theorem 18) by connecting broadcast in
//! *dynamic* cognitive radio networks to jamming-resistant broadcast in
//! multi-channel wireless networks: an algorithm that tolerates local
//! labels and per-slot channel churn automatically tolerates an
//! n-uniform jammer disabling up to `k < c/2` channels per node per
//! slot. This crate builds the jammers ([`jammer`]) and runs COGCAST —
//! completely unmodified — against them ([`theorem18`]).
//!
//! ```
//! use crn_jamming::{run_jammed_broadcast, JammerStrategy};
//! let run = run_jammed_broadcast(8, 6, 1, JammerStrategy::Sweep, 2, 12.0)?;
//! assert!(run.completed());
//! # Ok::<(), crn_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod jammer;
pub mod theorem18;

pub use adaptive::SilencerJammer;
pub use jammer::{JammerStrategy, UniformJammer};
pub use theorem18::{jammed_budget, run_jammed_broadcast, JammedRun};
