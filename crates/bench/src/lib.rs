//! # crn-bench — the experiment harness
//!
//! One function per reproduced table/figure of the paper's claims (the
//! paper has no numbered tables or figures — it is a PODC theory paper
//! — so the ids T1–T5/F1–F12 are defined in DESIGN.md, each tied to a
//! theorem or section). The `experiments` binary prints any subset:
//!
//! ```text
//! cargo run -p crn-bench --bin experiments -- all --quick
//! cargo run -p crn-bench --bin experiments -- t1 f4
//! ```
//!
//! Criterion benches (`cargo bench -p crn-bench`) time the protocol
//! kernels themselves.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod effort;
pub mod experiments;

pub use effort::{mean_slots, par_trials, Effort};
pub use experiments::{run_experiment, Artifact, EXPERIMENT_IDS};
