//! Effort levels and the parallel trial runner.

use crn_sim::pool::{self, RunMode, WorkerPool};
use serde::{Deserialize, Serialize};
use std::cell::UnsafeCell;

/// How much work an experiment invocation spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Effort {
    /// Reduced trials/grids: seconds per experiment. Used by the
    /// Criterion benches and `experiments --quick`.
    Quick,
    /// The full grids reported in EXPERIMENTS.md.
    Full,
}

impl Effort {
    /// Scales a full-effort trial count down for quick runs.
    ///
    /// ```
    /// use crn_bench::Effort;
    /// assert_eq!(Effort::Full.trials(30), 30);
    /// assert_eq!(Effort::Quick.trials(30), 6);
    /// assert_eq!(Effort::Quick.trials(3), 2);
    /// ```
    pub fn trials(self, full: usize) -> usize {
        match self {
            Effort::Full => full,
            Effort::Quick => (full / 5).max(2),
        }
    }

    /// Caps a sweep list for quick runs.
    ///
    /// Quick mode keeps a *spread* of the grid — first, middle and last
    /// entries — not a prefix: grids are ordered small-to-large, and the
    /// largest point is exactly where engine regressions hide, so a
    /// quick run must still exercise it.
    ///
    /// ```
    /// use crn_bench::Effort;
    /// let grid = [16, 32, 64, 128, 256];
    /// assert_eq!(Effort::Quick.sweep(&grid), vec![16, 64, 256]);
    /// assert_eq!(Effort::Full.sweep(&grid), grid.to_vec());
    /// ```
    pub fn sweep<T: Clone>(self, full: &[T]) -> Vec<T> {
        match self {
            Effort::Full => full.to_vec(),
            Effort::Quick => {
                if full.len() <= 3 {
                    full.to_vec()
                } else {
                    vec![
                        full[0].clone(),
                        full[full.len() / 2].clone(),
                        full[full.len() - 1].clone(),
                    ]
                }
            }
        }
    }
}

/// Runs `f(seed)` for seeds `0..trials` on the process-wide persistent
/// worker pool ([`crn_sim::pool::global`]) and returns the results in
/// seed order.
///
/// The pool defaults to one worker per core and is governed by the
/// `CRN_THREADS` env override / `--threads` flag. Because the engine's
/// intra-slot parallelism draws from the *same* pool, nested use
/// (parallel trials × parallel slots) shares one core budget: a trial
/// body that tries to fan out from inside a pool worker simply runs
/// inline instead of oversubscribing.
///
/// # Panics
///
/// Propagates panics from `f`.
///
/// # Examples
///
/// ```
/// use crn_bench::effort::par_trials;
/// let xs = par_trials(8, |seed| seed * 2);
/// assert_eq!(xs, vec![0, 2, 4, 6, 8, 10, 12, 14]);
/// ```
pub fn par_trials<T: Send>(trials: usize, f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    run_trials_on(&pool::global(), trials, &f).0
}

/// One result slot, written by exactly one worker.
///
/// Safety: the index of each slot is claimed from an atomic counter by
/// exactly one worker, which performs the only write; reads happen only
/// after the pool's end-of-job barrier (or the scoped join, for the
/// static-chunked baseline). The `Sync` bound is therefore sound for
/// any `T: Send`.
struct TrialSlot<T>(UnsafeCell<Option<T>>);

unsafe impl<T: Send> Sync for TrialSlot<T> {}

/// [`par_trials`] with an explicit worker count.
///
/// The scheduler is work-stealing: workers claim the next unstarted seed
/// from a shared atomic counter, so a mix of cheap `Done` trials and
/// expensive `Timeout` trials never leaves cores idle the way static
/// chunking does. Every trial is keyed by its seed, not by which worker
/// ran it, so the returned vector is identical for any `workers >= 1` —
/// the `results_independent_of_worker_count` test pins this down.
pub fn par_trials_with_workers<T: Send>(
    trials: usize,
    workers: usize,
    f: impl Fn(u64) -> T + Sync,
) -> Vec<T> {
    par_trials_with_worker_loads(trials, workers, f).0
}

/// [`par_trials_with_workers`], also returning how many trials each
/// worker executed (`loads[w]` = trials claimed by worker `w`).
///
/// The loads depend on scheduling and are *not* deterministic — only the
/// results are. They exist so stress tests can assert that the
/// work-stealing scheduler actually spreads a skewed workload across all
/// workers.
pub fn par_trials_with_worker_loads<T: Send>(
    trials: usize,
    workers: usize,
    f: impl Fn(u64) -> T + Sync,
) -> (Vec<T>, Vec<usize>) {
    let workers = workers.max(1).min(trials.max(1));
    if workers <= 1 {
        return ((0..trials as u64).map(f).collect(), vec![trials]);
    }
    // Reuse the shared persistent pool when it matches the requested
    // width (the common case — everything then draws from one core
    // budget); spawn a dedicated pool only for explicit non-default
    // widths, e.g. the worker-count sweeps in stress tests.
    let global = pool::global();
    let dedicated;
    let pool: &WorkerPool = if global.workers() == workers {
        &global
    } else {
        dedicated = WorkerPool::new(workers);
        &dedicated
    };
    let (results, mode) = run_trials_on(pool, trials, &f);
    let loads = match mode {
        RunMode::Parallel => pool.last_loads(),
        RunMode::Inline => {
            // The submitting thread ran every trial itself (nested
            // call, or a job already in flight on the shared pool).
            let mut loads = vec![0usize; workers];
            loads[0] = trials;
            loads
        }
    };
    (results, loads)
}

/// The shared scheduling core: fans seeds `0..trials` across `pool`
/// at chunk size 1 (trial-granular work stealing — workers claim the
/// next unstarted seed from one atomic counter), writing each result
/// into its seed-keyed slot.
fn run_trials_on<T: Send>(
    pool: &WorkerPool,
    trials: usize,
    f: &(impl Fn(u64) -> T + Sync),
) -> (Vec<T>, RunMode) {
    let slots: Vec<TrialSlot<T>> = (0..trials)
        .map(|_| TrialSlot(UnsafeCell::new(None)))
        .collect();
    let mode = pool.run(trials, 1, &|start, end| {
        for (offset, slot) in slots[start..end].iter().enumerate() {
            let result = f((start + offset) as u64);
            // Safety: the pool hands each index to exactly one worker,
            // which performs the only write; reads happen after the
            // pool's end-of-job barrier.
            unsafe { *slot.0.get() = Some(result) };
        }
    });
    let results = slots
        .into_iter()
        .map(|slot| slot.0.into_inner().expect("every seed was claimed"))
        .collect();
    (results, mode)
}

/// The pre-work-stealing scheduler: seeds split into contiguous static
/// chunks, one per worker.
///
/// Kept (hidden) as the comparison baseline for the skewed-workload
/// regression test and the `BENCH_experiments.json` numbers: when trial
/// costs are skewed, the worker whose chunk holds the expensive seeds
/// becomes the critical path while the rest go idle.
#[doc(hidden)]
pub fn par_trials_static_chunked<T: Send>(
    trials: usize,
    workers: usize,
    f: impl Fn(u64) -> T + Sync,
) -> Vec<T> {
    let workers = workers.max(1).min(trials.max(1));
    if workers <= 1 {
        return (0..trials as u64).map(f).collect();
    }
    let mut results: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    let chunk = trials.div_ceil(workers);
    std::thread::scope(|s| {
        for (w, slice) in results.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (i, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(f((w * chunk + i) as u64));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// Mean of `f(seed)` over `trials` seeds, where `f` yields a slot count.
pub fn mean_slots(trials: usize, f: impl Fn(u64) -> u64 + Sync) -> f64 {
    let xs = par_trials(trials, f);
    xs.iter().sum::<u64>() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_trials_preserves_order() {
        let xs = par_trials(100, |s| s);
        assert_eq!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn par_trials_zero_is_empty() {
        let xs: Vec<u64> = par_trials(0, |s| s);
        assert!(xs.is_empty());
    }

    #[test]
    fn mean_slots_averages() {
        assert_eq!(mean_slots(4, |s| s + 1), 2.5);
    }

    #[test]
    fn results_independent_of_worker_count() {
        // The same trial function, fanned out over 1..=9 workers
        // (including counts that do not divide the trial count), must
        // produce byte-identical results in seed order: trials are
        // keyed by seed, never by scheduling.
        let f = |seed: u64| {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            (seed, rng.gen::<u64>())
        };
        let reference = par_trials_with_workers(23, 1, f);
        for workers in 2..=9 {
            assert_eq!(
                par_trials_with_workers(23, workers, f),
                reference,
                "results changed with {workers} workers"
            );
            assert_eq!(
                par_trials_static_chunked(23, workers, f),
                reference,
                "static baseline diverged with {workers} workers"
            );
        }
        assert_eq!(par_trials(23, f), reference, "default worker count differs");
    }

    #[test]
    fn worker_loads_cover_all_trials() {
        let (xs, loads) = par_trials_with_worker_loads(40, 4, |s| s);
        assert_eq!(xs, (0..40).collect::<Vec<_>>());
        assert_eq!(loads.len(), 4);
        assert_eq!(loads.iter().sum::<usize>(), 40);
    }

    #[test]
    fn worker_loads_single_worker() {
        let (xs, loads) = par_trials_with_worker_loads(5, 1, |s| s);
        assert_eq!(xs, vec![0, 1, 2, 3, 4]);
        assert_eq!(loads, vec![5]);
    }

    #[test]
    #[should_panic(expected = "trial 3 exploded")]
    fn worker_panics_propagate() {
        par_trials_with_workers(8, 4, |s| {
            if s == 3 {
                panic!("trial 3 exploded");
            }
            s
        });
    }

    #[test]
    fn quick_effort_shrinks() {
        assert!(Effort::Quick.trials(100) < 100);
        assert!(Effort::Quick.trials(100) >= 2);
        assert_eq!(Effort::Quick.sweep(&[1, 2, 3, 4, 5]).len(), 3);
        assert_eq!(Effort::Full.sweep(&[1, 2, 3, 4, 5]).len(), 5);
    }

    #[test]
    fn quick_sweep_keeps_first_middle_last() {
        // The quick sweep must include the grid's extremes (especially
        // the largest point, where engine regressions hide), not just a
        // prefix.
        assert_eq!(Effort::Quick.sweep(&[16, 32, 64, 128, 256]), [16, 64, 256]);
        assert_eq!(Effort::Quick.sweep(&[1, 2, 3, 4]), [1, 3, 4]);
        assert_eq!(Effort::Quick.sweep(&[1, 2, 3]), [1, 2, 3]);
        assert_eq!(Effort::Quick.sweep(&[1, 2]), [1, 2]);
        assert_eq!(Effort::Quick.sweep::<u32>(&[]), Vec::<u32>::new());
    }
}
