//! Effort levels and the parallel trial runner.

use serde::{Deserialize, Serialize};

/// How much work an experiment invocation spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Effort {
    /// Reduced trials/grids: seconds per experiment. Used by the
    /// Criterion benches and `experiments --quick`.
    Quick,
    /// The full grids reported in EXPERIMENTS.md.
    Full,
}

impl Effort {
    /// Scales a full-effort trial count down for quick runs.
    ///
    /// ```
    /// use crn_bench::Effort;
    /// assert_eq!(Effort::Full.trials(30), 30);
    /// assert_eq!(Effort::Quick.trials(30), 6);
    /// assert_eq!(Effort::Quick.trials(3), 2);
    /// ```
    pub fn trials(self, full: usize) -> usize {
        match self {
            Effort::Full => full,
            Effort::Quick => (full / 5).max(2),
        }
    }

    /// Caps a sweep list for quick runs (keeps a prefix).
    pub fn sweep<T: Clone>(self, full: &[T]) -> Vec<T> {
        match self {
            Effort::Full => full.to_vec(),
            Effort::Quick => full[..full.len().min(3)].to_vec(),
        }
    }
}

/// Runs `f(seed)` for seeds `0..trials` across all cores and returns
/// the results in seed order.
///
/// # Panics
///
/// Propagates panics from `f`.
///
/// # Examples
///
/// ```
/// use crn_bench::effort::par_trials;
/// let xs = par_trials(8, |seed| seed * 2);
/// assert_eq!(xs, vec![0, 2, 4, 6, 8, 10, 12, 14]);
/// ```
pub fn par_trials<T: Send>(trials: usize, f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    par_trials_with_workers(trials, workers, f)
}

/// [`par_trials`] with an explicit worker count.
///
/// Every trial is keyed by its seed, not by which worker ran it, so the
/// returned vector is identical for any `workers >= 1` — the
/// `results_independent_of_worker_count` test pins this down.
pub fn par_trials_with_workers<T: Send>(
    trials: usize,
    workers: usize,
    f: impl Fn(u64) -> T + Sync,
) -> Vec<T> {
    let workers = workers.max(1).min(trials.max(1));
    if workers <= 1 {
        return (0..trials as u64).map(f).collect();
    }
    let mut results: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    let chunk = trials.div_ceil(workers);
    std::thread::scope(|s| {
        for (w, slice) in results.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (i, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(f((w * chunk + i) as u64));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// Mean of `f(seed)` over `trials` seeds, where `f` yields a slot count.
pub fn mean_slots(trials: usize, f: impl Fn(u64) -> u64 + Sync) -> f64 {
    let xs = par_trials(trials, f);
    xs.iter().sum::<u64>() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_trials_preserves_order() {
        let xs = par_trials(100, |s| s);
        assert_eq!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn par_trials_zero_is_empty() {
        let xs: Vec<u64> = par_trials(0, |s| s);
        assert!(xs.is_empty());
    }

    #[test]
    fn mean_slots_averages() {
        assert_eq!(mean_slots(4, |s| s + 1), 2.5);
    }

    #[test]
    fn results_independent_of_worker_count() {
        // The same trial function, fanned out over 1..=9 workers
        // (including counts that do not divide the trial count), must
        // produce byte-identical results in seed order: trials are
        // keyed by seed, never by scheduling.
        let f = |seed: u64| {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            (seed, rng.gen::<u64>())
        };
        let reference = par_trials_with_workers(23, 1, f);
        for workers in 2..=9 {
            assert_eq!(
                par_trials_with_workers(23, workers, f),
                reference,
                "results changed with {workers} workers"
            );
        }
        assert_eq!(par_trials(23, f), reference, "default worker count differs");
    }

    #[test]
    fn quick_effort_shrinks() {
        assert!(Effort::Quick.trials(100) < 100);
        assert!(Effort::Quick.trials(100) >= 2);
        assert_eq!(Effort::Quick.sweep(&[1, 2, 3, 4, 5]).len(), 3);
        assert_eq!(Effort::Full.sweep(&[1, 2, 3, 4, 5]).len(), 5);
    }
}
