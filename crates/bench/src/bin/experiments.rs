//! Regenerates the paper-claim tables and figures.
//!
//! Usage:
//!
//! ```text
//! experiments all [--quick] [--out results.md]
//! experiments t1 f4 f10 [--quick]
//! experiments --list
//! ```

use crn_bench::effort::{par_trials_static_chunked, par_trials_with_workers};
use crn_bench::{run_experiment, Effort, EXPERIMENT_IDS};
use std::io::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list") {
        for id in EXPERIMENT_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let effort = if args.iter().any(|a| a == "--quick") {
        Effort::Quick
    } else {
        Effort::Full
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let time_json = args
        .iter()
        .position(|a| a == "--time-json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    // Size the worker pool before any experiment touches it; a bad
    // --threads or CRN_THREADS is a startup error, never a silent
    // fall-back to the default width.
    let threads = match args.iter().position(|a| a == "--threads") {
        Some(i) => match args.get(i + 1) {
            Some(v) => Some(v.clone()),
            None => {
                eprintln!("--threads needs a value");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if let Err(e) = crn_sim::pool::init_from_flag(threads.as_deref()) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let mut out_file = match &out_path {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let skip_values: Vec<&String> = out_path
        .iter()
        .chain(csv_dir.iter())
        .chain(time_json.iter())
        .chain(threads.iter())
        .collect();
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && !skip_values.contains(a))
        .map(|a| a.to_lowercase())
        .collect();
    if ids.iter().any(|a| a == "all") {
        ids = EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect();
    }
    if ids.is_empty() {
        eprintln!("no experiments selected; try `experiments all --quick`");
        return ExitCode::FAILURE;
    }
    let suite_start = Instant::now();
    let mut timings: Vec<(String, f64)> = Vec::new();
    for id in &ids {
        let start = std::time::Instant::now();
        match run_experiment(id, effort) {
            Some(artifact) => {
                timings.push((id.clone(), start.elapsed().as_secs_f64() * 1000.0));
                let footer = format!(
                    "[{} completed in {:.1}s at {:?} effort]\n",
                    id,
                    start.elapsed().as_secs_f64(),
                    effort
                );
                println!("{artifact}");
                println!("{footer}");
                if let Some(f) = out_file.as_mut() {
                    if let Err(e) = writeln!(f, "{artifact}\n{footer}") {
                        eprintln!("write failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                if let Some(dir) = &csv_dir {
                    let path = format!("{dir}/{id}.csv");
                    if let Err(e) = std::fs::write(&path, artifact.to_csv()) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => {
                eprintln!("unknown experiment id: {id} (see --list)");
                return ExitCode::FAILURE;
            }
        }
    }
    let suite_wall = suite_start.elapsed().as_secs_f64();
    if let Some(path) = out_path {
        eprintln!("results written to {path}");
    }
    if let Some(path) = time_json {
        if let Err(e) = std::fs::write(&path, time_report(effort, &timings, suite_wall)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("timings written to {path}");
    }
    ExitCode::SUCCESS
}

/// End-to-end suite timings recorded at commit 769a573, before the
/// work-stealing scheduler, the owned `SimRng` dispatch and the
/// active-channel slot resolution landed. Quick mode then swept a grid
/// *prefix* (small points only); it now sweeps first/middle/last, so
/// the current quick suite covers the large grid points the old one
/// skipped — wall-clock comparisons below are same-command, not
/// same-work.
const BASELINE_COMMIT: &str = "769a573";
const BASELINE_TOTAL_S: f64 = 0.772;
const BASELINE_MS: [(&str, f64); 25] = [
    ("t1", 33.0),
    ("t2", 126.0),
    ("t3", 3.0),
    ("t4", 3.0),
    ("t5", 2.0),
    ("t6", 272.0),
    ("f1", 3.0),
    ("f2", 3.0),
    ("f3", 15.0),
    ("f4", 3.0),
    ("f5", 12.0),
    ("f6", 21.0),
    ("f7", 10.0),
    ("f8", 5.0),
    ("f9", 5.0),
    ("f10", 2.0),
    ("f11", 4.0),
    ("f12", 5.0),
    ("f13", 3.0),
    ("f14", 3.0),
    ("f15", 3.0),
    ("a1", 50.0),
    ("a2", 4.0),
    ("a3", 147.0),
    ("a4", 55.0),
];

/// Measures the scheduler head-to-head on a skewed sleep workload (the
/// adversarial case for static chunking; sleep-based so the comparison
/// holds even on a single-core box) and renders the full
/// `BENCH_experiments.json` payload.
fn time_report(effort: Effort, timings: &[(String, f64)], total_s: f64) -> String {
    let skewed = |seed: u64| {
        std::thread::sleep(Duration::from_millis(if seed < 4 { 40 } else { 1 }));
        seed
    };
    let t0 = Instant::now();
    par_trials_static_chunked(16, 4, skewed);
    let static_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    par_trials_with_workers(16, 4, skewed);
    let stealing_s = t0.elapsed().as_secs_f64();

    let rows: Vec<String> = timings
        .iter()
        .map(|(id, ms)| format!("    {{\"id\": \"{id}\", \"ms\": {ms:.0}}}"))
        .collect();
    let baseline_rows: Vec<String> = BASELINE_MS
        .iter()
        .map(|(id, ms)| format!("      {{\"id\": \"{id}\", \"ms\": {ms:.0}}}"))
        .collect();
    format!(
        "{{\n  \"bench\": \"experiments_end_to_end\",\n  \"command\": \"experiments all --quick --time-json BENCH_experiments.json\",\n  \"effort\": \"{effort:?}\",\n  \"scheduler\": \"work-stealing (atomic seed counter, seed-keyed slots)\",\n  \"rng\": \"SimRng (owned xoshiro256++, stream-preserving vs. prior StdRng)\",\n  \"total_s\": {total_s:.3},\n  \"per_experiment\": [\n{}\n  ],\n  \"skewed_par_trials\": {{\n    \"workload\": \"16 trials, 4 workers; seeds 0-3 sleep 40 ms, rest 1 ms\",\n    \"static_chunked_s\": {static_s:.3},\n    \"work_stealing_s\": {stealing_s:.3},\n    \"speedup\": {:.2}\n  }},\n  \"baseline_before\": {{\n    \"commit\": \"{BASELINE_COMMIT}\",\n    \"note\": \"static-chunked scheduler, StdRng dispatch, prefix quick sweeps (smaller grid points than current quick mode)\",\n    \"total_s\": {BASELINE_TOTAL_S},\n    \"per_experiment\": [\n{}\n    ]\n  }}\n}}\n",
        rows.join(",\n"),
        static_s / stealing_s,
        baseline_rows.join(",\n")
    )
}

fn print_help() {
    println!("experiments — regenerate the PODC'15 reproduction tables and figures");
    println!();
    println!("USAGE: experiments <id>... | all [--quick]");
    println!();
    println!("ids: {}", EXPERIMENT_IDS.join(" "));
    println!();
    println!("  --quick      reduced trial counts and sweep sizes");
    println!("  --list       print the experiment ids");
    println!("  --out FILE   also write the rendered output to FILE");
    println!("  --csv DIR    also write each artifact as DIR/<id>.csv");
    println!(
        "  --time-json FILE  write per-experiment wall-clock timings (BENCH_experiments.json)"
    );
    println!("  --threads N  worker-pool width (overrides CRN_THREADS; default: available cores)");
}
