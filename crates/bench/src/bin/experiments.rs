//! Regenerates the paper-claim tables and figures.
//!
//! Usage:
//!
//! ```text
//! experiments all [--quick] [--out results.md]
//! experiments t1 f4 f10 [--quick]
//! experiments --list
//! ```

use crn_bench::{run_experiment, Effort, EXPERIMENT_IDS};
use std::io::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list") {
        for id in EXPERIMENT_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let effort = if args.iter().any(|a| a == "--quick") {
        Effort::Quick
    } else {
        Effort::Full
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let mut out_file = match &out_path {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let skip_values: Vec<&String> = out_path.iter().chain(csv_dir.iter()).collect();
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && !skip_values.contains(a))
        .map(|a| a.to_lowercase())
        .collect();
    if ids.iter().any(|a| a == "all") {
        ids = EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect();
    }
    if ids.is_empty() {
        eprintln!("no experiments selected; try `experiments all --quick`");
        return ExitCode::FAILURE;
    }
    for id in &ids {
        let start = std::time::Instant::now();
        match run_experiment(id, effort) {
            Some(artifact) => {
                let footer = format!(
                    "[{} completed in {:.1}s at {:?} effort]\n",
                    id,
                    start.elapsed().as_secs_f64(),
                    effort
                );
                println!("{artifact}");
                println!("{footer}");
                if let Some(f) = out_file.as_mut() {
                    if let Err(e) = writeln!(f, "{artifact}\n{footer}") {
                        eprintln!("write failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                if let Some(dir) = &csv_dir {
                    let path = format!("{dir}/{id}.csv");
                    if let Err(e) = std::fs::write(&path, artifact.to_csv()) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => {
                eprintln!("unknown experiment id: {id} (see --list)");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = out_path {
        eprintln!("results written to {path}");
    }
    ExitCode::SUCCESS
}

fn print_help() {
    println!("experiments — regenerate the PODC'15 reproduction tables and figures");
    println!();
    println!("USAGE: experiments <id>... | all [--quick]");
    println!();
    println!("ids: {}", EXPERIMENT_IDS.join(" "));
    println!();
    println!("  --quick      reduced trial counts and sweep sizes");
    println!("  --list       print the experiment ids");
    println!("  --out FILE   also write the rendered output to FILE");
    println!("  --csv DIR    also write each artifact as DIR/<id>.csv");
}
