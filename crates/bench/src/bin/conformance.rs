//! Differential model-conformance suite: drives the §2 validator over
//! property-generated workloads and cross-checks the collision oracle
//! against the two independent engine implementations.
//!
//! Three parts (see `docs/VALIDATION.md` for the invariant-to-paper
//! map):
//!
//! 1. **Validator sweep** — random `(n, c, k)` shapes across every
//!    overlap pattern, label mode, fault schedule, jammer strategy and
//!    churn level; every slot of every run must satisfy the Section 2
//!    contract and the full trace must survive an independent
//!    ENGINE-stream winner replay.
//! 2. **Oracle vs physical stack** — the same shared-core workload run
//!    on the abstract collision oracle and on the decay-backoff radio
//!    (footnote 4): both must complete, and abstract-slot counts must
//!    agree within a band (extending experiment F14).
//! 3. **Oracle vs multihop engine** — the same workload on the
//!    single-hop oracle and the multihop engine over a complete
//!    topology: both must complete within their budgets with agreeing
//!    slot counts (extending experiment F15).
//! 4. **Medium sweep** — COGCAST workloads driven over every
//!    [`crn_sim::Medium`] (`oracle`, `multihop` on the complete
//!    topology, `physical` decay backoff); the per-slot validator must
//!    run clean on each, applying only the clauses the medium's profile
//!    claims. `--medium <name>` restricts the sweep to one medium.
//!
//! Any divergence is reported with its reproducing seed and parameters,
//! shrunk to a minimal failing shape, and the process exits nonzero.
//! `--quick` selects the CI profile (still ≥ 100 workloads per part,
//! and still sweeping the whole medium axis).

use crn_backoff::stack::{run_physical_broadcast, shared_core_sets};
use crn_core::bounds::{cogcast_slots, DEFAULT_ALPHA};
use crn_core::cogcast::{run_broadcast, CogCast};
use crn_jamming::{JammerStrategy, UniformJammer};
use crn_multihop::{run_flood, Topology};
use crn_sim::assignment::{shared_core, ChannelAssignment, OverlapPattern};
use crn_sim::channel_model::{DynamicSharedCore, StaticChannels};
use crn_sim::conformance::{replay_winners, report, Violation};
use crn_sim::rng::{derive_rng, streams};
use crn_sim::{
    ChannelModel, FaultSchedule, Flaky, Medium, Network, OracleMultihop, OracleSingleHop,
    PhysicalDecay, Protocol, SlotActivity,
};
use rand::Rng;
use std::process::ExitCode;

const ORACLE_BUDGET: u64 = 50_000_000;
const PHYSICAL_BUDGET: u64 = 10_000_000;

/// How the base workload is perturbed.
#[derive(Clone, Debug)]
enum Variant {
    /// The plain engine, no perturbation.
    Plain,
    /// Every node wrapped in a [`Flaky`] fault schedule.
    Faulty(FaultSchedule),
    /// An n-uniform jammer over the global channel space.
    Jammed {
        budget: usize,
        strategy: JammerStrategy,
    },
    /// A churned [`DynamicSharedCore`] model (pattern is ignored).
    Churned { churn: f64 },
}

/// A fully concrete, reproducible workload for the validator sweep.
/// Every field is printed on divergence, so a failure is reproducible
/// from the report alone.
#[derive(Clone, Debug)]
struct Workload {
    seed: u64,
    n: usize,
    c: usize,
    k: usize,
    pattern: OverlapPattern,
    global_labels: bool,
    variant: Variant,
    slots: u64,
}

/// Draws a random workload from the dedicated WORKLOAD stream.
fn gen_workload(seed: u64) -> Workload {
    let mut rng = derive_rng(seed, streams::WORKLOAD);
    let n = rng.gen_range(3..=20usize);
    let c = rng.gen_range(2..=8usize);
    let k = rng.gen_range(1..=c);
    let pattern = OverlapPattern::ALL[rng.gen_range(0..OverlapPattern::ALL.len())];
    let global_labels = rng.gen_bool(0.5);
    let variant = match rng.gen_range(0..4u32) {
        0 => Variant::Plain,
        1 => Variant::Faulty(match rng.gen_range(0..3u32) {
            0 => FaultSchedule::Random {
                p: rng.gen_range(0.05..0.5),
            },
            1 => FaultSchedule::Window {
                from: rng.gen_range(0..10),
                to: rng.gen_range(10..40),
            },
            _ => FaultSchedule::Periodic {
                period: rng.gen_range(2..10),
                down: rng.gen_range(1..3),
            },
        }),
        2 => Variant::Jammed {
            budget: rng.gen_range(1..=2usize),
            strategy: JammerStrategy::ALL[rng.gen_range(0..JammerStrategy::ALL.len())],
        },
        _ => Variant::Churned {
            churn: rng.gen_range(0.1..0.9),
        },
    };
    Workload {
        seed,
        n,
        c,
        k,
        pattern,
        global_labels,
        variant,
        slots: 40,
    }
}

/// Steps `slots` slots, conformance-checking each one, then — when the
/// medium draws its winners from the ENGINE stream — replays the
/// recorded winners against it. Returns every violation.
///
/// Installs pool parallelism at threshold 1 first, so a multi-worker
/// run (`CRN_THREADS=4 conformance ...`) checks the *parallel* decide
/// and observe phases against the Section 2 contract and the serial
/// ENGINE-stream replay — the sweep doubles as a determinism audit of
/// the intra-slot fan-out.
fn drive<M, P, CM, Med>(net: &mut Network<M, P, CM, Med>, seed: u64, slots: u64) -> Vec<Violation>
where
    M: Clone + Send,
    P: Protocol<M> + Send,
    CM: ChannelModel + Sync,
    Med: Medium<M>,
{
    net.set_parallelism(crn_sim::ParConfig::auto().map(|cfg| cfg.with_threshold(1)));
    let mut violations = Vec::new();
    let mut trace: Vec<SlotActivity> = Vec::with_capacity(slots as usize);
    for _ in 0..slots {
        trace.push(net.step().clone());
        violations.extend(net.check_conformance());
    }
    if net.medium().profile().engine_stream_winners {
        violations.extend(replay_winners(seed, &trace));
    }
    violations
}

/// Runs one validator-sweep workload end to end; empty result = clean.
fn run_workload(w: &Workload) -> Vec<Violation> {
    let n = w.n;
    let mut protos = Vec::with_capacity(n);
    protos.push(CogCast::source(()));
    protos.extend((1..n).map(|_| CogCast::node()));

    if let Variant::Churned { churn } = w.variant {
        let pool = (w.c - w.k).max(1) * 6;
        let model = match DynamicSharedCore::new(n, w.c, w.k, pool, churn, w.seed) {
            Ok(m) => m,
            Err(e) => panic!("churned model construction failed for {w:?}: {e}"),
        };
        let mut net = Network::new(model, protos, w.seed).expect("construct");
        return drive(&mut net, w.seed, w.slots);
    }

    let mut arng = derive_rng(w.seed, streams::ASSIGNMENT);
    let assignment = w
        .pattern
        .generate(n, w.c, w.k, &mut arng)
        .unwrap_or_else(|_| shared_core(n, w.c, w.k).expect("fallback shape"));
    let total = assignment.total_channels();
    let model = if w.global_labels {
        StaticChannels::global(assignment)
    } else {
        StaticChannels::local(assignment, w.seed)
    };

    match &w.variant {
        Variant::Plain => {
            let mut net = Network::new(model, protos, w.seed).expect("construct");
            drive(&mut net, w.seed, w.slots)
        }
        Variant::Faulty(schedule) => {
            let protos: Vec<Flaky<CogCast<()>>> = protos
                .into_iter()
                .map(|p| Flaky::new(p, schedule.clone()))
                .collect();
            let mut net = Network::new(model, protos, w.seed).expect("construct");
            drive(&mut net, w.seed, w.slots)
        }
        Variant::Jammed { budget, strategy } => {
            let jammer = UniformJammer::new(n, total, *budget, *strategy);
            let mut net = Network::with_interference(model, protos, w.seed, Box::new(jammer))
                .expect("construct");
            drive(&mut net, w.seed, w.slots)
        }
        Variant::Churned { .. } => unreachable!("handled above"),
    }
}

/// Shrinks a failing workload: repeatedly reduce `n`, then `c`, then
/// `k`, keeping each reduction only while the failure persists. The
/// result is the smallest shape (under this order) that still fails.
fn shrink(mut w: Workload) -> Workload {
    loop {
        let mut reduced = false;
        if w.n > 2 {
            let mut cand = w.clone();
            cand.n -= 1;
            if !run_workload(&cand).is_empty() {
                w = cand;
                reduced = true;
            }
        }
        if !reduced && w.c > w.k.max(1) {
            let mut cand = w.clone();
            cand.c -= 1;
            if !run_workload(&cand).is_empty() {
                w = cand;
                reduced = true;
            }
        }
        if !reduced && w.k > 1 {
            let mut cand = w.clone();
            cand.k -= 1;
            if !run_workload(&cand).is_empty() {
                w = cand;
                reduced = true;
            }
        }
        if !reduced {
            return w;
        }
    }
}

/// Part 1: the validator sweep. Returns the number of divergent
/// workloads (0 = pass).
fn validator_sweep(workloads: u64) -> usize {
    let mut failures = 0usize;
    for seed in 0..workloads {
        let w = gen_workload(seed);
        let violations = run_workload(&w);
        if !violations.is_empty() {
            failures += 1;
            let small = shrink(w.clone());
            let small_violations = run_workload(&small);
            eprintln!("DIVERGENCE (validator sweep): {w:?}");
            eprintln!("{}", report(&violations));
            eprintln!("  shrunk to: {small:?}");
            eprintln!("{}", report(&small_violations));
            eprintln!("  reproduce: run_workload(gen_workload({seed}))");
        }
    }
    println!("part 1: validator sweep        — {workloads} workloads, {failures} divergent");
    failures
}

/// Part 2: oracle vs the decay-backoff physical stack on identical
/// shared-core workloads. Returns the number of divergent workloads.
fn oracle_vs_physical(workloads: u64, trials: u64) -> usize {
    let mut failures = 0usize;
    let mut ratio_sum = 0.0f64;
    for i in 0..workloads {
        let seed = 1_000_000 + i;
        let mut rng = derive_rng(seed, streams::WORKLOAD);
        let n = rng.gen_range(6..=24usize);
        let c = rng.gen_range(3..=8usize);
        let k = rng.gen_range(1..c);
        let sets = shared_core_sets(n, c, k);
        let total = sets
            .iter()
            .flatten()
            .map(|&g| g as usize + 1)
            .max()
            .expect("non-empty sets");
        let g_sets = sets
            .iter()
            .map(|s| s.iter().map(|&g| crn_sim::GlobalChannel(g)).collect())
            .collect();
        let assignment =
            ChannelAssignment::from_sets(g_sets, total, k).expect("shared-core sets are valid");

        let mut oracle_sum = 0u64;
        let mut physical_sum = 0u64;
        let mut diverged = false;
        for t in 0..trials {
            let trial_seed = seed.wrapping_mul(1031).wrapping_add(t);
            let model = StaticChannels::local(assignment.clone(), trial_seed);
            let oracle = run_broadcast(model, trial_seed, ORACLE_BUDGET)
                .expect("construct")
                .slots;
            let physical =
                run_physical_broadcast(&sets, trial_seed, PHYSICAL_BUDGET).expect("valid params");
            match (oracle, physical.slots) {
                (Some(o), Some(p)) => {
                    oracle_sum += o;
                    physical_sum += p;
                }
                _ => {
                    eprintln!(
                        "DIVERGENCE (oracle vs physical): completion mismatch \
                         n={n} c={c} k={k} trial_seed={trial_seed} \
                         oracle={oracle:?} physical={:?}",
                        physical.slots
                    );
                    diverged = true;
                }
            }
        }
        if !diverged {
            let ratio = physical_sum as f64 / oracle_sum.max(1) as f64;
            ratio_sum += ratio;
            if !(0.25..=4.0).contains(&ratio) {
                eprintln!(
                    "DIVERGENCE (oracle vs physical): abstract-slot counts disagree \
                     n={n} c={c} k={k} seed={seed} trials={trials} ratio={ratio:.2} \
                     (oracle mean {:.1}, physical mean {:.1})",
                    oracle_sum as f64 / trials as f64,
                    physical_sum as f64 / trials as f64
                );
                diverged = true;
            }
        }
        if diverged {
            failures += 1;
        }
    }
    let mean_ratio = ratio_sum / workloads as f64;
    println!(
        "part 2: oracle vs physical     — {workloads} workloads, {failures} divergent \
         (mean physical/oracle slot ratio {mean_ratio:.2})"
    );
    if failures == 0 && !(0.5..=2.0).contains(&mean_ratio) {
        eprintln!("DIVERGENCE (oracle vs physical): aggregate ratio {mean_ratio:.2} out of band");
        return 1;
    }
    failures
}

/// Part 3: oracle vs the multihop engine on a complete topology (one
/// hop, so slot counts must agree). Returns the number of divergent
/// workloads.
fn oracle_vs_multihop(workloads: u64, trials: u64) -> usize {
    let mut failures = 0usize;
    let mut ratio_sum = 0.0f64;
    for i in 0..workloads {
        let seed = 2_000_000 + i;
        let mut rng = derive_rng(seed, streams::WORKLOAD);
        let n = rng.gen_range(4..=16usize);
        let c = rng.gen_range(2..=6usize);
        let k = rng.gen_range(1..=c);
        let assignment = shared_core(n, c, k).expect("valid shape");
        let budget = cogcast_slots(n, c, k, DEFAULT_ALPHA);

        let mut oracle_sum = 0u64;
        let mut flood_sum = 0u64;
        let mut diverged = false;
        for t in 0..trials {
            let trial_seed = seed.wrapping_mul(2063).wrapping_add(t);
            let model = StaticChannels::local(assignment.clone(), trial_seed);
            let oracle = run_broadcast(model.clone(), trial_seed, budget)
                .expect("construct")
                .slots;
            let flood = run_flood(Topology::complete(n), model, trial_seed, ORACLE_BUDGET)
                .expect("construct")
                .slots;
            match (oracle, flood) {
                (Some(o), Some(f)) => {
                    oracle_sum += o;
                    flood_sum += f;
                }
                _ => {
                    eprintln!(
                        "DIVERGENCE (oracle vs multihop): completion mismatch \
                         n={n} c={c} k={k} trial_seed={trial_seed} \
                         oracle={oracle:?} (Theorem 4 budget {budget}) flood={flood:?}"
                    );
                    diverged = true;
                }
            }
        }
        if !diverged {
            let ratio = flood_sum as f64 / oracle_sum.max(1) as f64;
            ratio_sum += ratio;
            if !(0.2..=5.0).contains(&ratio) {
                eprintln!(
                    "DIVERGENCE (oracle vs multihop): slot counts disagree \
                     n={n} c={c} k={k} seed={seed} trials={trials} ratio={ratio:.2} \
                     (oracle mean {:.1}, flood mean {:.1})",
                    oracle_sum as f64 / trials as f64,
                    flood_sum as f64 / trials as f64
                );
                diverged = true;
            }
        }
        if diverged {
            failures += 1;
        }
    }
    let mean_ratio = ratio_sum / workloads as f64;
    println!(
        "part 3: oracle vs multihop     — {workloads} workloads, {failures} divergent \
         (mean flood/oracle slot ratio {mean_ratio:.2})"
    );
    if failures == 0 && !(0.3..=3.0).contains(&mean_ratio) {
        eprintln!("DIVERGENCE (oracle vs multihop): aggregate ratio {mean_ratio:.2} out of band");
        return 1;
    }
    failures
}

/// The media the sweep covers, in `--medium` argument order.
const MEDIA: &[&str] = &["oracle", "multihop", "physical"];

/// Part 4: COGCAST workloads driven over each requested medium; the
/// per-slot validator (gated by each medium's profile) must run clean.
/// Returns the number of divergent (workload, medium) pairs.
fn medium_sweep(workloads: u64, media: &[&str]) -> usize {
    let mut failures = 0usize;
    for i in 0..workloads {
        let seed = 3_000_000 + i;
        let mut rng = derive_rng(seed, streams::WORKLOAD);
        let n = rng.gen_range(3..=16usize);
        let c = rng.gen_range(2..=6usize);
        let k = rng.gen_range(1..=c);
        let assignment = shared_core(n, c, k).expect("valid shape");
        let slots = 40u64;
        for &medium in media {
            let mut protos = Vec::with_capacity(n);
            protos.push(CogCast::source(()));
            protos.extend((1..n).map(|_| CogCast::node()));
            let model = StaticChannels::local(assignment.clone(), seed);
            let violations = match medium {
                "oracle" => {
                    let mut net = Network::with_medium(model, protos, seed, OracleSingleHop::new())
                        .expect("construct");
                    drive(&mut net, seed, slots)
                }
                "multihop" => {
                    let med = OracleMultihop::new(Topology::complete(n));
                    let mut net =
                        Network::with_medium(model, protos, seed, med).expect("construct");
                    drive(&mut net, seed, slots)
                }
                "physical" => {
                    let mut net = Network::with_medium(model, protos, seed, PhysicalDecay::new())
                        .expect("construct");
                    drive(&mut net, seed, slots)
                }
                other => unreachable!("unknown medium {other}"),
            };
            if !violations.is_empty() {
                failures += 1;
                eprintln!("DIVERGENCE (medium sweep, {medium}): n={n} c={c} k={k} seed={seed}");
                eprintln!("{}", report(&violations));
            }
        }
    }
    println!(
        "part 4: medium sweep           — {workloads} workloads x {} media, {failures} divergent",
        media.len()
    );
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Validate the worker-pool width up front (--threads beats
    // CRN_THREADS): the sweep deliberately steps its networks through
    // the parallel phases when the pool has more than one worker.
    let threads = match args.iter().position(|a| a == "--threads") {
        Some(i) => match args.get(i + 1) {
            Some(v) => Some(v.clone()),
            None => {
                eprintln!("--threads needs a value");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if let Err(e) = crn_sim::pool::init_from_flag(threads.as_deref()) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    let media: Vec<&str> = match args
        .iter()
        .position(|a| a == "--medium")
        .map(|i| args.get(i + 1))
    {
        Some(Some(m)) if MEDIA.contains(&m.as_str()) => vec![MEDIA
            .iter()
            .copied()
            .find(|&x| x == m.as_str())
            .expect("checked")],
        Some(got) => {
            eprintln!(
                "--medium needs one of {MEDIA:?}, got {:?}",
                got.map(String::as_str).unwrap_or("<missing>")
            );
            return ExitCode::FAILURE;
        }
        None => MEDIA.to_vec(),
    };
    // The CI (`--quick`) profile still meets the ≥ 100-workloads-per-part
    // acceptance floor; the full profile triples the sweep.
    let (sweep, diff, trials) = if quick {
        (120u64, 100u64, 3u64)
    } else {
        (360u64, 200u64, 5u64)
    };
    let workers = crn_sim::pool::global().workers();
    println!(
        "model-conformance differential suite ({} profile, {workers}-worker pool, {} stepping)",
        if quick { "quick" } else { "full" },
        if workers > 1 {
            "parallel"
        } else {
            "sequential"
        }
    );
    let mut failures = 0usize;
    failures += validator_sweep(sweep);
    failures += oracle_vs_physical(diff, trials);
    failures += oracle_vs_multihop(diff, trials);
    failures += medium_sweep(diff, &media);
    if failures == 0 {
        println!("conformance: all parts clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("conformance: {failures} divergent workloads");
        ExitCode::FAILURE
    }
}
