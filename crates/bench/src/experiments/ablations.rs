//! Ablations and calibrations: T6, A1, A2, A3.
//!
//! These go beyond the paper's headline claims to the design choices
//! it argues for: the mediators of COGCOMP's phase four (A1), the
//! robustness-to-faults claim of Section 1 (A2), the budget constant
//! behind "with high probability" (A3), and footnote 1's randomized-
//! beats-deterministic rendezvous observation (T6).

use crate::effort::{mean_slots, par_trials, Effort};
use crn_core::aggregate::Sum;
use crn_core::bounds;
use crn_core::cogcast::{run_broadcast, CogCast};
use crn_core::cogcomp::{run_aggregation_cfg, CogCompConfig, Coordination};
use crn_rendezvous::deterministic::jump_stay_rendezvous_slots;
use crn_rendezvous::pairwise::rendezvous_slots;
use crn_sim::assignment::shared_core;
use crn_sim::channel_model::StaticChannels;
use crn_sim::faults::{FaultSchedule, Flaky};
use crn_sim::Network;
use crn_stats::Table;

const MEASURE_BUDGET: u64 = 50_000_000;

/// **T6** — footnote 1: randomized hopping meets in `O(c²/k)` expected
/// slots, beating deterministic `O(P²)` sequences whenever `k` is
/// non-constant. Sweeps `k` at fixed `c` (shared-core pair, global
/// labels for the deterministic side).
pub fn t6(effort: Effort) -> Table {
    use crn_sim::assignment::random_with_core;
    use crn_sim::rng::derive_rng;
    let c = 12usize;
    let trials = effort.trials(200);
    let mut t = Table::new(
        format!(
            "T6: pairwise rendezvous — randomized vs deterministic jump-stay (c = {c}; mean slots)"
        ),
        &["k", "randomized", "jump-stay", "c²/k"],
    );
    for k in [1usize, 2, 4, 8, 12] {
        // Random core placement: the overlap channels sit at arbitrary
        // global ids, so neither scheme gets them "for free" at the
        // start of its sequence.
        let rand_mean = mean_slots(trials, |seed| {
            let mut rng = derive_rng(seed, 0x76A);
            let a = random_with_core(2, c, k, 20 * c, &mut rng)
                .expect("valid")
                .permute_globals(&mut rng);
            let model = StaticChannels::local(a, seed);
            rendezvous_slots(model, seed, MEASURE_BUDGET)
                .expect("construct")
                .expect("meets")
        });
        let det_mean = mean_slots(trials, |seed| {
            let mut rng = derive_rng(seed, 0x76B);
            let a = random_with_core(2, c, k, 20 * c, &mut rng)
                .expect("valid")
                .permute_globals(&mut rng);
            let model = StaticChannels::global(a);
            jump_stay_rendezvous_slots(model, seed, MEASURE_BUDGET)
                .expect("construct")
                .expect("meets")
        });
        t.push_row(vec![
            k.to_string(),
            format!("{rand_mean:.1}"),
            format!("{det_mean:.1}"),
            format!("{:.0}", (c * c) as f64 / k as f64),
        ]);
    }
    t
}

/// **A1** — the mediator ablation: phase-four steps with the paper's
/// mediator coordination vs free contention, on the congested
/// shared-core pattern where many clusters share `k` channels.
pub fn a1(effort: Effort) -> Table {
    let (c, k) = (6usize, 1usize);
    let ns: &[usize] = &[24, 48, 96, 192];
    let trials = effort.trials(10);
    let mut t = Table::new(
        format!("A1: COGCOMP phase-4 steps — mediated vs uncoordinated (c = {c}, k = {k})"),
        &["n", "mediated steps", "uncoordinated steps", "penalty"],
    );
    for &n in &effort.sweep(ns) {
        let run_mode = |coordination: Coordination, salt: u64| -> f64 {
            let results = par_trials(trials, |seed| {
                let cfg = CogCompConfig::new(n, c, k, bounds::DEFAULT_ALPHA)
                    .with_coordination(coordination);
                let budget = cfg.phase4_start() + 3 * (n as u64 * n as u64 + 64);
                let model =
                    StaticChannels::local(shared_core(n, c, k).expect("valid"), seed + salt);
                let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
                let run =
                    run_aggregation_cfg(model, values, seed + salt, cfg, budget).expect("run");
                assert!(run.is_complete(), "{coordination:?} n={n} seed={seed}");
                run.phase4_steps.unwrap()
            });
            results.iter().sum::<u64>() as f64 / results.len() as f64
        };
        let med = run_mode(Coordination::Mediated, 0);
        let unc = run_mode(Coordination::Uncoordinated, 1000);
        t.push_row(vec![
            n.to_string(),
            format!("{med:.1}"),
            format!("{unc:.1}"),
            format!("{:.2}x", unc / med),
        ]);
    }
    t
}

/// **A2** — fault tolerance (Section 1's robustness claim): COGCAST
/// completion time under independent per-slot node outages.
pub fn a2(effort: Effort) -> Table {
    let (n, c, k) = (32usize, 8usize, 2usize);
    let trials = effort.trials(20);
    let mut t = Table::new(
        format!("A2: COGCAST under transient node outages (n = {n}, c = {c}, k = {k}; mean slots)"),
        &["downtime p", "mean slots", "vs p=0"],
    );
    let mut base = 0.0f64;
    for &p in &[0.0f64, 0.1, 0.3, 0.5] {
        let mean = mean_slots(trials, |seed| {
            let model = StaticChannels::local(shared_core(n, c, k).expect("valid"), seed);
            let mut protos = vec![Flaky::new(CogCast::source(()), FaultSchedule::Random { p })];
            protos.extend((1..n).map(|_| Flaky::new(CogCast::node(), FaultSchedule::Random { p })));
            let mut net = Network::new(model, protos, seed).expect("construct");
            let mut done_at = None;
            for s in 0..MEASURE_BUDGET {
                net.step();
                if net
                    .protocols()
                    .iter()
                    .filter(|f| f.inner().is_informed())
                    .count()
                    == n
                {
                    done_at = Some(s + 1);
                    break;
                }
            }
            done_at.expect("completion")
        });
        if p == 0.0 {
            base = mean;
        }
        t.push_row(vec![
            format!("{p:.1}"),
            format!("{mean:.1}"),
            format!("{:.2}x", mean / base),
        ]);
    }
    t
}

/// **A3** — calibrating `alpha`: the empirical completion probability
/// of COGCAST within the `alpha`-scaled Theorem 4 budget, justifying
/// [`bounds::DEFAULT_ALPHA`].
pub fn a3(effort: Effort) -> Table {
    let shapes: &[(usize, usize, usize)] = &[(32, 8, 2), (64, 16, 2), (16, 32, 4)];
    let trials = effort.trials(200);
    let mut t = Table::new(
        "A3: COGCAST completion probability within the alpha-scaled Theorem 4 budget",
        &[
            "n", "c", "k", "alpha=1", "alpha=2", "alpha=4", "alpha=6", "alpha=10",
        ],
    );
    for &(n, c, k) in &effort.sweep(shapes) {
        let mut row = vec![n.to_string(), c.to_string(), k.to_string()];
        for alpha in [1.0f64, 2.0, 4.0, 6.0, 10.0] {
            let budget = bounds::cogcast_slots(n, c, k, alpha);
            let ok = par_trials(trials, |seed| {
                let model = StaticChannels::local(shared_core(n, c, k).expect("valid"), seed);
                u64::from(
                    run_broadcast(model, seed, budget)
                        .expect("construct")
                        .completed(),
                )
            })
            .iter()
            .sum::<u64>();
            row.push(format!("{:.3}", ok as f64 / trials as f64));
        }
        t.push_row(row);
    }
    t
}

/// **A4** — amortized repeated aggregation: slots per aggregation
/// round with one shared tree vs independent full COGCOMP runs, as the
/// number of monitoring epochs grows.
pub fn a4(effort: Effort) -> Table {
    use crn_core::cogcomp::{run_aggregation, run_repeated_aggregation};
    let (n, c, k) = (32usize, 12usize, 1usize);
    let trials = effort.trials(10);
    let mut t = Table::new(
        format!(
            "A4: amortized repeated aggregation (n = {n}, c = {c}, k = {k}; mean slots per round)"
        ),
        &[
            "rounds",
            "amortized total",
            "per round",
            "independent per run",
            "saving",
        ],
    );
    let independent = mean_slots(trials, |seed| {
        let model = StaticChannels::local(shared_core(n, c, k).expect("valid"), seed);
        let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
        let run = run_aggregation(model, values, seed, 6.0).expect("run");
        assert!(run.is_complete());
        run.slots.unwrap()
    });
    for rounds in [1usize, 2, 4, 8, 16] {
        let total = mean_slots(trials, |seed| {
            let model = StaticChannels::local(shared_core(n, c, k).expect("valid"), seed);
            let values: Vec<Vec<Sum>> = (0..rounds)
                .map(|_| (0..n as u64).map(Sum).collect())
                .collect();
            let run = run_repeated_aggregation(model, values, seed, 6.0).expect("run");
            assert!(run.is_complete(), "rounds={rounds} seed={seed}");
            run.slots.unwrap()
        });
        let per_round = total / rounds as f64;
        t.push_row(vec![
            rounds.to_string(),
            format!("{total:.0}"),
            format!("{per_round:.0}"),
            format!("{independent:.0}"),
            format!("{:.1}x", independent / per_round),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a4_amortization_grows_with_rounds() {
        let t = a4(Effort::Quick);
        let savings: Vec<f64> = t
            .rows()
            .iter()
            .map(|r| r[4].trim_end_matches('x').parse().unwrap())
            .collect();
        assert!(
            savings.last().unwrap() > savings.first().unwrap(),
            "more rounds must amortize better: {savings:?}"
        );
    }

    #[test]
    fn t6_randomized_improves_with_k() {
        let t = t6(Effort::Quick);
        let first: f64 = t.rows().first().unwrap()[1].parse().unwrap();
        let last: f64 = t.rows().last().unwrap()[1].parse().unwrap();
        assert!(
            first > last * 2.0,
            "randomized rendezvous must speed up with k: {first} vs {last}"
        );
    }

    #[test]
    fn a1_mediation_never_loses_badly() {
        let t = a1(Effort::Quick);
        for row in t.rows() {
            let med: f64 = row[1].parse().unwrap();
            let unc: f64 = row[2].parse().unwrap();
            assert!(
                med <= unc * 1.5,
                "mediation should not lose to free contention: {row:?}"
            );
        }
    }

    #[test]
    fn a2_downtime_slows_but_completes() {
        let t = a2(Effort::Quick);
        let base: f64 = t.rows()[0][1].parse().unwrap();
        let worst: f64 = t.rows().last().unwrap()[1].parse().unwrap();
        assert!(worst > base, "downtime must cost something");
    }

    #[test]
    fn a3_higher_alpha_is_monotonically_safer() {
        let t = a3(Effort::Quick);
        for row in t.rows() {
            let probs: Vec<f64> = row[3..].iter().map(|v| v.parse().unwrap()).collect();
            for w in probs.windows(2) {
                assert!(w[0] <= w[1] + 0.05, "non-monotone completion: {row:?}");
            }
            assert!(
                *probs.last().unwrap() >= 0.99,
                "alpha=10 should virtually always complete: {row:?}"
            );
        }
    }
}
