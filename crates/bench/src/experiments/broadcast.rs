//! Broadcast experiments: T1, F1–F4, F7, F8.

use crate::effort::{mean_slots, Effort};
use crn_core::bounds;
use crn_core::cogcast::run_broadcast;
use crn_rendezvous::broadcast::run_baseline_broadcast;
use crn_sim::assignment::OverlapPattern;
use crn_sim::channel_model::{DynamicSharedCore, StaticChannels};
use crn_sim::rng::derive_rng;
use crn_stats::{Series, Table};

/// A generous completion budget for measurement runs (we want the
/// actual completion slot, not a budget hit).
const MEASURE_BUDGET: u64 = 50_000_000;

fn cogcast_mean(n: usize, c: usize, k: usize, trials: usize, pool_scale: usize) -> f64 {
    mean_slots(trials, |seed| {
        let mut rng = derive_rng(seed, 0xB0);
        let a =
            crn_sim::assignment::random_with_core(n, c, k, (c - k).max(1) * pool_scale, &mut rng)
                .expect("valid parameters");
        let model = StaticChannels::local(a, seed);
        run_broadcast(model, seed, MEASURE_BUDGET)
            .expect("construction")
            .slots
            .expect("completion within the measurement budget")
    })
}

fn baseline_mean(n: usize, c: usize, k: usize, trials: usize, pool_scale: usize) -> f64 {
    mean_slots(trials, |seed| {
        let mut rng = derive_rng(seed, 0xB1);
        let a =
            crn_sim::assignment::random_with_core(n, c, k, (c - k).max(1) * pool_scale, &mut rng)
                .expect("valid parameters");
        let model = StaticChannels::local(a, seed);
        run_baseline_broadcast(model, seed, MEASURE_BUDGET)
            .expect("construction")
            .slots
            .expect("completion within the measurement budget")
    })
}

/// **T1** — COGCAST vs rendezvous broadcast over an `(n, c, k)` grid
/// (the paper's headline factor-`c` separation, abstract & Section 4).
pub fn t1(effort: Effort) -> Table {
    let grid: &[(usize, usize, usize)] = &[
        (32, 8, 2),
        (64, 8, 2),
        (128, 8, 2),
        (64, 16, 4),
        (128, 16, 2),
        (64, 32, 8),
    ];
    let trials = effort.trials(20);
    let mut t = Table::new(
        "T1: local broadcast — COGCAST vs rendezvous baseline (mean slots)",
        &["n", "c", "k", "COGCAST", "baseline", "speedup", "theory c"],
    );
    for &(n, c, k) in &effort.sweep(grid) {
        let ours = cogcast_mean(n, c, k, trials, 8);
        let base = baseline_mean(n, c, k, trials, 8);
        t.push_row(vec![
            n.to_string(),
            c.to_string(),
            k.to_string(),
            format!("{ours:.1}"),
            format!("{base:.1}"),
            format!("{:.1}x", base / ours),
            format!("{c}x"),
        ]);
    }
    t
}

/// **F1** — COGCAST completion vs `n` at fixed `(c, k)`: flat-ish
/// `(c/k)·lg n` once `n ≥ c`, with the `c/n` penalty below (Theorem 4).
pub fn f1(effort: Effort) -> Series {
    let (c, k) = (16usize, 4usize);
    let ns: &[usize] = &[4, 8, 16, 32, 64, 128, 256, 512];
    let trials = effort.trials(20);
    let mut s = Series::new(
        format!("F1: COGCAST slots vs n (c = {c}, k = {k})"),
        "n",
        "mean slots",
    );
    for &n in &effort.sweep(ns) {
        s.push(n as f64, cogcast_mean(n, c, k, trials, 8));
    }
    s
}

/// **F2** — COGCAST completion vs `c` at fixed `(n, k)`: linear in `c`
/// while `c ≤ n`, then `∝ c²/n` (Theorem 4's `max{1, c/n}` factor).
pub fn f2(effort: Effort) -> Series {
    let (n, k) = (64usize, 2usize);
    let cs: &[usize] = &[2, 4, 8, 16, 32, 64, 128, 256];
    let trials = effort.trials(20);
    let mut s = Series::new(
        format!("F2: COGCAST slots vs c (n = {n}, k = {k})"),
        "c",
        "mean slots",
    );
    for &c in &effort.sweep(cs) {
        s.push(c as f64, cogcast_mean(n, c, k, trials, 8));
    }
    s
}

/// **F3** — COGCAST completion vs `k` at fixed `(n, c)`: `∝ 1/k`.
pub fn f3(effort: Effort) -> Series {
    let (n, c) = (64usize, 32usize);
    let ks: &[usize] = &[1, 2, 4, 8, 16, 32];
    let trials = effort.trials(20);
    let mut s = Series::new(
        format!("F3: COGCAST slots vs k (n = {n}, c = {c})"),
        "k",
        "mean slots",
    );
    for &k in &effort.sweep(ks) {
        s.push(k as f64, cogcast_mean(n, c, k, trials, 8));
    }
    s
}

/// **F4** — the epidemic curve: informed nodes per slot for one run,
/// exhibiting the two analysis stages (exponential growth to `c/2`,
/// then the union-bound tail).
pub fn f4(effort: Effort) -> Series {
    let (n, c, k) = match effort {
        Effort::Full => (256usize, 16usize, 4usize),
        Effort::Quick => (64, 8, 2),
    };
    let a = crn_sim::assignment::shared_core(n, c, k).expect("valid parameters");
    let model = StaticChannels::local(a, 7);
    let run = run_broadcast(model, 7, MEASURE_BUDGET).expect("construction");
    let mut s = Series::new(
        format!("F4: epidemic curve — informed nodes per slot (n = {n}, c = {c}, k = {k})"),
        "slot",
        "informed",
    );
    let step = (run.informed_per_slot.len() / 40).max(1);
    for (i, &cnt) in run.informed_per_slot.iter().enumerate() {
        if i % step == 0 || cnt == n {
            s.push((i + 1) as f64, cnt as f64);
        }
        if cnt == n {
            break;
        }
    }
    s
}

/// **F7** — COGCAST robustness to the overlap pattern (the Section 4
/// analysis handles congested and dispersed overlap alike).
pub fn f7(effort: Effort) -> Table {
    let (n, c, k) = (64usize, 12usize, 3usize);
    let trials = effort.trials(20);
    let mut t = Table::new(
        format!("F7: COGCAST vs overlap pattern (n = {n}, c = {c}, k = {k}; mean slots)"),
        &["pattern", "min overlap", "COGCAST", "budget (alpha=10)"],
    );
    let budget = bounds::cogcast_slots(n, c, k, bounds::DEFAULT_ALPHA);
    for pattern in OverlapPattern::ALL {
        let mut overlaps = Vec::new();
        let mean = mean_slots(trials, |seed| {
            let mut rng = derive_rng(seed, 0xF7);
            let a = pattern.generate(n, c, k, &mut rng).expect("valid");
            let model = StaticChannels::local(a, seed);
            run_broadcast(model, seed, MEASURE_BUDGET)
                .expect("construction")
                .slots
                .expect("completion")
        });
        {
            let mut rng = derive_rng(0, 0xF7);
            overlaps.push(
                pattern
                    .generate(n, c, k, &mut rng)
                    .unwrap()
                    .min_pairwise_overlap(),
            );
        }
        t.push_row(vec![
            pattern.name().to_string(),
            overlaps[0].to_string(),
            format!("{mean:.1}"),
            budget.to_string(),
        ]);
    }
    t
}

/// **F8** — COGCAST under dynamic channel assignment (Section 7): the
/// completion time is unaffected by per-slot churn of the non-core
/// channels.
pub fn f8(effort: Effort) -> Series {
    let (n, c, k) = (32usize, 8usize, 2usize);
    let churns = [0.0f64, 0.1, 0.25, 0.5, 0.75, 1.0];
    let trials = effort.trials(25);
    let mut s = Series::new(
        format!("F8: COGCAST slots vs per-slot churn rate (n = {n}, c = {c}, k = {k})"),
        "churn",
        "mean slots",
    );
    for &churn in &churns {
        let mean = mean_slots(trials, |seed| {
            let model = DynamicSharedCore::new(n, c, k, (c - k) * 10, churn, seed).expect("valid");
            run_broadcast(model, seed, MEASURE_BUDGET)
                .expect("construction")
                .slots
                .expect("completion")
        });
        s.push(churn, mean);
    }
    s
}

/// **F13** — physical-layer anatomy of COGCAST: collision rate,
/// delivery efficiency, and wasted wins along the epidemic, per the
/// trace log. (Observability companion to F4: explains *where* the
/// slots go.)
pub fn f13(effort: Effort) -> Table {
    use crn_core::cogcast::CogCast;
    use crn_sim::{Network, TraceLog};
    let (c, k) = (8usize, 2usize);
    let ns: &[usize] = &[8, 32, 128, 512];
    let trials = effort.trials(10);
    let mut t = Table::new(
        format!(
            "F13: COGCAST physical-layer anatomy (c = {c}, k = {k}; means over {trials} trials)"
        ),
        &[
            "n",
            "slots",
            "collision rate",
            "delivery efficiency",
            "wasted wins/slot",
        ],
    );
    for &n in &effort.sweep(ns) {
        let logs = crate::effort::par_trials(trials, |seed| {
            let a = crn_sim::assignment::shared_core(n, c, k).expect("valid");
            let model = StaticChannels::local(a, seed);
            let mut protos = vec![CogCast::source(0u8)];
            protos.extend((1..n).map(|_| CogCast::node()));
            let mut net = Network::new(model, protos, seed).expect("construct");
            let mut log = TraceLog::new();
            for _ in 0..MEASURE_BUDGET {
                log.record(net.step());
                if net.all_done() {
                    break;
                }
            }
            assert!(net.all_done(), "n={n} seed={seed} did not complete");
            log
        });
        let avg = |f: &dyn Fn(&TraceLog) -> f64| -> f64 {
            logs.iter().map(f).sum::<f64>() / logs.len() as f64
        };
        t.push_row(vec![
            n.to_string(),
            format!("{:.1}", avg(&|l| l.slots() as f64)),
            format!("{:.3}", avg(&|l| l.collision_rate())),
            format!("{:.3}", avg(&|l| l.delivery_efficiency())),
            format!(
                "{:.2}",
                avg(&|l| l.total_wasted_wins() as f64 / l.slots() as f64)
            ),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f13_rates_are_valid() {
        let t = f13(Effort::Quick);
        for row in t.rows() {
            let collision: f64 = row[2].parse().unwrap();
            let efficiency: f64 = row[3].parse().unwrap();
            assert!((0.0..=1.0).contains(&collision), "{row:?}");
            assert!((0.0..=1.0).contains(&efficiency), "{row:?}");
        }
    }

    #[test]
    fn t1_shows_cogcast_winning() {
        let t = t1(Effort::Quick);
        assert!(!t.is_empty());
        for row in t.rows() {
            let ours: f64 = row[3].parse().unwrap();
            let base: f64 = row[4].parse().unwrap();
            assert!(base > ours, "baseline should lose: {row:?}");
        }
    }

    #[test]
    fn f1_flat_region_for_large_n() {
        let s = f1(Effort::Quick);
        assert!(s.points().len() >= 2);
        for &(_, y) in s.points() {
            assert!(y > 0.0);
        }
    }

    #[test]
    fn f3_decreases_in_k() {
        let s = f3(Effort::Quick);
        let first = s.points().first().unwrap().1;
        let last = s.points().last().unwrap().1;
        assert!(
            first > last,
            "slots must drop as k grows: {first} vs {last}"
        );
    }

    #[test]
    fn f4_curve_reaches_n() {
        let s = f4(Effort::Quick);
        let max = s.points().iter().map(|&(_, y)| y).fold(0.0, f64::max);
        assert_eq!(max, 64.0);
    }

    #[test]
    fn f8_is_churn_insensitive() {
        let s = f8(Effort::Quick);
        let ys: Vec<f64> = s.points().iter().map(|&(_, y)| y).collect();
        let max = ys.iter().cloned().fold(0.0, f64::max);
        let min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min < 3.0,
            "churn should not change completion much: {ys:?}"
        );
    }
}
