//! Aggregation experiments: T2, F5, F6, F12.

use crate::effort::{mean_slots, par_trials, Effort};
use crn_core::aggregate::Sum;
use crn_core::bounds;
use crn_core::cogcomp::{run_aggregation, CogCompConfig};
use crn_rendezvous::aggregate::run_baseline_aggregation;
use crn_sim::assignment::{full_overlap, shared_core};
use crn_sim::channel_model::StaticChannels;
use crn_stats::{Series, Table};

const MEASURE_BUDGET: u64 = 100_000_000;

/// The COGCAST constant used for COGCOMP's phase-one budget in the
/// comparison experiments. Leaner than [`bounds::DEFAULT_ALPHA`]
/// (phase one runs twice — as phase three's rewind — so its constant
/// costs double); every run still asserts completeness, so a failure
/// of the w.h.p. guarantee would abort the experiment loudly.
const COGCOMP_ALPHA: f64 = 6.0;

fn cogcomp_mean(n: usize, c: usize, k: usize, trials: usize) -> f64 {
    mean_slots(trials, |seed| {
        let model = StaticChannels::local(shared_core(n, c, k).expect("valid"), seed);
        let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
        let run = run_aggregation(model, values, seed, COGCOMP_ALPHA).expect("construct");
        assert!(
            run.is_complete(),
            "COGCOMP timed out (n={n}, c={c}, k={k}, seed={seed})"
        );
        assert_eq!(
            run.result,
            Some(Sum((0..n as u64).sum())),
            "wrong aggregate"
        );
        run.slots.unwrap()
    })
}

fn baseline_agg_mean(n: usize, c: usize, k: usize, trials: usize) -> f64 {
    mean_slots(trials, |seed| {
        let model = StaticChannels::local(shared_core(n, c, k).expect("valid"), seed);
        let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
        let run = run_baseline_aggregation(model, values, seed, MEASURE_BUDGET).expect("construct");
        run.slots.expect("baseline completion")
    })
}

/// **T2** — COGCOMP vs rendezvous aggregation over an `(n, c, k)` grid
/// (Theorem 10 vs the `O(c²n/k)` baseline).
///
/// The grid sits in the `c²/k ≳ n` regime where the separation is
/// visible: our baseline *measures* far below its `O(c²n/k)` worst-case
/// bound (the collision model resolves every contended channel in one
/// sender's favor, so the source drains one value per meeting), which
/// moves the empirical crossover — see EXPERIMENTS.md for the analysis.
pub fn t2(effort: Effort) -> Table {
    let grid: &[(usize, usize, usize)] = &[
        (32, 16, 1),
        (48, 16, 1),
        (64, 16, 1),
        (64, 32, 2),
        (48, 32, 4),
    ];
    let trials = effort.trials(10);
    let mut t = Table::new(
        "T2: data aggregation — COGCOMP vs rendezvous baseline (mean slots)",
        &["n", "c", "k", "COGCOMP", "baseline", "speedup"],
    );
    for &(n, c, k) in &effort.sweep(grid) {
        let ours = cogcomp_mean(n, c, k, trials);
        let base = baseline_agg_mean(n, c, k, trials);
        t.push_row(vec![
            n.to_string(),
            c.to_string(),
            k.to_string(),
            format!("{ours:.1}"),
            format!("{base:.1}"),
            format!("{:.1}x", base / ours),
        ]);
    }
    t
}

/// **F5** — COGCOMP phase breakdown vs `n`: phases 1 and 3 cost the
/// fixed `l` slots, phase 2 costs `n`, and phase 4 is `O(n)` steps
/// (Theorem 10's structure made visible).
pub fn f5(effort: Effort) -> Table {
    let (c, k) = (8usize, 2usize);
    let ns: &[usize] = &[16, 32, 64, 128, 256];
    let trials = effort.trials(10);
    let mut t = Table::new(
        format!("F5: COGCOMP phase breakdown (c = {c}, k = {k}; means over {trials} trials)"),
        &[
            "n",
            "phase1 = phase3 (l)",
            "phase2 (n)",
            "phase4 steps",
            "total slots",
        ],
    );
    for &n in &effort.sweep(ns) {
        let cfg = CogCompConfig::new(n, c, k, bounds::DEFAULT_ALPHA);
        let results = par_trials(trials, |seed| {
            let model = StaticChannels::local(shared_core(n, c, k).expect("valid"), seed);
            let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
            let run =
                run_aggregation(model, values, seed, bounds::DEFAULT_ALPHA).expect("construct");
            assert!(run.is_complete());
            (run.phase4_steps.unwrap(), run.slots.unwrap())
        });
        let p4 = results.iter().map(|r| r.0).sum::<u64>() as f64 / results.len() as f64;
        let total = results.iter().map(|r| r.1).sum::<u64>() as f64 / results.len() as f64;
        t.push_row(vec![
            n.to_string(),
            cfg.phase1_slots.to_string(),
            n.to_string(),
            format!("{p4:.1}"),
            format!("{total:.1}"),
        ]);
    }
    t
}

/// **F6** — the aggregation crossover: at fixed `(n, k)`, COGCOMP's
/// cost grows like `c` (phase one) while the rendezvous baseline's
/// grows like `c²` (per-sender meeting time), so the baseline wins at
/// small `c` and loses increasingly badly as `c` grows — the `(c/k)` vs
/// `(c²/k)` separation of the introduction in crossover form.
pub fn f6(effort: Effort) -> Table {
    let (n, k) = (48usize, 1usize);
    let cs: &[usize] = &[2, 4, 8, 16, 32];
    let trials = effort.trials(10);
    let mut t = Table::new(
        format!("F6: aggregation crossover vs c (n = {n}, k = {k}; mean slots)"),
        &["c", "COGCOMP", "baseline", "ratio"],
    );
    for &c in &effort.sweep(cs) {
        let ours = cogcomp_mean(n, c, k, trials);
        let base = baseline_agg_mean(n, c, k, trials);
        t.push_row(vec![
            c.to_string(),
            format!("{ours:.1}"),
            format!("{base:.1}"),
            format!("{:.2}x", base / ours),
        ]);
    }
    t
}

/// **F12** — the `Ω(n/k)` aggregation floor (Section 5 discussion):
/// when all nodes share the *same* `k` channels (`c = k`), each channel
/// carries one value per slot, so `n/k` slots are unavoidable; COGCOMP
/// stays within a constant of the floor plus its `lg n` setup.
pub fn f12(effort: Effort) -> Series {
    let k = 2usize;
    let ns: &[usize] = &[16, 32, 64, 128, 256];
    let trials = effort.trials(10);
    let mut s = Series::new(
        format!("F12: COGCOMP slots vs n in the all-share-k setup (c = k = {k}); floor = n/k"),
        "n",
        "mean slots",
    );
    for &n in &effort.sweep(ns) {
        let mean = mean_slots(trials, |seed| {
            let model = StaticChannels::local(full_overlap(n, k).expect("valid"), seed);
            let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
            let run =
                run_aggregation(model, values, seed, bounds::DEFAULT_ALPHA).expect("construct");
            assert!(run.is_complete());
            run.slots.unwrap()
        });
        assert!(
            mean >= (n / k) as f64,
            "measured below the information-theoretic floor?"
        );
        s.push(n as f64, mean);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t2_shows_cogcomp_winning() {
        let t = t2(Effort::Quick);
        for row in t.rows() {
            let ours: f64 = row[3].parse().unwrap();
            let base: f64 = row[4].parse().unwrap();
            assert!(base > ours, "baseline should lose: {row:?}");
        }
    }

    #[test]
    fn f6_ratio_grows_with_c() {
        let t = f6(Effort::Quick);
        let ratios: Vec<f64> = t
            .rows()
            .iter()
            .map(|r| r[3].trim_end_matches('x').parse().unwrap())
            .collect();
        assert!(
            ratios.last().unwrap() > ratios.first().unwrap(),
            "baseline/COGCOMP ratio should grow with c: {ratios:?}"
        );
    }

    #[test]
    fn f5_phase4_grows_with_n() {
        let t = f5(Effort::Quick);
        let steps: Vec<f64> = t.rows().iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(steps.windows(2).all(|w| w[1] > w[0] * 0.8));
        assert!(steps.last().unwrap() > steps.first().unwrap());
    }

    #[test]
    fn f12_respects_floor() {
        let s = f12(Effort::Quick);
        for &(n, y) in s.points() {
            assert!(y >= n / 2.0);
        }
    }
}
