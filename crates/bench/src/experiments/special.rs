//! Separation, jamming and substrate experiments: T5, F9, F10.

use crate::effort::{mean_slots, Effort};
use crn_backoff::emulation::mean_rounds_per_slot;
use crn_core::cogcast::run_broadcast;
use crn_jamming::{run_jammed_broadcast, JammerStrategy};
use crn_rendezvous::hop_together::run_hop_together;
use crn_sim::assignment::shared_core;
use crn_sim::channel_model::StaticChannels;
use crn_stats::{Series, Table};

const MEASURE_BUDGET: u64 = 50_000_000;

/// **T5** — the Section 6 separation example: with global labels,
/// `c = n²` and `k = c − 1` (shared-core, `C = k + n`), hop-together
/// completes in `O(C/k) = O(1)` expected slots while COGCAST pays
/// `Θ((c²/(nk))·lg n) = Θ(n·lg n)`.
pub fn t5(effort: Effort) -> Table {
    let ns: &[usize] = &[3, 4, 5, 6];
    let trials = effort.trials(20);
    let mut t = Table::new(
        "T5: c >> n separation — hop-together (global labels) vs COGCAST (mean slots); c = n², k = c-1",
        &["n", "c", "hop-together", "COGCAST", "ratio"],
    );
    for &n in &effort.sweep(ns) {
        let c = n * n;
        let k = c - 1;
        let hop = mean_slots(trials, |seed| {
            let model = StaticChannels::global(shared_core(n, c, k).expect("valid"));
            run_hop_together(model, seed, MEASURE_BUDGET)
                .expect("construct")
                .slots
                .expect("completion")
        });
        let cog = mean_slots(trials, |seed| {
            let model = StaticChannels::local(shared_core(n, c, k).expect("valid"), seed);
            run_broadcast(model, seed, MEASURE_BUDGET)
                .expect("construct")
                .slots
                .expect("completion")
        });
        t.push_row(vec![
            n.to_string(),
            c.to_string(),
            format!("{hop:.2}"),
            format!("{cog:.2}"),
            format!("{:.1}x", cog / hop),
        ]);
    }
    t
}

/// **F9** — COGCAST against n-uniform jammers (Theorem 18): completion
/// time vs jam budget `k`, per strategy, in a fully-shared `c`-channel
/// network. The effective overlap is `c − 2k`.
pub fn f9(effort: Effort) -> Table {
    let (n, c) = (16usize, 12usize);
    let trials = effort.trials(15);
    let mut t = Table::new(
        format!("F9: COGCAST under n-uniform jamming (n = {n}, c = {c}; mean slots)"),
        &[
            "jam budget k",
            "effective overlap c-2k",
            "random",
            "sweep",
            "targeted",
        ],
    );
    for k in [0usize, 1, 2, 3, 4, 5] {
        let mut cells = vec![k.to_string(), (c - 2 * k).to_string()];
        for strategy in JammerStrategy::ALL {
            let mean = mean_slots(trials, |seed| {
                let run = run_jammed_broadcast(n, c, k, strategy, seed, 60.0).expect("construct");
                run.slots.expect("completion within the padded budget")
            });
            cells.push(format!("{mean:.1}"));
        }
        t.push_row(cells);
    }
    t
}

/// **F10** — the backoff substrate (footnote 4): mean physical rounds
/// to resolve `m` contenders with population bound `n_max = 256`; the
/// curve stays `O(log² n)` across three orders of magnitude of `m`.
pub fn f10(effort: Effort) -> Series {
    let n_max = 256usize;
    let ms: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];
    let trials = effort.trials(300);
    let mut s = Series::new(
        format!("F10: decay backoff — physical rounds per abstract slot (n_max = {n_max})"),
        "contenders m",
        "mean rounds",
    );
    for &m in &effort.sweep(ms) {
        s.push(m as f64, mean_rounds_per_slot(m, n_max, trials, 41));
    }
    s
}

/// **F14** — the end-to-end stack substitution: COGCAST over the real
/// decay-backoff radio vs over the abstract collision oracle. The
/// abstract-slot counts must agree (same protocol, same workload); the
/// physical stack additionally pays `O(log² n)` rounds per slot.
pub fn f14(effort: Effort) -> Table {
    use crn_backoff::stack::{run_physical_broadcast, shared_core_sets};
    let (c, k) = (6usize, 2usize);
    let ns: &[usize] = &[8, 16, 32, 64];
    let trials = effort.trials(15);
    let mut t = Table::new(
        format!("F14: COGCAST on the physical stack vs the collision oracle (c = {c}, k = {k})"),
        &[
            "n",
            "oracle slots",
            "physical slots",
            "rounds/slot",
            "physical rounds",
            "failed episodes",
        ],
    );
    for &n in &effort.sweep(ns) {
        let oracle = mean_slots(trials, |seed| {
            let model = StaticChannels::local(shared_core(n, c, k).expect("valid"), seed);
            run_broadcast(model, seed, MEASURE_BUDGET)
                .expect("construct")
                .slots
                .expect("completes")
        });
        let sets = shared_core_sets(n, c, k);
        let runs = crate::effort::par_trials(trials, |seed| {
            let run = run_physical_broadcast(&sets, seed, 10_000_000).expect("valid params");
            assert!(run.completed(), "physical n={n} seed={seed}");
            run
        });
        let phys_slots =
            runs.iter().map(|r| r.slots.unwrap()).sum::<u64>() as f64 / runs.len() as f64;
        let phys_rounds =
            runs.iter().map(|r| r.physical_rounds).sum::<u64>() as f64 / runs.len() as f64;
        let fails = runs.iter().map(|r| r.failed_episodes).sum::<u64>();
        t.push_row(vec![
            n.to_string(),
            format!("{oracle:.1}"),
            format!("{phys_slots:.1}"),
            runs[0].rounds_per_slot.to_string(),
            format!("{phys_rounds:.0}"),
            fails.to_string(),
        ]);
    }
    t
}

/// **F16** — the protocol × medium matrix: COGCAST, hop-together and
/// COGCOMP each driven over the abstract collision oracle, the multihop
/// medium on the complete topology (which must reproduce the oracle's
/// numbers exactly), and the real decay-backoff physical layer. The
/// physical columns are the first cross-protocol runs on real decay —
/// previously only the hard-wired COGCAST stack (F14) touched it.
pub fn f16(effort: Effort) -> Table {
    use crn_core::aggregate::Count;
    use crn_core::cogcast::run_broadcast_on;
    use crn_core::cogcomp::run_aggregation_on;
    use crn_rendezvous::hop_together::run_hop_together_on;
    use crn_sim::{OracleMultihop, OracleSingleHop, PhysicalDecay, Topology};

    let (n, c, k) = (16usize, 6usize, 2usize);
    let trials = effort.trials(15);
    let budget = 1_000_000u64;
    let mut t = Table::new(
        format!("F16: protocol × medium matrix (n = {n}, c = {c}, k = {k}; mean slots)"),
        &[
            "protocol",
            "oracle",
            "multihop (complete)",
            "physical",
            "phys rounds",
        ],
    );

    // Mean over the completed trials, annotating any that timed out.
    let fmt_cell = |xs: &[Option<u64>]| -> String {
        let done: Vec<u64> = xs.iter().copied().flatten().collect();
        let dnf = xs.len() - done.len();
        if done.is_empty() {
            return "dnf".into();
        }
        let mean = done.iter().sum::<u64>() as f64 / done.len() as f64;
        if dnf == 0 {
            format!("{mean:.1}")
        } else {
            format!("{mean:.1} ({dnf} dnf)")
        }
    };
    let mean_rounds = |xs: &[(Option<u64>, u64)]| -> String {
        format!(
            "{:.0}",
            xs.iter().map(|&(_, r)| r).sum::<u64>() as f64 / xs.len() as f64
        )
    };

    // COGCAST (local labels).
    {
        let model = |seed| StaticChannels::local(shared_core(n, c, k).expect("valid"), seed);
        let oracle = crate::effort::par_trials(trials, |s| {
            let (run, _) =
                run_broadcast_on(model(s), s, budget, OracleSingleHop::new()).expect("construct");
            run.slots
        });
        let multihop = crate::effort::par_trials(trials, |s| {
            let medium = OracleMultihop::new(Topology::complete(n));
            let (run, _) = run_broadcast_on(model(s), s, budget, medium).expect("construct");
            run.slots
        });
        let physical = crate::effort::par_trials(trials, |s| {
            let (run, med) =
                run_broadcast_on(model(s), s, budget, PhysicalDecay::new()).expect("construct");
            (run.slots, med.physical_rounds())
        });
        let phys_slots: Vec<Option<u64>> = physical.iter().map(|&(sl, _)| sl).collect();
        t.push_row(vec![
            "COGCAST".into(),
            fmt_cell(&oracle),
            fmt_cell(&multihop),
            fmt_cell(&phys_slots),
            mean_rounds(&physical),
        ]);
    }

    // Hop-together rendezvous broadcast (global labels).
    {
        let model = |_seed| StaticChannels::global(shared_core(n, c, k).expect("valid"));
        let oracle = crate::effort::par_trials(trials, |s| {
            let (run, _) = run_hop_together_on(model(s), s, budget, OracleSingleHop::new())
                .expect("construct");
            run.slots
        });
        let multihop = crate::effort::par_trials(trials, |s| {
            let medium = OracleMultihop::new(Topology::complete(n));
            let (run, _) = run_hop_together_on(model(s), s, budget, medium).expect("construct");
            run.slots
        });
        let physical = crate::effort::par_trials(trials, |s| {
            let (run, med) =
                run_hop_together_on(model(s), s, budget, PhysicalDecay::new()).expect("construct");
            (run.slots, med.physical_rounds())
        });
        let phys_slots: Vec<Option<u64>> = physical.iter().map(|&(sl, _)| sl).collect();
        t.push_row(vec![
            "hop-together".into(),
            fmt_cell(&oracle),
            fmt_cell(&multihop),
            fmt_cell(&phys_slots),
            mean_rounds(&physical),
        ]);
    }

    // COGCOMP aggregation (local labels; slots counted only when the
    // aggregate is complete — every node informed and terminated).
    {
        let alpha = 6.0;
        let model = |seed| StaticChannels::local(shared_core(n, c, k).expect("valid"), seed);
        let values = || -> Vec<Count> { (0..n).map(|_| Count(1)).collect() };
        let oracle = crate::effort::par_trials(trials, |s| {
            let (run, _) = run_aggregation_on(model(s), values(), s, alpha, OracleSingleHop::new())
                .expect("construct");
            run.is_complete().then(|| run.slots.expect("complete"))
        });
        let multihop = crate::effort::par_trials(trials, |s| {
            let medium = OracleMultihop::new(Topology::complete(n));
            let (run, _) =
                run_aggregation_on(model(s), values(), s, alpha, medium).expect("construct");
            run.is_complete().then(|| run.slots.expect("complete"))
        });
        let physical = crate::effort::par_trials(trials, |s| {
            let (run, med) = run_aggregation_on(model(s), values(), s, alpha, PhysicalDecay::new())
                .expect("construct");
            let slots = run.is_complete().then(|| run.slots.expect("complete"));
            (slots, med.physical_rounds())
        });
        let phys_slots: Vec<Option<u64>> = physical.iter().map(|&(sl, _)| sl).collect();
        t.push_row(vec![
            "COGCOMP".into(),
            fmt_cell(&oracle),
            fmt_cell(&multihop),
            fmt_cell(&phys_slots),
            mean_rounds(&physical),
        ]);
    }
    t
}

/// **F15** — the multi-hop extension: COGCAST flooding time vs network
/// diameter at fixed `n` (the message pays one single-hop epoch per
/// hop, so completion tracks the diameter).
pub fn f15(effort: Effort) -> Table {
    use crn_multihop::{run_flood, Topology};
    let (n, c, k) = (16usize, 4usize, 2usize);
    let trials = effort.trials(15);
    let mut t = Table::new(
        format!("F15: multi-hop COGCAST flood vs topology (n = {n}, c = {c}, k = {k}; mean slots)"),
        &["topology", "diameter", "mean slots", "slots/diameter"],
    );
    let topologies: Vec<(&str, Topology)> = vec![
        ("complete", Topology::complete(n)),
        ("grid 4x4", Topology::grid(4, 4)),
        ("ring", Topology::ring(n)),
        ("line", Topology::line(n)),
    ];
    for (name, topo) in topologies {
        let diameter = topo.diameter().expect("connected");
        let mean = mean_slots(trials, |seed| {
            let model = StaticChannels::local(shared_core(n, c, k).expect("valid"), seed);
            run_flood(topo.clone(), model, seed, MEASURE_BUDGET)
                .expect("construct")
                .slots
                .expect("completes")
        });
        t.push_row(vec![
            name.to_string(),
            diameter.to_string(),
            format!("{mean:.1}"),
            format!("{:.1}", mean / diameter as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f15_diameter_dominates() {
        let t = f15(Effort::Quick);
        let complete: f64 = t.rows()[0][2].parse().unwrap();
        let line: f64 = t.rows().last().unwrap()[2].parse().unwrap();
        assert!(
            line > complete * 2.0,
            "line must be much slower than complete: {complete} vs {line}"
        );
    }

    #[test]
    fn f16_multihop_column_matches_oracle_exactly() {
        // Complete topology + single-hop protocols: the multihop medium
        // delegates to the oracle, so the columns must be identical —
        // same trace, same slot counts, not just statistically close.
        let t = f16(Effort::Quick);
        assert_eq!(t.rows().len(), 3);
        for row in t.rows() {
            assert_eq!(row[1], row[2], "oracle vs multihop diverged: {row:?}");
            // The physical column completed and agrees in order of
            // magnitude (decay preserves the slot-level behaviour).
            assert!(!row[3].contains("dnf"), "physical timed out: {row:?}");
            let oracle: f64 = row[1].parse().unwrap();
            let physical: f64 = row[3].parse().unwrap();
            assert!(
                physical / oracle < 4.0 && oracle / physical < 4.0,
                "physical slots far from oracle: {row:?}"
            );
        }
    }

    #[test]
    fn f14_physical_tracks_oracle() {
        let t = f14(Effort::Quick);
        for row in t.rows() {
            let oracle: f64 = row[1].parse().unwrap();
            let physical: f64 = row[2].parse().unwrap();
            let ratio = physical / oracle;
            assert!(
                (0.4..2.5).contains(&ratio),
                "abstract-slot counts should agree: {row:?}"
            );
        }
    }

    #[test]
    fn t5_hop_together_wins() {
        let t = t5(Effort::Quick);
        for row in t.rows() {
            let hop: f64 = row[2].parse().unwrap();
            let cog: f64 = row[3].parse().unwrap();
            assert!(hop < cog, "hop-together should win when c >> n: {row:?}");
            assert!(hop < 6.0, "hop-together should be O(1): {row:?}");
        }
    }

    #[test]
    fn f9_unjammed_row_is_fastest() {
        let t = f9(Effort::Quick);
        let first: f64 = t.rows()[0][2].parse().unwrap();
        let last: f64 = t.rows().last().unwrap()[2].parse().unwrap();
        assert!(
            last > first,
            "jamming must slow broadcast: {first} vs {last}"
        );
    }

    #[test]
    fn f10_rounds_bounded() {
        let s = f10(Effort::Quick);
        for &(_, y) in s.points() {
            assert!(y.is_finite() && y < 500.0);
        }
    }
}
