//! Lower-bound experiments: T3, T4, F11.

use crate::effort::Effort;
use crn_core::bounds::{global_label_floor, hitting_game_floor};
use crn_lowerbounds::global_label::{mean_first_overlap, SourceStrategy};
use crn_lowerbounds::players::{survival_curve, FreshPlayer, UniformPlayer};
use crn_stats::Table;

/// **T3** — Lemma 11: no player wins the `(c,k)`-bipartite hitting game
/// within `c²/(8k)` rounds with probability ½ (`β = 2`). Reports the
/// empirical win probability *at the floor* for the uniform and
/// fresh-edge players.
pub fn t3(effort: Effort) -> Table {
    let grid: &[(usize, usize)] = &[(16, 2), (32, 2), (32, 4), (64, 8), (48, 6)];
    let trials = effort.trials(500);
    let mut t = Table::new(
        "T3: (c,k)-bipartite hitting game — win probability at the Lemma 11 floor c²/(8k)",
        &[
            "c",
            "k",
            "floor",
            "P[win] uniform",
            "P[win] fresh",
            "< 1/2 ?",
        ],
    );
    for &(c, k) in &effort.sweep(grid) {
        let floor = hitting_game_floor(c, k, 2.0);
        let uni = *survival_curve(c, k, trials, floor, 11, UniformPlayer::new)
            .last()
            .unwrap();
        let fresh = *survival_curve(c, k, trials, floor, 13, FreshPlayer::new)
            .last()
            .unwrap();
        t.push_row(vec![
            c.to_string(),
            k.to_string(),
            floor.to_string(),
            format!("{uni:.3}"),
            format!("{fresh:.3}"),
            (uni < 0.5 && fresh < 0.5).to_string(),
        ]);
    }
    t
}

/// **T4** — Theorem 16: in the random shared-core setup under global
/// labels, every strategy needs `≥ (c+1)/(k+1)` expected slots before
/// the source first touches an overlap channel.
pub fn t4(effort: Effort) -> Table {
    let grid: &[(usize, usize)] = &[(8, 1), (16, 2), (32, 4), (64, 4), (64, 16)];
    let trials = effort.trials(3000);
    let budget = 1_000_000;
    let mut t = Table::new(
        "T4: global-label first-overlap floor (c+1)/(k+1) — Theorem 16",
        &["c", "k", "floor", "mean uniform", "mean scan", ">= floor ?"],
    );
    for &(c, k) in &effort.sweep(grid) {
        let floor = global_label_floor(c, k);
        let uni = mean_first_overlap(c, k, SourceStrategy::Uniform, trials, 21, budget);
        let scan = mean_first_overlap(c, k, SourceStrategy::Scan, trials, 22, budget);
        t.push_row(vec![
            c.to_string(),
            k.to_string(),
            format!("{floor:.2}"),
            format!("{uni:.2}"),
            format!("{scan:.2}"),
            (uni >= floor * 0.9 && scan >= floor * 0.9).to_string(),
        ]);
    }
    t
}

/// **F11** — survival curves for Lemmas 11 and 14: cumulative win
/// probability at fractions/multiples of the respective floors,
/// showing the ½ threshold is only crossed past the floor.
pub fn f11(effort: Effort) -> Table {
    let trials = effort.trials(500);
    let mut t = Table::new(
        "F11: hitting-game survival — P[win by round] at checkpoints around the floor",
        &[
            "game", "player", "floor/4", "floor/2", "floor", "2*floor", "4*floor",
        ],
    );
    // Lemma 11 instance.
    let (c, k) = (32usize, 4usize);
    let floor = hitting_game_floor(c, k, 2.0);
    let max = floor * 4;
    let checkpoints = [floor / 4, floor / 2, floor, 2 * floor, 4 * floor];
    let label = format!("({c},{k})-hitting");
    for (name, curve) in [
        (
            "uniform",
            survival_curve(c, k, trials, max, 31, UniformPlayer::new),
        ),
        (
            "fresh",
            survival_curve(c, k, trials, max, 32, FreshPlayer::new),
        ),
    ] {
        let mut row = vec![label.clone(), name.to_string()];
        for &cp in &checkpoints {
            row.push(format!("{:.3}", curve[(cp.max(1) - 1) as usize]));
        }
        t.push_row(row);
    }
    // Lemma 14 instance (k = c, floor c/3).
    let c2 = 30usize;
    let floor2 = (c2 / 3) as u64;
    let max2 = floor2 * 4;
    let checkpoints2 = [floor2 / 4, floor2 / 2, floor2, 2 * floor2, 4 * floor2];
    let curve = survival_curve(c2, c2, trials, max2, 33, FreshPlayer::new);
    let mut row = vec![format!("{c2}-complete"), "fresh".to_string()];
    for &cp in &checkpoints2 {
        row.push(format!("{:.3}", curve[(cp.max(1) - 1) as usize]));
    }
    t.push_row(row);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3_all_rows_respect_floor() {
        let t = t3(Effort::Quick);
        for row in t.rows() {
            assert_eq!(row[5], "true", "floor violated: {row:?}");
        }
    }

    #[test]
    fn t4_all_rows_respect_floor() {
        let t = t4(Effort::Quick);
        for row in t.rows() {
            assert_eq!(row[5], "true", "floor violated: {row:?}");
        }
    }

    #[test]
    fn f11_curves_are_monotone_rows() {
        let t = f11(Effort::Quick);
        for row in t.rows() {
            let vals: Vec<f64> = row[2..].iter().map(|v| v.parse().unwrap()).collect();
            for w in vals.windows(2) {
                assert!(w[0] <= w[1] + 1e-9, "non-monotone survival: {row:?}");
            }
            // At the floor itself, below 1/2.
            assert!(vals[2] < 0.5, "won at the floor: {row:?}");
        }
    }
}
