//! The experiment registry: one entry per reproduced table/figure.
//!
//! See DESIGN.md for the experiment index (what each id reproduces and
//! which paper claim it checks) and EXPERIMENTS.md for recorded runs.

pub mod ablations;
pub mod aggregation;
pub mod broadcast;
pub mod lower_bounds;
pub mod special;

use crate::effort::Effort;
use crn_stats::{Series, Table};
use std::fmt;

/// A produced experiment artifact: a table or a figure series.
#[derive(Debug, Clone, PartialEq)]
pub enum Artifact {
    /// A reproduced "table".
    Table(Table),
    /// A reproduced "figure" (x/y series with an ASCII chart).
    Series(Series),
}

impl Artifact {
    /// Renders the artifact as CSV (tables: header + rows; series:
    /// `x,y` pairs).
    pub fn to_csv(&self) -> String {
        match self {
            Artifact::Table(t) => t.to_csv(),
            Artifact::Series(s) => s.to_csv(),
        }
    }
}

impl fmt::Display for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Artifact::Table(t) => t.fmt(f),
            Artifact::Series(s) => s.fmt(f),
        }
    }
}

/// All experiment ids, in DESIGN.md order.
pub const EXPERIMENT_IDS: &[&str] = &[
    "t1", "t2", "t3", "t4", "t5", "t6", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9",
    "f10", "f11", "f12", "f13", "f14", "f15", "f16", "a1", "a2", "a3", "a4",
];

/// Runs one experiment by id; `None` for an unknown id.
pub fn run_experiment(id: &str, effort: Effort) -> Option<Artifact> {
    let artifact = match id {
        "t1" => Artifact::Table(broadcast::t1(effort)),
        "t2" => Artifact::Table(aggregation::t2(effort)),
        "t3" => Artifact::Table(lower_bounds::t3(effort)),
        "t4" => Artifact::Table(lower_bounds::t4(effort)),
        "t5" => Artifact::Table(special::t5(effort)),
        "t6" => Artifact::Table(ablations::t6(effort)),
        "a1" => Artifact::Table(ablations::a1(effort)),
        "a2" => Artifact::Table(ablations::a2(effort)),
        "a3" => Artifact::Table(ablations::a3(effort)),
        "a4" => Artifact::Table(ablations::a4(effort)),
        "f1" => Artifact::Series(broadcast::f1(effort)),
        "f2" => Artifact::Series(broadcast::f2(effort)),
        "f3" => Artifact::Series(broadcast::f3(effort)),
        "f4" => Artifact::Series(broadcast::f4(effort)),
        "f5" => Artifact::Table(aggregation::f5(effort)),
        "f6" => Artifact::Table(aggregation::f6(effort)),
        "f7" => Artifact::Table(broadcast::f7(effort)),
        "f8" => Artifact::Series(broadcast::f8(effort)),
        "f9" => Artifact::Table(special::f9(effort)),
        "f10" => Artifact::Series(special::f10(effort)),
        "f11" => Artifact::Table(lower_bounds::f11(effort)),
        "f12" => Artifact::Series(aggregation::f12(effort)),
        "f13" => Artifact::Table(broadcast::f13(effort)),
        "f14" => Artifact::Table(special::f14(effort)),
        "f15" => Artifact::Table(special::f15(effort)),
        "f16" => Artifact::Table(special::f16(effort)),
        _ => return None,
    };
    Some(artifact)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("nope", Effort::Quick).is_none());
    }

    #[test]
    fn registry_ids_are_unique() {
        let set: std::collections::HashSet<_> = EXPERIMENT_IDS.iter().collect();
        assert_eq!(set.len(), EXPERIMENT_IDS.len());
    }
}
