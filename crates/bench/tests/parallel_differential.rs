//! Sequential ↔ parallel differential suite: the engine's intra-slot
//! fan-out must be **digest-identical** to the sequential path at every
//! worker count — the pool only reorders *when* per-node decide/observe
//! work runs, never what any node computes.
//!
//! Each scenario is swept over workers ∈ {1, 2, 3, 8} with a dedicated
//! pool at threshold 1, so even the smallest golden networks take the
//! parallel phases (1 worker is the engine's sequential special case
//! and doubles as the reference). Coverage:
//!
//! - the three pinned golden COGCAST traces (plain, jammed, churned),
//!   so a parallel-path divergence flips a reviewed constant;
//! - COGCAST, COGCOMP and hop-together rendezvous over all three media
//!   (`oracle`, `multihop` on the complete topology, `physical` decay
//!   backoff), digest-compared worker count against worker count;
//! - per-slot model conformance and, for the golden traces, an
//!   independent serial ENGINE-stream winner replay — proving the
//!   parallel phases left the winner draws on the serial stream.

use crn_core::aggregate::Sum;
use crn_core::bounds;
use crn_core::cogcast::CogCast;
use crn_core::cogcomp::{CogComp, CogCompConfig};
use crn_jamming::{JammerStrategy, UniformJammer};
use crn_rendezvous::HopTogether;
use crn_sim::assignment::{full_overlap, shared_core};
use crn_sim::channel_model::{DynamicSharedCore, StaticChannels};
use crn_sim::pool::WorkerPool;
use crn_sim::{
    ChannelModel, Medium, Network, OracleMultihop, ParConfig, PhysicalDecay, Protocol, Topology,
    TraceDigest,
};
use std::sync::Arc;

/// The swept pool widths. 1 is the sequential reference; 2 and 3 split
/// nodes unevenly across chunk boundaries; 8 oversubscribes a small
/// host on purpose (laggard workers must still rendezvous correctly).
const WORKER_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Installs a dedicated `workers`-wide pool at threshold 1 (nothing
/// falls back to sequential for being small), then drives `net` until
/// `done` or `budget`, digesting every slot, conformance-checking it
/// against the medium's profile, and recording the trace. Returns
/// `(slots_run, digest, trace)`.
fn drive<M, P, CM, Med>(
    net: &mut Network<M, P, CM, Med>,
    workers: usize,
    budget: u64,
    mut done: impl FnMut(&Network<M, P, CM, Med>) -> bool,
) -> (u64, u64, Vec<crn_sim::SlotActivity>)
where
    M: Clone + Send + PartialEq + std::fmt::Debug,
    P: Protocol<M> + Send,
    CM: ChannelModel + Sync,
    Med: Medium<M>,
{
    if workers > 1 {
        let pool = Arc::new(WorkerPool::new(workers));
        net.set_parallelism(Some(ParConfig::new(pool).with_threshold(1)));
    }
    let mut digest = TraceDigest::new();
    let mut trace = Vec::new();
    let mut slots_run = 0u64;
    for _ in 0..budget {
        trace.push(net.step().clone());
        digest.record(net.last_activity());
        let violations = net.check_conformance();
        assert!(
            violations.is_empty(),
            "slot {slots_run} violates the model contract at {workers} workers: {violations:?}"
        );
        slots_run += 1;
        if done(net) {
            break;
        }
    }
    (slots_run, digest.finish(), trace)
}

fn cogcast_protos(n: usize) -> Vec<CogCast<()>> {
    let mut protos = Vec::with_capacity(n);
    protos.push(CogCast::source(()));
    protos.extend((1..n).map(|_| CogCast::node()));
    protos
}

/// The plain golden COGCAST trace (`crn-core/tests/golden_trace.rs`):
/// every worker count must reproduce the pinned slot count and digest
/// bit for bit, and the recorded winners must survive an independent
/// serial ENGINE-stream replay.
#[test]
fn golden_cogcast_digest_identical_at_every_worker_count() {
    for workers in WORKER_COUNTS {
        let n = 24;
        let model = StaticChannels::local(shared_core(n, 6, 3).expect("valid shape"), 42);
        let mut net = Network::new(model, cogcast_protos(n), 42).expect("construct");
        let budget = bounds::cogcast_slots(24, 6, 3, bounds::DEFAULT_ALPHA);
        let (slots, digest, trace) = drive(&mut net, workers, budget, |net| {
            net.protocols().iter().all(|p| p.is_informed())
        });
        assert!(net.protocols().iter().all(|p| p.is_informed()));
        assert_eq!(slots, 8, "golden run length changed at {workers} workers");
        assert_eq!(
            digest, 0x279f_38a0_b5f3_4b08,
            "golden digest changed at {workers} workers"
        );
        assert_eq!(
            crn_sim::replay_winners(42, &trace),
            vec![],
            "winners diverged from the serial ENGINE-stream replay at {workers} workers"
        );
    }
}

/// The jammed golden trace (Theorem 18 scenario): interference masking
/// runs in the serial phase, so the digest must hold at any width.
#[test]
fn golden_jammed_digest_identical_at_every_worker_count() {
    for workers in WORKER_COUNTS {
        let n = 24;
        let (c, jam_k) = (8, 2);
        let model = StaticChannels::local(full_overlap(n, c).expect("valid shape"), 42);
        let jammer = UniformJammer::new(n, c, jam_k, JammerStrategy::Random);
        let mut net = Network::with_interference(model, cogcast_protos(n), 42, Box::new(jammer))
            .expect("construct");
        let budget = crn_jamming::jammed_budget(n, c, jam_k, 60.0);
        let (slots, digest, trace) = drive(&mut net, workers, budget, |net| {
            net.protocols().iter().all(|p| p.is_informed())
        });
        assert!(net.protocols().iter().all(|p| p.is_informed()));
        assert_eq!(slots, 6, "jammed run length changed at {workers} workers");
        assert_eq!(
            digest, 0xc510_f8d7_d599_293c,
            "jammed digest changed at {workers} workers"
        );
        assert_eq!(
            crn_sim::replay_winners(42, &trace),
            vec![],
            "jammed winners diverged from the serial replay at {workers} workers"
        );
    }
}

/// The churned golden trace: the `DynamicSharedCore` redraw happens in
/// the serial slot-advance phase, so parallel decide/observe must see
/// exactly the sequential channel sets.
#[test]
fn golden_churned_digest_identical_at_every_worker_count() {
    for workers in WORKER_COUNTS {
        let n = 24;
        let model = DynamicSharedCore::new(n, 6, 3, 30, 0.5, 42).expect("valid shape");
        let mut net = Network::new(model, cogcast_protos(n), 42).expect("construct");
        let budget = bounds::cogcast_slots(24, 6, 3, bounds::DEFAULT_ALPHA);
        let (slots, digest, trace) = drive(&mut net, workers, budget, |net| {
            net.protocols().iter().all(|p| p.is_informed())
        });
        assert!(net.protocols().iter().all(|p| p.is_informed()));
        assert_eq!(slots, 5, "churned run length changed at {workers} workers");
        assert_eq!(
            digest, 0xe848_edf3_85c4_d889,
            "churned digest changed at {workers} workers"
        );
        assert_eq!(
            crn_sim::replay_winners(42, &trace),
            vec![],
            "churned winners diverged from the serial replay at {workers} workers"
        );
    }
}

/// Asserts that `run(workers)` reproduces `run(1)` exactly for every
/// swept width; returns the reference outcome.
fn assert_width_invariant(label: &str, mut run: impl FnMut(usize) -> (u64, u64)) -> (u64, u64) {
    let reference = run(1);
    for workers in WORKER_COUNTS {
        if workers == 1 {
            continue;
        }
        assert_eq!(
            run(workers),
            reference,
            "{label}: (slots, digest) diverged from sequential at {workers} workers"
        );
    }
    reference
}

/// COGCAST over each medium: the per-medium trace is a deterministic
/// function of the seed, so it must be invariant in the worker count
/// (the media are *not* digest-equal to each other — the physical
/// medium draws winners from decay episodes — which is exactly why each
/// is compared against its own sequential run).
#[test]
fn cogcast_every_medium_is_worker_count_invariant() {
    let (n, c, k, seed) = (12usize, 4usize, 2usize, 5u64);
    let model = || StaticChannels::local(shared_core(n, c, k).expect("valid shape"), seed);
    fn informed<Med: Medium<()>>(net: &Network<(), CogCast<()>, StaticChannels, Med>) -> bool {
        net.protocols().iter().all(|p| p.is_informed())
    }
    let budget = 1_000_000u64;

    let (slots, _) = assert_width_invariant("cogcast/oracle", |w| {
        let mut net = Network::new(model(), cogcast_protos(n), seed).expect("construct");
        let (s, d, _) = drive(&mut net, w, budget, informed);
        assert!(informed(&net));
        (s, d)
    });
    assert!(slots < budget);

    assert_width_invariant("cogcast/multihop", |w| {
        let med = OracleMultihop::new(Topology::complete(n));
        let mut net =
            Network::with_medium(model(), cogcast_protos(n), seed, med).expect("construct");
        let (s, d, _) = drive(&mut net, w, budget, informed);
        assert!(informed(&net));
        (s, d)
    });

    assert_width_invariant("cogcast/physical", |w| {
        let mut net = Network::with_medium(model(), cogcast_protos(n), seed, PhysicalDecay::new())
            .expect("construct");
        let (s, d, _) = drive(&mut net, w, budget, informed);
        assert!(informed(&net));
        (s, d)
    });
}

/// COGCOMP over each medium, additionally checking the aggregation
/// *result* survives the parallel phases at every width.
#[test]
fn cogcomp_every_medium_is_worker_count_invariant() {
    let (n, c, k, seed) = (12usize, 4usize, 2usize, 7u64);
    let cfg = CogCompConfig::new(n, c, k, bounds::DEFAULT_ALPHA);
    let expected = Sum((0..n as u64).sum());
    let build = || {
        let model = StaticChannels::local(shared_core(n, c, k).expect("valid shape"), seed);
        let mut protos = vec![CogComp::source(cfg, Sum(0))];
        protos.extend((1..n).map(|i| CogComp::node(cfg, Sum(i as u64))));
        (model, protos)
    };
    let budget = 1_000_000u64;

    assert_width_invariant("cogcomp/oracle", |w| {
        let (model, protos) = build();
        let mut net = Network::new(model, protos, seed).expect("construct");
        let (s, d, _) = drive(&mut net, w, budget, |net| net.all_done());
        assert!(net.all_done());
        assert_eq!(net.protocols()[0].result(), Some(&expected));
        (s, d)
    });

    assert_width_invariant("cogcomp/multihop", |w| {
        let (model, protos) = build();
        let med = OracleMultihop::new(Topology::complete(n));
        let mut net = Network::with_medium(model, protos, seed, med).expect("construct");
        let (s, d, _) = drive(&mut net, w, budget, |net| net.all_done());
        assert!(net.all_done());
        assert_eq!(net.protocols()[0].result(), Some(&expected));
        (s, d)
    });

    assert_width_invariant("cogcomp/physical", |w| {
        let (model, protos) = build();
        let mut net =
            Network::with_medium(model, protos, seed, PhysicalDecay::new()).expect("construct");
        let (s, d, _) = drive(&mut net, w, budget, |net| net.all_done());
        assert!(net.all_done());
        assert_eq!(net.protocols()[0].result(), Some(&expected));
        (s, d)
    });
}

/// Hop-together rendezvous over each medium (global labels — the other
/// labeling mode the goldens don't cover).
#[test]
fn hop_together_every_medium_is_worker_count_invariant() {
    let (n, c, k, seed) = (12usize, 5usize, 2usize, 11u64);
    let build = || {
        let model = StaticChannels::global(shared_core(n, c, k).expect("valid shape"));
        let total = model.total_channels();
        let mut protos = Vec::with_capacity(n);
        protos.push(HopTogether::source((), total));
        protos.extend((1..n).map(|_| HopTogether::node(total)));
        (model, protos)
    };
    let budget = 1_000_000u64;

    assert_width_invariant("hop-together/oracle", |w| {
        let (model, protos) = build();
        let mut net = Network::new(model, protos, seed).expect("construct");
        let (s, d, _) = drive(&mut net, w, budget, |net| net.all_done());
        assert!(net.all_done());
        (s, d)
    });

    assert_width_invariant("hop-together/multihop", |w| {
        let (model, protos) = build();
        let med = OracleMultihop::new(Topology::complete(n));
        let mut net = Network::with_medium(model, protos, seed, med).expect("construct");
        let (s, d, _) = drive(&mut net, w, budget, |net| net.all_done());
        assert!(net.all_done());
        (s, d)
    });

    assert_width_invariant("hop-together/physical", |w| {
        let (model, protos) = build();
        let mut net =
            Network::with_medium(model, protos, seed, PhysicalDecay::new()).expect("construct");
        let (s, d, _) = drive(&mut net, w, budget, |net| net.all_done());
        assert!(net.all_done());
        (s, d)
    });
}
