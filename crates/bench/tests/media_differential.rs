//! Differential tests across media: on a *complete* topology the
//! multihop oracle must be indistinguishable from the single-hop
//! oracle — slot for slot, digest for digest — because every node hears
//! every channel. COGCAST additionally re-pins the repository's golden
//! single-hop trace digest through the multihop path, so any divergence
//! between the two oracle implementations flips a reviewed constant.
//!
//! The physical medium cannot be digest-equal (winners come from the
//! PHYSICAL stream's decay episodes, not the ENGINE stream), so for it
//! we assert the weaker — but still load-bearing — contract: every slot
//! it emits passes the medium-profile-aware conformance checker, and
//! the protocols still complete.

use crn_core::aggregate::Sum;
use crn_core::bounds;
use crn_core::cogcast::CogCast;
use crn_core::cogcomp::{CogComp, CogCompConfig};
use crn_rendezvous::HopTogether;
use crn_sim::assignment::shared_core;
use crn_sim::channel_model::StaticChannels;
use crn_sim::{
    ChannelModel, Medium, Network, OracleMultihop, PhysicalDecay, Topology, TraceDigest,
};

/// Runs `net` until `done` or `budget` slots, digesting every slot and
/// conformance-checking each one against the medium's profile; returns
/// `(slots_run, digest)`.
fn drive<M, P, CM, Med>(
    net: &mut Network<M, P, CM, Med>,
    budget: u64,
    mut done: impl FnMut(&Network<M, P, CM, Med>) -> bool,
) -> (u64, u64)
where
    M: Clone + PartialEq + std::fmt::Debug,
    P: crn_sim::Protocol<M>,
    CM: crn_sim::ChannelModel,
    Med: Medium<M>,
{
    let mut digest = TraceDigest::new();
    let mut slots_run = 0u64;
    for _ in 0..budget {
        digest.record(net.step());
        let violations = net.check_conformance();
        assert!(
            violations.is_empty(),
            "slot {slots_run} violates the model contract: {violations:?}"
        );
        slots_run += 1;
        if done(net) {
            break;
        }
    }
    (slots_run, digest.finish())
}

fn cogcast_protos(n: usize) -> Vec<CogCast<()>> {
    let mut protos = Vec::with_capacity(n);
    protos.push(CogCast::source(()));
    protos.extend((1..n).map(|_| CogCast::node()));
    protos
}

/// The golden COGCAST scenario from `crn-core/tests/golden_trace.rs`
/// (n = 24, C = 13, c = 6, k = 3, local labels, seed 42), run over
/// `OracleMultihop` on the complete 24-node topology: the digest and
/// slot count must equal the pinned single-hop constants exactly.
#[test]
fn cogcast_multihop_complete_reproduces_golden_digest() {
    let n = 24;
    let model = StaticChannels::local(shared_core(n, 6, 3).expect("valid shape"), 42);
    let medium = OracleMultihop::new(Topology::complete(n));
    let mut net = Network::with_medium(model, cogcast_protos(n), 42, medium).expect("construct");
    let budget = bounds::cogcast_slots(24, 6, 3, bounds::DEFAULT_ALPHA);
    let (slots_run, digest) = drive(&mut net, budget, |net| {
        net.protocols().iter().all(|p| p.is_informed())
    });
    assert!(net.protocols().iter().all(|p| p.is_informed()));
    assert_eq!(slots_run, 8, "multihop-complete run length diverged");
    assert_eq!(
        digest, 0x279f_38a0_b5f3_4b08,
        "multihop-complete digest diverged from the single-hop golden trace"
    );
}

/// COGCOMP aggregation differential: identical configuration on the
/// single-hop oracle and the multihop oracle over a complete topology
/// must produce identical traces and results.
#[test]
fn cogcomp_multihop_complete_matches_singlehop_digest() {
    let (n, c, k, seed) = (20usize, 5usize, 2usize, 7u64);
    let cfg = CogCompConfig::new(n, c, k, bounds::DEFAULT_ALPHA);
    let budget = cfg.recommended_budget();
    let build = |_: u32| {
        let model = StaticChannels::local(shared_core(n, c, k).expect("valid shape"), seed);
        let mut protos = vec![CogComp::source(cfg, Sum(0))];
        protos.extend((1..n).map(|i| CogComp::node(cfg, Sum(i as u64))));
        (model, protos)
    };

    let (model, protos) = build(0);
    let mut single = Network::new(model, protos, seed).expect("construct");
    let (slots_s, digest_s) = drive(&mut single, budget, |net| net.all_done());

    let (model, protos) = build(1);
    let mut multi = Network::with_medium(
        model,
        protos,
        seed,
        OracleMultihop::new(Topology::complete(n)),
    )
    .expect("construct");
    let (slots_m, digest_m) = drive(&mut multi, budget, |net| net.all_done());

    assert_eq!(
        slots_s, slots_m,
        "COGCOMP slot counts diverged across oracles"
    );
    assert_eq!(digest_s, digest_m, "COGCOMP traces diverged across oracles");
    let expected = Sum((0..n as u64).sum());
    assert_eq!(single.protocols()[0].result(), Some(&expected));
    assert_eq!(multi.protocols()[0].result(), Some(&expected));
}

/// Rendezvous (hop-together baseline) differential: same contract as
/// the COGCOMP test, over global labels.
#[test]
fn hop_together_multihop_complete_matches_singlehop_digest() {
    let (n, c, k, seed) = (16usize, 5usize, 2usize, 11u64);
    let budget = 4096u64;
    let build = |_: u32| {
        let model = StaticChannels::global(shared_core(n, c, k).expect("valid shape"));
        let total = model.total_channels();
        let mut protos = Vec::with_capacity(n);
        protos.push(HopTogether::source((), total));
        protos.extend((1..n).map(|_| HopTogether::node(total)));
        (model, protos)
    };

    let (model, protos) = build(0);
    let mut single = Network::new(model, protos, seed).expect("construct");
    let (slots_s, digest_s) = drive(&mut single, budget, |net| net.all_done());

    let (model, protos) = build(1);
    let mut multi = Network::with_medium(
        model,
        protos,
        seed,
        OracleMultihop::new(Topology::complete(n)),
    )
    .expect("construct");
    let (slots_m, digest_m) = drive(&mut multi, budget, |net| net.all_done());

    assert!(single.all_done(), "single-hop run must finish in budget");
    assert_eq!(
        slots_s, slots_m,
        "rendezvous slot counts diverged across oracles"
    );
    assert_eq!(
        digest_s, digest_m,
        "rendezvous traces diverged across oracles"
    );
}

/// The physical medium completes the same three protocols and every
/// slot passes the profile-aware conformance checker (the `drive`
/// helper asserts per-slot conformance), with a nonzero physical-round
/// bill.
#[test]
fn physical_medium_conformant_for_all_three_protocols() {
    let (n, c, k) = (12usize, 4usize, 2usize);
    let budget = 1_000_000u64;

    // COGCAST, local labels.
    let model = StaticChannels::local(shared_core(n, c, k).expect("valid shape"), 5);
    let mut net =
        Network::with_medium(model, cogcast_protos(n), 5, PhysicalDecay::new()).expect("construct");
    let (slots, _) = drive(&mut net, budget, |net| {
        net.protocols().iter().all(|p| p.is_informed())
    });
    assert!(net.protocols().iter().all(|p| p.is_informed()));
    assert!(slots < budget);
    assert!(net.medium().physical_rounds() > 0);

    // COGCOMP, local labels.
    let cfg = CogCompConfig::new(n, c, k, bounds::DEFAULT_ALPHA);
    let model = StaticChannels::local(shared_core(n, c, k).expect("valid shape"), 6);
    let mut protos = vec![CogComp::source(cfg, Sum(0))];
    protos.extend((1..n).map(|i| CogComp::node(cfg, Sum(i as u64))));
    let mut net = Network::with_medium(model, protos, 6, PhysicalDecay::new()).expect("construct");
    let (slots, _) = drive(&mut net, budget, |net| net.all_done());
    assert!(net.all_done(), "COGCOMP must finish on the physical medium");
    assert!(slots < budget);
    assert_eq!(net.protocols()[0].result(), Some(&Sum((0..n as u64).sum())));

    // Hop-together rendezvous, global labels.
    let model = StaticChannels::global(shared_core(n, c, k).expect("valid shape"));
    let total = model.total_channels();
    let mut protos = Vec::with_capacity(n);
    protos.push(HopTogether::source((), total));
    protos.extend((1..n).map(|_| HopTogether::node(total)));
    let mut net = Network::with_medium(model, protos, 7, PhysicalDecay::new()).expect("construct");
    let (slots, _) = drive(&mut net, budget, |net| net.all_done());
    assert!(
        net.all_done(),
        "rendezvous must finish on the physical medium"
    );
    assert!(slots < budget);
}
