//! Stress test for the work-stealing trial scheduler under a
//! pathologically skewed per-trial cost distribution.
//!
//! The workload is sleep-based rather than compute-based so the test is
//! meaningful even on a single-core CI box: sleeping threads overlap
//! regardless of core count, while static chunking still serializes the
//! expensive seeds on whichever worker owns their chunk.

use crn_bench::effort::{
    par_trials_static_chunked, par_trials_with_worker_loads, par_trials_with_workers,
};
use std::time::{Duration, Instant};

const TRIALS: usize = 16;
const WORKERS: usize = 4;

/// Seeds 0..4 are expensive (one full static chunk), the rest cheap —
/// the adversarial case for static chunking, where worker 0's chunk is
/// the entire critical path.
fn skewed_trial(seed: u64) -> u64 {
    let cost = if seed < 4 {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(1)
    };
    std::thread::sleep(cost);
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[test]
fn skewed_results_deterministic_and_all_workers_used() {
    let reference: Vec<u64> = (0..TRIALS as u64).map(skewed_trial).collect();
    for workers in [2, 3, WORKERS] {
        let (results, loads) = par_trials_with_worker_loads(TRIALS, workers, skewed_trial);
        assert_eq!(
            results, reference,
            "results changed with {workers} workers: trials must be keyed by seed"
        );
        assert_eq!(loads.iter().sum::<usize>(), TRIALS);
        assert!(
            loads.iter().all(|&l| l >= 1),
            "scheduler left a worker idle on a skewed workload: loads {loads:?}"
        );
    }
    assert_eq!(
        par_trials_static_chunked(TRIALS, WORKERS, skewed_trial),
        reference,
        "static baseline must agree on results"
    );
}

#[test]
fn work_stealing_beats_static_chunking_on_skewed_costs() {
    // Static chunking puts all four 40 ms seeds in worker 0's chunk:
    // ~160 ms wall. Work stealing hands one expensive seed to each
    // worker: ~40 ms + a few cheap trials. Require >= 1.5x, far below
    // the ~3.5x ideal, and retry a couple of times so a slow thread
    // spawn on a loaded CI machine cannot flake the test.
    let mut best_ratio = 0.0f64;
    for _attempt in 0..3 {
        let start = Instant::now();
        par_trials_static_chunked(TRIALS, WORKERS, skewed_trial);
        let static_wall = start.elapsed();

        let start = Instant::now();
        par_trials_with_workers(TRIALS, WORKERS, skewed_trial);
        let stealing_wall = start.elapsed();

        let ratio = static_wall.as_secs_f64() / stealing_wall.as_secs_f64();
        best_ratio = best_ratio.max(ratio);
        if best_ratio >= 1.5 {
            break;
        }
    }
    assert!(
        best_ratio >= 1.5,
        "work stealing only {best_ratio:.2}x faster than static chunking on skewed costs"
    );
}
