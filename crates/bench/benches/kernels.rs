//! Micro-benchmarks of the protocol kernels (engine throughput,
//! per-slot protocol cost) — the ablation companion to the
//! per-experiment benches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use crn_core::cogcast::CogCast;
use crn_sim::assignment::shared_core;
use crn_sim::channel_model::StaticChannels;
use crn_sim::Network;

/// Engine slot throughput: how fast one simulated slot executes as the
/// network grows (all nodes active, COGCAST workload).
fn bench_engine_slots(cr: &mut Criterion) {
    let mut g = cr.benchmark_group("engine_slot");
    for &n in &[16usize, 64, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let model = StaticChannels::local(shared_core(n, 8, 2).unwrap(), 1);
            let mut protos = vec![CogCast::source(0u8)];
            protos.extend((1..n).map(|_| CogCast::node()));
            let mut net = Network::new(model, protos, 1).unwrap();
            b.iter(|| {
                net.step();
                black_box(net.slot())
            });
        });
    }
    g.finish();
}

/// Channel-assignment generation cost across patterns.
fn bench_assignment(cr: &mut Criterion) {
    use crn_sim::assignment::OverlapPattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut g = cr.benchmark_group("assignment");
    for pattern in OverlapPattern::ALL {
        g.bench_function(pattern.name(), |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(pattern.generate(128, 16, 4, &mut rng).unwrap().n()));
        });
    }
    g.finish();
}

/// Matching sampling and game rounds for the lower-bound machinery.
fn bench_games(cr: &mut Criterion) {
    use crn_lowerbounds::{Edge, HittingGame};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    cr.bench_function("game_setup_and_64_proposals", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut game = HittingGame::new(64, 8, &mut rng);
            for a in 0..8u32 {
                for bb in 0..8u32 {
                    black_box(game.propose(Edge::new(a, bb)));
                }
            }
            black_box(game.rounds())
        });
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_engine_slots, bench_assignment, bench_games
}
criterion_main!(kernels);
