//! Micro-benchmarks of the protocol kernels (engine throughput,
//! per-slot protocol cost) — the ablation companion to the
//! per-experiment benches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use crn_bench::effort::par_trials;
use crn_core::cogcast::CogCast;
use crn_sim::assignment::shared_core;
use crn_sim::channel_model::StaticChannels;
use crn_sim::pool::WorkerPool;
use crn_sim::{Network, ParConfig, PhysicalDecay};
use std::sync::Arc;

/// The (n, c) grid the slot-engine sweep and the JSON baseline cover.
const ENGINE_GRID: [(usize, usize); 7] = [
    (16, 4),
    (16, 8),
    (64, 4),
    (64, 8),
    (256, 8),
    (1024, 8),
    (1024, 16),
];

/// A COGCAST broadcast network on `shared_core(n, c, 2)` with local
/// labels — the workload every engine throughput number in this repo
/// is quoted against.
fn engine_net(n: usize, c: usize, seed: u64) -> Network<u8, CogCast<u8>, StaticChannels> {
    let model = StaticChannels::local(shared_core(n, c, 2).unwrap(), seed);
    let mut protos = vec![CogCast::source(0u8)];
    protos.extend((1..n).map(|_| CogCast::node()));
    Network::new(model, protos, seed).unwrap()
}

/// The same COGCAST workload over the decay-backoff physical medium:
/// every abstract slot expands into per-round transmit coin flips, so
/// this is the substrate's hot path rather than the oracle's.
fn physical_net(
    n: usize,
    c: usize,
    seed: u64,
) -> Network<u8, CogCast<u8>, StaticChannels, PhysicalDecay> {
    let model = StaticChannels::local(shared_core(n, c, 2).unwrap(), seed);
    let mut protos = vec![CogCast::source(0u8)];
    protos.extend((1..n).map(|_| CogCast::node()));
    Network::with_medium(model, protos, seed, PhysicalDecay::new()).unwrap()
}

/// Engine slot throughput: how fast one simulated slot executes as the
/// network grows (all nodes active, COGCAST workload), swept over
/// (n, c).
fn bench_engine_slots(cr: &mut Criterion) {
    let mut g = cr.benchmark_group("slot_engine");
    for &(n, c) in &ENGINE_GRID {
        g.bench_with_input(
            BenchmarkId::new(format!("n{n}"), c),
            &(n, c),
            |b, &(n, c)| {
                let mut net = engine_net(n, c, 1);
                b.iter(|| {
                    net.step();
                    black_box(net.slot())
                });
            },
        );
    }
    g.finish();
    let mut g = cr.benchmark_group("physical_slot");
    for &(n, c) in &ENGINE_GRID {
        g.bench_with_input(
            BenchmarkId::new(format!("n{n}"), c),
            &(n, c),
            |b, &(n, c)| {
                let mut net = physical_net(n, c, 1);
                b.iter(|| {
                    net.step();
                    black_box(net.slot())
                });
            },
        );
    }
    g.finish();
    write_engine_baseline();
}

/// Wall-clock slots/sec for one grid point (steady state: warmed up
/// past the scratch-buffer fill).
fn measure_slots_per_sec(n: usize, c: usize) -> (f64, f64) {
    let mut net = engine_net(n, c, 1);
    for _ in 0..3000 {
        net.step();
    }
    let slots = (2_000_000 / n).max(2000) as u64;
    let t0 = Instant::now();
    for _ in 0..slots {
        net.step();
    }
    let dt = t0.elapsed();
    (
        slots as f64 / dt.as_secs_f64(),
        dt.as_nanos() as f64 / slots as f64,
    )
}

/// Wall-clock ns per *abstract* slot on the decay-backoff physical
/// medium — each slot is one fixed-length episode per active channel,
/// so this runs far fewer slots than the oracle measurement.
fn measure_physical_ns_per_slot(n: usize, c: usize) -> (f64, f64) {
    let mut net = physical_net(n, c, 1);
    for _ in 0..100 {
        net.step();
    }
    let slots = (100_000 / n).max(200) as u64;
    let t0 = Instant::now();
    for _ in 0..slots {
        net.step();
    }
    let dt = t0.elapsed();
    (
        slots as f64 / dt.as_secs_f64(),
        dt.as_nanos() as f64 / slots as f64,
    )
}

/// [`measure_slots_per_sec`] with a dedicated `workers`-wide pool
/// installed at threshold 1, so the decide/observe fan-out engages on
/// every slot. `workers == 0` installs nothing — the true sequential
/// baseline for the A/B overhead check (`workers == 1` has the config
/// installed but disengaged, which must cost the same).
fn measure_parallel_slots_per_sec(n: usize, c: usize, workers: usize) -> (f64, f64) {
    let mut net = engine_net(n, c, 1);
    if workers > 0 {
        let pool = Arc::new(WorkerPool::new(workers));
        net.set_parallelism(Some(ParConfig::new(pool).with_threshold(1)));
    }
    for _ in 0..3000 {
        net.step();
    }
    let slots = (2_000_000 / n).max(2000) as u64;
    let t0 = Instant::now();
    for _ in 0..slots {
        net.step();
    }
    let dt = t0.elapsed();
    (
        slots as f64 / dt.as_secs_f64(),
        dt.as_nanos() as f64 / slots as f64,
    )
}

/// Re-measures the sweep with plain wall-clock timing and records it to
/// `BENCH_engine.json` at the repository root — the tracked baseline
/// EXPERIMENTS.md and the README's Performance section reference. Also
/// measures aggregate throughput with independent trial networks spread
/// across cores via [`par_trials`], which is how the experiment harness
/// actually consumes the engine.
fn write_engine_baseline() {
    let mut rows = Vec::new();
    for &(n, c) in &ENGINE_GRID {
        let (slots_per_sec, ns_per_slot) = measure_slots_per_sec(n, c);
        rows.push(format!(
            "    {{\"n\": {n}, \"c\": {c}, \"slots_per_sec\": {slots_per_sec:.0}, \"ns_per_slot\": {ns_per_slot:.1}}}"
        ));
    }
    let mut physical_rows = Vec::new();
    for &(n, c) in &ENGINE_GRID {
        let (slots_per_sec, ns_per_slot) = measure_physical_ns_per_slot(n, c);
        physical_rows.push(format!(
            "    {{\"n\": {n}, \"c\": {c}, \"slots_per_sec\": {slots_per_sec:.0}, \"ns_per_slot\": {ns_per_slot:.1}}}"
        ));
    }

    // Worker-scaling curve for the intra-slot fan-out at the two
    // largest oracle sizes, plus the A/B overhead check: a network with
    // a 1-worker config installed must run at the plain sequential
    // rate, because `workers == 1` takes the sequential special case.
    let mut parallel_rows = Vec::new();
    for &n in &[256usize, 1024] {
        for workers in [1usize, 2, 4, 8] {
            let (slots_per_sec, ns_per_slot) = measure_parallel_slots_per_sec(n, 8, workers);
            parallel_rows.push(format!(
                "    {{\"n\": {n}, \"c\": 8, \"workers\": {workers}, \"slots_per_sec\": {slots_per_sec:.0}, \"ns_per_slot\": {ns_per_slot:.1}}}"
            ));
        }
    }
    let (seq_sps, _) = measure_parallel_slots_per_sec(1024, 8, 0);
    let (w1_sps, _) = measure_parallel_slots_per_sec(1024, 8, 1);

    // Aggregate: 32 independent n=256 trial networks across all cores,
    // the shape of a `par_trials` experiment sweep.
    let (trials, per_trial_slots) = (32usize, 4000u64);
    let t0 = Instant::now();
    par_trials(trials, |seed| {
        let mut net = engine_net(256, 8, seed + 1);
        for _ in 0..per_trial_slots {
            net.step();
        }
        net.slot()
    });
    let aggregate = (trials as u64 * per_trial_slots) as f64 / t0.elapsed().as_secs_f64();

    let host_cores = crn_sim::pool::default_workers();
    let json = format!(
        "{{\n  \"bench\": \"slot_engine\",\n  \"workload\": \"COGCAST broadcast, shared_core(n, c, 2), local labels\",\n  \"engine\": \"scratch-buffered, allocation-free steady state, active-channel slot resolution, pool-parallel decide/observe phases\",\n  \"host_cores\": {host_cores},\n  \"grid\": [\n{}\n  ],\n  \"physical_slot\": [\n{}\n  ],\n  \"parallel_slot\": [\n{}\n  ],\n  \"sequential_vs_workers1\": {{\"n\": 1024, \"c\": 8, \"no_config_slots_per_sec\": {seq_sps:.0}, \"workers1_slots_per_sec\": {w1_sps:.0}, \"ratio\": {:.3}}},\n  \"parallel_note\": \"worker widths beyond host_cores oversubscribe the host; digest-identity at every width is enforced by crates/bench/tests/parallel_differential.rs, real scaling needs a multi-core host\",\n  \"par_trials\": {{\"trials\": {trials}, \"slots_per_trial\": {per_trial_slots}, \"aggregate_slots_per_sec\": {aggregate:.0}}}\n}}\n",
        rows.join(",\n"),
        physical_rows.join(",\n"),
        parallel_rows.join(",\n"),
        w1_sps / seq_sps
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, json).expect("write BENCH_engine.json");
    println!("wrote {path}");
}

/// Channel-assignment generation cost across patterns.
fn bench_assignment(cr: &mut Criterion) {
    use crn_sim::assignment::OverlapPattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut g = cr.benchmark_group("assignment");
    for pattern in OverlapPattern::ALL {
        g.bench_function(pattern.name(), |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(pattern.generate(128, 16, 4, &mut rng).unwrap().n()));
        });
    }
    g.finish();
}

/// Matching sampling and game rounds for the lower-bound machinery.
fn bench_games(cr: &mut Criterion) {
    use crn_lowerbounds::{Edge, HittingGame};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    cr.bench_function("game_setup_and_64_proposals", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut game = HittingGame::new(64, 8, &mut rng);
            for a in 0..8u32 {
                for bb in 0..8u32 {
                    black_box(game.propose(Edge::new(a, bb)));
                }
            }
            black_box(game.rounds())
        });
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_engine_slots, bench_assignment, bench_games
}
criterion_main!(kernels);
