//! One Criterion benchmark per reproduced table/figure (T1–T5, F1–F12).
//!
//! Each benchmark times a single representative kernel run of its
//! experiment at fixed parameters, so `cargo bench` gives a per-
//! experiment cost profile in minutes, not hours. The full sweeps with
//! statistics are produced by the `experiments` binary
//! (`cargo run -p crn-bench --bin experiments -- all`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use crn_backoff::decay::{recommended_rounds, resolve_contention};
use crn_core::aggregate::Sum;
use crn_core::cogcast::run_broadcast;
use crn_core::cogcomp::run_aggregation;
use crn_jamming::{run_jammed_broadcast, JammerStrategy};
use crn_lowerbounds::global_label::{first_overlap_slots, SourceStrategy};
use crn_lowerbounds::players::{play, FreshPlayer};
use crn_lowerbounds::HittingGame;
use crn_rendezvous::aggregate::run_baseline_aggregation;
use crn_rendezvous::broadcast::run_baseline_broadcast;
use crn_rendezvous::hop_together::run_hop_together;
use crn_sim::assignment::{full_overlap, shared_core, OverlapPattern};
use crn_sim::channel_model::{DynamicSharedCore, StaticChannels};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BUDGET: u64 = 50_000_000;

fn cogcast_once(n: usize, c: usize, k: usize, seed: u64) -> u64 {
    let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
    run_broadcast(model, seed, BUDGET).unwrap().slots.unwrap()
}

fn cogcomp_once(n: usize, c: usize, k: usize, seed: u64) -> u64 {
    let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
    let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
    run_aggregation(model, values, seed, 10.0)
        .unwrap()
        .slots
        .unwrap()
}

fn bench_tables(cr: &mut Criterion) {
    let mut seed = 0u64;
    let mut next = || {
        seed += 1;
        seed
    };

    cr.bench_function("t1_broadcast_grid", |b| {
        b.iter(|| {
            let s = next();
            let cog = cogcast_once(64, 8, 2, s);
            let model = StaticChannels::local(shared_core(64, 8, 2).unwrap(), s);
            let base = run_baseline_broadcast(model, s, BUDGET)
                .unwrap()
                .slots
                .unwrap();
            black_box((cog, base))
        })
    });

    cr.bench_function("t2_aggregation_grid", |b| {
        b.iter(|| {
            let s = next();
            let cog = cogcomp_once(32, 8, 2, s);
            let model = StaticChannels::local(shared_core(32, 8, 2).unwrap(), s);
            let values: Vec<Sum> = (0..32).map(Sum).collect();
            let base = run_baseline_aggregation(model, values, s, BUDGET)
                .unwrap()
                .slots
                .unwrap();
            black_box((cog, base))
        })
    });

    cr.bench_function("t3_hitting_game", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(next());
            let mut game = HittingGame::new(32, 4, &mut rng);
            let mut player = FreshPlayer::new(32);
            black_box(play(&mut game, &mut player, 10_000, &mut rng))
        })
    });

    cr.bench_function("t4_global_label", |b| {
        b.iter(|| {
            black_box(first_overlap_slots(
                32,
                4,
                SourceStrategy::Uniform,
                50,
                next(),
                100_000,
            ))
        })
    });

    cr.bench_function("t5_hop_together", |b| {
        b.iter(|| {
            let s = next();
            let model = StaticChannels::global(shared_core(4, 16, 15).unwrap());
            black_box(run_hop_together(model, s, BUDGET).unwrap().slots)
        })
    });

    cr.bench_function("t6_deterministic_rendezvous", |b| {
        use crn_rendezvous::deterministic::jump_stay_rendezvous_slots;
        b.iter(|| {
            let s = next();
            let model = StaticChannels::global(shared_core(2, 12, 2).unwrap());
            black_box(jump_stay_rendezvous_slots(model, s, BUDGET).unwrap())
        })
    });
}

fn bench_ablations(cr: &mut Criterion) {
    use crn_core::cogcomp::{run_aggregation_cfg, CogCompConfig, Coordination};
    use crn_sim::faults::{FaultSchedule, Flaky};
    use crn_sim::Network;
    let mut seed = 5000u64;
    let mut next = || {
        seed += 1;
        seed
    };

    cr.bench_function("a1_mediator_ablation", |b| {
        b.iter(|| {
            let s = next();
            let n = 48;
            let cfg =
                CogCompConfig::new(n, 6, 1, 10.0).with_coordination(Coordination::Uncoordinated);
            let budget = cfg.phase4_start() + 3 * (n as u64 * n as u64 + 64);
            let model = StaticChannels::local(shared_core(n, 6, 1).unwrap(), s);
            let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
            black_box(
                run_aggregation_cfg(model, values, s, cfg, budget)
                    .unwrap()
                    .slots,
            )
        })
    });

    cr.bench_function("a4_repeated_aggregation", |b| {
        use crn_core::cogcomp::run_repeated_aggregation;
        b.iter(|| {
            let s = next();
            let n = 24usize;
            let model = StaticChannels::local(shared_core(n, 8, 2).unwrap(), s);
            let values: Vec<Vec<Sum>> = (0..4).map(|_| (0..n as u64).map(Sum).collect()).collect();
            black_box(
                run_repeated_aggregation(model, values, s, 10.0)
                    .unwrap()
                    .slots,
            )
        })
    });

    cr.bench_function("a2_fault_injection", |b| {
        use crn_core::cogcast::CogCast;
        b.iter(|| {
            let s = next();
            let n = 32;
            let model = StaticChannels::local(shared_core(n, 8, 2).unwrap(), s);
            let mut protos = vec![Flaky::new(
                CogCast::source(()),
                FaultSchedule::Random { p: 0.3 },
            )];
            protos.extend(
                (1..n).map(|_| Flaky::new(CogCast::node(), FaultSchedule::Random { p: 0.3 })),
            );
            let mut net = Network::new(model, protos, s).unwrap();
            let outcome = net.run(BUDGET, |net| {
                net.protocols().iter().all(|f| f.inner().is_informed())
            });
            black_box(outcome.slots())
        })
    });

    cr.bench_function("a3_alpha_calibration", |b| {
        b.iter(|| {
            let s = next();
            black_box(cogcast_once(32, 8, 2, s))
        })
    });

    cr.bench_function("f13_trace_anatomy", |b| {
        use crn_core::cogcast::CogCast;
        use crn_sim::TraceLog;
        b.iter(|| {
            let s = next();
            let n = 64;
            let model = StaticChannels::local(shared_core(n, 8, 2).unwrap(), s);
            let mut protos = vec![CogCast::source(0u8)];
            protos.extend((1..n).map(|_| CogCast::node()));
            let mut net = Network::new(model, protos, s).unwrap();
            let mut log = TraceLog::new();
            while !net.all_done() {
                log.record(net.step());
            }
            black_box(log.collision_rate())
        })
    });

    cr.bench_function("f15_multihop_flood", |b| {
        use crn_multihop::{run_flood, Topology};
        b.iter(|| {
            let s = next();
            let model = StaticChannels::local(shared_core(16, 4, 2).unwrap(), s);
            black_box(
                run_flood(Topology::grid(4, 4), model, s, BUDGET)
                    .unwrap()
                    .slots,
            )
        })
    });

    cr.bench_function("f14_physical_stack", |b| {
        use crn_backoff::stack::run_physical_broadcast;
        let sets: Vec<Vec<u32>> = (0..16usize)
            .map(|i| {
                let mut s: Vec<u32> = vec![0, 1];
                let base = (2 + i * 4) as u32;
                s.extend(base..base + 4);
                s
            })
            .collect();
        b.iter(|| {
            let s = next();
            black_box(run_physical_broadcast(&sets, s, 1_000_000).unwrap().slots)
        })
    });
}

fn bench_figures(cr: &mut Criterion) {
    let mut seed = 1000u64;
    let mut next = || {
        seed += 1;
        seed
    };

    cr.bench_function("f1_cogcast_vs_n", |b| {
        b.iter(|| black_box(cogcast_once(256, 16, 4, next())))
    });
    cr.bench_function("f2_cogcast_vs_c", |b| {
        b.iter(|| black_box(cogcast_once(64, 32, 2, next())))
    });
    cr.bench_function("f3_cogcast_vs_k", |b| {
        b.iter(|| black_box(cogcast_once(64, 32, 8, next())))
    });
    cr.bench_function("f4_epidemic_curve", |b| {
        b.iter(|| {
            let s = next();
            let model = StaticChannels::local(shared_core(128, 16, 4).unwrap(), s);
            black_box(
                run_broadcast(model, s, BUDGET)
                    .unwrap()
                    .informed_per_slot
                    .len(),
            )
        })
    });
    cr.bench_function("f5_cogcomp_phases", |b| {
        b.iter(|| black_box(cogcomp_once(64, 8, 2, next())))
    });
    cr.bench_function("f6_aggregation_crossover", |b| {
        b.iter(|| black_box(cogcomp_once(32, 8, 2, next())))
    });
    cr.bench_function("f7_overlap_patterns", |b| {
        b.iter(|| {
            let s = next();
            let mut rng = StdRng::seed_from_u64(s);
            let a = OverlapPattern::Clustered
                .generate(64, 12, 3, &mut rng)
                .unwrap();
            let model = StaticChannels::local(a, s);
            black_box(run_broadcast(model, s, BUDGET).unwrap().slots)
        })
    });
    cr.bench_function("f8_dynamic_channels", |b| {
        b.iter(|| {
            let s = next();
            let model = DynamicSharedCore::new(32, 8, 2, 60, 1.0, s).unwrap();
            black_box(run_broadcast(model, s, BUDGET).unwrap().slots)
        })
    });
    cr.bench_function("f9_jamming", |b| {
        b.iter(|| {
            let s = next();
            black_box(
                run_jammed_broadcast(16, 12, 3, JammerStrategy::Random, s, 60.0)
                    .unwrap()
                    .slots,
            )
        })
    });
    cr.bench_function("f10_backoff", |b| {
        b.iter(|| {
            let mut rng = crn_sim::SimRng::seed_from_u64(next());
            black_box(resolve_contention(
                64,
                256,
                recommended_rounds(256),
                &mut rng,
            ))
        })
    });
    cr.bench_function("f11_game_survival", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(next());
            let mut game = HittingGame::complete(30, &mut rng);
            let mut player = FreshPlayer::new(30);
            black_box(play(&mut game, &mut player, 10_000, &mut rng))
        })
    });
    cr.bench_function("f12_aggregation_floor", |b| {
        b.iter(|| {
            let s = next();
            let model = StaticChannels::local(full_overlap(64, 2).unwrap(), s);
            let values: Vec<Sum> = (0..64).map(Sum).collect();
            black_box(run_aggregation(model, values, s, 10.0).unwrap().slots)
        })
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tables
}
criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_figures
}
criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ablations
}
criterion_main!(tables, figures, ablations);
