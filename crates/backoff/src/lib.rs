//! # crn-backoff — realizing the abstract collision model
//!
//! The simulator's collision model ("one uniformly random winner per
//! contended channel, with success feedback and overheard winners") is
//! an abstraction the paper justifies in footnote 4: it can be
//! implemented on a *standard* radio — collision-as-silence, no
//! feedback — by exponential-decay backoff at a poly-logarithmic cost.
//! This crate builds that substrate and measures it (experiment F10):
//!
//! - [`radio`] — the standard single-channel radio;
//! - [`decay`] — the decay backoff protocol, resolving `m ≤ n` stations
//!   in `O(log² n)` rounds w.h.p., with a uniform winner by symmetry;
//! - [`emulation`] — one abstract slot expanded into one backoff
//!   episode, with the delivered-payload semantics of the model.
//!
//! The in-engine counterpart — any `crn_sim` protocol driven over this
//! physics — is the [`crn_sim::medium::PhysicalDecay`] medium; both
//! draw from the dedicated `PHYSICAL` RNG stream.
//!
//! ```
//! use crn_backoff::decay::{recommended_rounds, resolve_contention};
//! use crn_sim::SimRng;
//! use rand::SeedableRng;
//!
//! let mut rng = SimRng::seed_from_u64(9);
//! let r = resolve_contention(10, 64, recommended_rounds(64), &mut rng)?.unwrap();
//! assert!(r.winner < 10);
//! # Ok::<(), crn_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod decay;
pub mod emulation;
pub mod radio;
pub mod stack;

pub use decay::{epoch_len, recommended_rounds, resolve_contention, ContentionResult};
pub use emulation::{emulate_slot, mean_rounds_per_slot, EmulatedSlot};
pub use radio::{resolve_round, RoundOutcome};
pub use stack::{run_physical_broadcast, PhysicalRun};
