//! The exponential-decay backoff protocol (footnote 4 of the paper).
//!
//! `m ≤ n_max` stations contend on a collision-as-silence channel. Time
//! is grouped into *epochs* of `⌈log₂ n_max⌉ + 1` rounds; in round `j`
//! of an epoch (0-based) every still-active station transmits with
//! probability `2^{-j}`. When the transmission probability passes near
//! `1/m`, exactly one station transmits with constant probability, so
//! each epoch succeeds with constant probability and `O(log n)` epochs —
//! `O(log² n)` rounds — suffice with high probability.
//!
//! On the first success all other stations *receive* the message and
//! abort; the transmitter is the only station that never heard anything,
//! which is how it learns it won. This exactly realizes the paper's
//! abstract collision model: one winner (uniform by symmetry), success
//! feedback for the winner, and the winning message delivered to
//! everyone else.
//!
//! The epoch/budget arithmetic ([`epoch_len`], [`recommended_rounds`])
//! is canonical in [`crn_sim::medium`] — the in-engine
//! [`crn_sim::medium::PhysicalDecay`] medium shares it — and re-exported
//! here.

use crate::radio::{resolve_round, RoundOutcome};
pub use crn_sim::medium::{epoch_len, recommended_rounds};
use crn_sim::{SimError, SimRng};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The result of resolving one contention episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentionResult {
    /// The station whose message got through.
    pub winner: usize,
    /// Physical rounds consumed before the success.
    pub rounds: u64,
}

/// Runs decay backoff among `m` contenders until one succeeds, or
/// `max_rounds` pass.
///
/// Returns `Ok(None)` only if the round budget is exhausted (for sane
/// budgets like `8·epoch_len(n_max)²` this is vanishingly rare).
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] if `m == 0` or `m > n_max`.
///
/// # Examples
///
/// ```
/// use crn_backoff::decay::resolve_contention;
/// use crn_sim::SimRng;
/// use rand::SeedableRng;
/// let mut rng = SimRng::seed_from_u64(1);
/// let r = resolve_contention(5, 16, 10_000, &mut rng)?.unwrap();
/// assert!(r.winner < 5);
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn resolve_contention(
    m: usize,
    n_max: usize,
    max_rounds: u64,
    rng: &mut SimRng,
) -> Result<Option<ContentionResult>, SimError> {
    if m == 0 {
        return Err(SimError::InvalidParams {
            reason: "need at least one contender".into(),
        });
    }
    if m > n_max {
        return Err(SimError::InvalidParams {
            reason: format!("m = {m} exceeds the population bound n_max = {n_max}"),
        });
    }
    let epoch = epoch_len(n_max);
    let mut transmitting = vec![false; m];
    for round in 0..max_rounds {
        let j = (round % epoch as u64) as i32;
        let p = 0.5f64.powi(j).min(1.0);
        for t in transmitting.iter_mut() {
            *t = rng.gen_bool(p);
        }
        if let RoundOutcome::Success(winner) = resolve_round(&transmitting) {
            return Ok(Some(ContentionResult {
                winner,
                rounds: round + 1,
            }));
        }
        // Collision or silence: receivers heard nothing; every station
        // stays active and the epoch continues.
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn single_contender_wins_first_round() {
        let mut rng = SimRng::seed_from_u64(0);
        let r = resolve_contention(1, 1, 10, &mut rng).unwrap().unwrap();
        assert_eq!(r.winner, 0);
        assert_eq!(r.rounds, 1, "p = 1 in round 0 of every epoch");
    }

    #[test]
    fn always_resolves_within_recommended_budget() {
        for n_max in [2usize, 8, 32, 128] {
            for m in [1usize, 2, n_max / 2 + 1, n_max] {
                let mut failures = 0;
                for seed in 0..200 {
                    let mut rng = SimRng::seed_from_u64(seed);
                    if resolve_contention(m, n_max, recommended_rounds(n_max), &mut rng)
                        .unwrap()
                        .is_none()
                    {
                        failures += 1;
                    }
                }
                assert!(
                    failures <= 2,
                    "m={m}, n_max={n_max}: {failures}/200 budget misses"
                );
            }
        }
    }

    #[test]
    fn winner_distribution_is_roughly_uniform() {
        // By symmetry every contender should win ~equally often — this
        // is what justifies the abstract model's uniform winner pick.
        let m = 4;
        let trials = 4000;
        let mut wins = vec![0usize; m];
        for seed in 0..trials {
            let mut rng = SimRng::seed_from_u64(seed as u64);
            let r = resolve_contention(m, 16, 10_000, &mut rng)
                .unwrap()
                .unwrap();
            wins[r.winner] += 1;
        }
        let expect = trials / m;
        for (i, &w) in wins.iter().enumerate() {
            assert!(
                (w as f64) > expect as f64 * 0.85 && (w as f64) < expect as f64 * 1.15,
                "station {i} won {w} times, expected ~{expect}"
            );
        }
    }

    #[test]
    fn rounds_grow_slowly_with_population() {
        // Mean resolution rounds should scale like log², i.e. far
        // slower than linearly.
        let mean = |m: usize, n_max: usize| -> f64 {
            let trials = 300;
            let mut total = 0u64;
            for seed in 0..trials {
                let mut rng = SimRng::seed_from_u64(seed);
                total += resolve_contention(m, n_max, 1_000_000, &mut rng)
                    .unwrap()
                    .unwrap()
                    .rounds;
            }
            total as f64 / trials as f64
        };
        let t_small = mean(4, 4);
        let t_big = mean(256, 256);
        // 64x the contenders should cost far less than 64x the rounds.
        assert!(
            t_big < t_small * 16.0,
            "decay not polylogarithmic? {t_small} -> {t_big}"
        );
    }

    #[test]
    fn zero_contenders_rejected() {
        let mut rng = SimRng::seed_from_u64(0);
        let err = resolve_contention(0, 4, 10, &mut rng).unwrap_err();
        assert!(
            matches!(&err, SimError::InvalidParams { reason } if reason.contains("at least one contender")),
            "{err:?}"
        );
    }

    #[test]
    fn over_population_rejected() {
        let mut rng = SimRng::seed_from_u64(0);
        let err = resolve_contention(9, 4, 10, &mut rng).unwrap_err();
        assert!(
            matches!(&err, SimError::InvalidParams { reason } if reason.contains("exceeds the population bound")),
            "{err:?}"
        );
    }

    #[test]
    fn epoch_len_is_log2_plus_one() {
        assert_eq!(epoch_len(0), 1);
        assert_eq!(epoch_len(2), 2);
        assert_eq!(epoch_len(1024), 11);
    }
}
