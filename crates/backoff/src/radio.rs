//! A *physical* single-channel radio with collision-as-silence.
//!
//! The paper's abstract collision model (one uniformly random winner per
//! contended channel, with success feedback) is justified by footnote 4:
//! it can be realized on a standard radio — where simultaneous
//! transmissions destroy each other and nobody learns why the channel
//! was quiet — via a decay-style backoff costing `O(log² n)` rounds.
//! This module is that standard radio; [`crate::decay`] is the backoff.

use serde::{Deserialize, Serialize};

/// The outcome of one physical round on a single channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundOutcome {
    /// Nobody transmitted.
    Silence,
    /// Exactly one station transmitted: its message is received by all
    /// listeners. The payload is the transmitter's index.
    Success(usize),
    /// Two or more stations transmitted; receivers cannot distinguish
    /// this from silence (no collision detection).
    Collision,
}

impl RoundOutcome {
    /// True for [`RoundOutcome::Success`].
    pub fn is_success(self) -> bool {
        matches!(self, RoundOutcome::Success(_))
    }
}

/// Resolves one physical round: `transmitting[i]` says whether station
/// `i` transmits.
///
/// # Examples
///
/// ```
/// use crn_backoff::radio::{resolve_round, RoundOutcome};
/// assert_eq!(resolve_round(&[false, false]), RoundOutcome::Silence);
/// assert_eq!(resolve_round(&[false, true]), RoundOutcome::Success(1));
/// assert_eq!(resolve_round(&[true, true]), RoundOutcome::Collision);
/// ```
pub fn resolve_round(transmitting: &[bool]) -> RoundOutcome {
    let mut winner = None;
    for (i, &tx) in transmitting.iter().enumerate() {
        if tx {
            if winner.is_some() {
                return RoundOutcome::Collision;
            }
            winner = Some(i);
        }
    }
    match winner {
        Some(i) => RoundOutcome::Success(i),
        None => RoundOutcome::Silence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_channel_is_silent() {
        assert_eq!(resolve_round(&[]), RoundOutcome::Silence);
        assert_eq!(resolve_round(&[false; 5]), RoundOutcome::Silence);
    }

    #[test]
    fn single_transmitter_succeeds() {
        let mut tx = vec![false; 6];
        tx[3] = true;
        assert_eq!(resolve_round(&tx), RoundOutcome::Success(3));
        assert!(resolve_round(&tx).is_success());
    }

    #[test]
    fn any_two_transmitters_collide() {
        for i in 0..4 {
            for j in (i + 1)..4 {
                let mut tx = vec![false; 4];
                tx[i] = true;
                tx[j] = true;
                assert_eq!(resolve_round(&tx), RoundOutcome::Collision);
            }
        }
    }

    #[test]
    fn collision_is_not_success() {
        assert!(!RoundOutcome::Collision.is_success());
        assert!(!RoundOutcome::Silence.is_success());
    }
}
