//! The full stack: COGCAST running directly on the *physical* radio.
//!
//! The paper's model section assumes the abstract collision slot and
//! points to its appendix (and footnote 4) for the realization: every
//! abstract slot expands into one fixed-length decay-backoff episode
//! per channel, all channels in parallel. This module simulates exactly
//! that composition for local broadcast, with no abstract collision
//! oracle anywhere:
//!
//! - an abstract slot is `R =`
//!   [`crate::decay::recommended_rounds`]`(n)` physical rounds (the
//!   fixed length keeps channels synchronized — a node cannot observe
//!   when *other* channels finish);
//! - on each channel, the tuned broadcasters run decay; the first lone
//!   transmission wins and is received by every listener on the
//!   channel and by the losing broadcasters (who abort);
//! - an episode can *fail* (no lone transmission within `R` rounds) —
//!   the "with high probability" caveat of the abstract model made
//!   concrete; nobody receives anything on that channel that slot.
//!
//! [`run_physical_broadcast`] measures completion in abstract slots
//! *and* physical rounds, and counts episode failures — experiment F14
//! compares the abstract-slot count against `crn-core`'s oracle-model
//! COGCAST to show the substitution preserves behaviour. The same
//! physics, driving *any* protocol rather than this hard-wired uniform
//! hopper, is the [`crn_sim::medium::PhysicalDecay`] medium; both draw
//! from the dedicated `PHYSICAL` RNG stream (docs/RNG_STREAMS.md).

use crate::decay::recommended_rounds;
use crate::radio::{resolve_round, RoundOutcome};
use crn_sim::rng::{derive_rng, streams};
use crn_sim::SimError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Outcome of running COGCAST on the physical stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysicalRun {
    /// Abstract slots until everyone was informed (`None` on budget
    /// exhaustion).
    pub slots: Option<u64>,
    /// Physical rounds consumed (`slots × rounds_per_slot` when
    /// complete).
    pub physical_rounds: u64,
    /// Rounds in one abstract slot (the fixed episode length `R`).
    pub rounds_per_slot: u64,
    /// Channel-episodes that ended without a lone transmission.
    pub failed_episodes: u64,
    /// Informed count after each abstract slot.
    pub informed_per_slot: Vec<usize>,
}

impl PhysicalRun {
    /// True if broadcast completed within the budget.
    pub fn completed(&self) -> bool {
        self.slots.is_some()
    }
}

/// Builds the shared-core channel assignment used by the physical-stack
/// experiments and the conformance suite: `k` core channels (`0..k`)
/// held by everyone, plus `c - k` private channels per node, disjoint
/// across nodes. The same shape as `crn_sim::assignment::shared_core`,
/// expressed as raw global ids for [`run_physical_broadcast`].
///
/// # Examples
///
/// ```
/// use crn_backoff::stack::shared_core_sets;
/// let sets = shared_core_sets(3, 4, 2);
/// assert_eq!(sets[0], vec![0, 1, 2, 3]);
/// assert_eq!(sets[1], vec![0, 1, 4, 5]);
/// ```
pub fn shared_core_sets(n: usize, c: usize, k: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| {
            let mut s: Vec<u32> = (0..k as u32).collect();
            let base = (k + i * (c - k)) as u32;
            s.extend(base..base + (c - k) as u32);
            s
        })
        .collect()
}

/// Runs COGCAST for local broadcast over the physical radio.
///
/// `channel_sets[i]` lists node `i`'s channels as global ids (the
/// engine-free simulation keeps its own local-label permutation
/// internally — uniform random selection is label-invariant). Node 0
/// is the source. All randomness comes from the `PHYSICAL` stream
/// derived from `seed`.
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] if `channel_sets` is empty or
/// some node has no channels.
///
/// # Examples
///
/// ```
/// use crn_backoff::stack::run_physical_broadcast;
/// // 4 nodes sharing channels {0,1}.
/// let sets = vec![vec![0u32, 1]; 4];
/// let run = run_physical_broadcast(&sets, 3, 1_000)?;
/// assert!(run.completed());
/// assert!(run.physical_rounds >= run.slots.unwrap());
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn run_physical_broadcast(
    channel_sets: &[Vec<u32>],
    seed: u64,
    max_slots: u64,
) -> Result<PhysicalRun, SimError> {
    let n = channel_sets.len();
    if n == 0 {
        return Err(SimError::InvalidParams {
            reason: "need at least one node".into(),
        });
    }
    if let Some(i) = channel_sets.iter().position(|s| s.is_empty()) {
        return Err(SimError::InvalidParams {
            reason: format!("every node needs at least one channel (node {i} has none)"),
        });
    }
    let rounds_per_slot = recommended_rounds(n);
    let mut rng = derive_rng(seed, streams::PHYSICAL);
    let mut informed = vec![false; n];
    informed[0] = true;
    let mut informed_count = 1usize;
    let mut informed_per_slot = Vec::new();
    let mut failed_episodes = 0u64;
    let mut physical_rounds = 0u64;

    for slot in 0..max_slots {
        let _ = slot;
        // Tune: everyone picks a uniform channel from its own set.
        let tuning: Vec<u32> = channel_sets
            .iter()
            .map(|s| s[rng.gen_range(0..s.len())])
            .collect();
        physical_rounds += rounds_per_slot;

        // Per channel, run one decay episode among the informed
        // (transmitting) nodes tuned there.
        let mut channels: Vec<u32> = tuning.clone();
        channels.sort_unstable();
        channels.dedup();
        let mut newly_informed: Vec<usize> = Vec::new();
        for &ch in &channels {
            let members: Vec<usize> = (0..n).filter(|&i| tuning[i] == ch).collect();
            let transmitters: Vec<usize> =
                members.iter().copied().filter(|&i| informed[i]).collect();
            if transmitters.is_empty() {
                continue;
            }
            // Decay episode: in round j of an epoch, each active
            // transmitter sends with probability 2^-j; the first lone
            // transmission ends the episode (everyone else received
            // and aborts).
            let epoch = crate::decay::epoch_len(n) as u64;
            let mut success = false;
            let mut tx = vec![false; transmitters.len()];
            for round in 0..rounds_per_slot {
                let j = (round % epoch) as i32;
                let p = 0.5f64.powi(j).min(1.0);
                for t in tx.iter_mut() {
                    *t = rng.gen_bool(p);
                }
                if let RoundOutcome::Success(_) = resolve_round(&tx) {
                    success = true;
                    break;
                }
            }
            if success {
                for &i in &members {
                    if !informed[i] {
                        newly_informed.push(i);
                    }
                }
            } else if members.len() > transmitters.len() {
                // Listeners were present but the episode failed.
                failed_episodes += 1;
            }
        }
        for i in newly_informed {
            if !informed[i] {
                informed[i] = true;
                informed_count += 1;
            }
        }
        informed_per_slot.push(informed_count);
        if informed_count == n {
            return Ok(PhysicalRun {
                slots: Some(informed_per_slot.len() as u64),
                physical_rounds,
                rounds_per_slot,
                failed_episodes,
                informed_per_slot,
            });
        }
    }
    Ok(PhysicalRun {
        slots: None,
        physical_rounds,
        rounds_per_slot,
        failed_episodes,
        informed_per_slot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_sim::SimRng;
    use rand::SeedableRng;

    #[test]
    fn completes_on_single_shared_channel() {
        let sets = vec![vec![0u32]; 6];
        let run = run_physical_broadcast(&sets, 1, 1000).unwrap();
        assert!(run.completed());
        assert_eq!(
            run.physical_rounds,
            run.slots.unwrap() * run.rounds_per_slot
        );
    }

    #[test]
    fn completes_on_shared_core_assignments() {
        for seed in 0..5 {
            let sets = shared_core_sets(16, 6, 2);
            let run = run_physical_broadcast(&sets, seed, 100_000).unwrap();
            assert!(run.completed(), "seed {seed}");
            assert_eq!(run.failed_episodes, 0, "episodes should not fail at n=16");
        }
    }

    #[test]
    fn informed_counts_monotone_and_reach_n() {
        let sets = shared_core_sets(20, 5, 2);
        let run = run_physical_broadcast(&sets, 7, 100_000).unwrap();
        for w in run.informed_per_slot.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*run.informed_per_slot.last().unwrap(), 20);
    }

    #[test]
    fn abstract_slot_counts_match_oracle_model_in_distribution() {
        // The substitution-preservation check: mean completion in
        // abstract slots over the physical stack should be close to
        // the oracle-collision model's (both run the same COGCAST).
        // We compare against a locally simulated oracle variant.
        let (n, c, k) = (20usize, 6usize, 2usize);
        let trials = 30u64;
        let mut physical_total = 0u64;
        for seed in 0..trials {
            let run = run_physical_broadcast(&shared_core_sets(n, c, k), seed, 1_000_000).unwrap();
            physical_total += run.slots.unwrap();
        }
        // Oracle variant: identical loop with a guaranteed winner.
        let mut oracle_total = 0u64;
        for seed in 0..trials {
            let mut rng = SimRng::seed_from_u64(seed ^ 0xABCD);
            let sets = shared_core_sets(n, c, k);
            let mut informed = vec![false; n];
            informed[0] = true;
            let mut count = 1;
            let mut slots = 0u64;
            while count < n {
                slots += 1;
                let tuning: Vec<u32> = sets.iter().map(|s| s[rng.gen_range(0..s.len())]).collect();
                for i in 0..n {
                    if !informed[i] && (0..n).any(|j| informed[j] && tuning[j] == tuning[i]) {
                        informed[i] = true;
                        count += 1;
                    }
                }
            }
            oracle_total += slots;
        }
        let ratio = physical_total as f64 / oracle_total as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "physical stack diverges from the oracle model: ratio {ratio}"
        );
    }

    #[test]
    fn budget_exhaustion_reported() {
        let sets = shared_core_sets(30, 8, 1);
        let run = run_physical_broadcast(&sets, 2, 1).unwrap();
        assert!(!run.completed());
        assert_eq!(run.informed_per_slot.len(), 1);
    }

    #[test]
    fn empty_network_rejected() {
        let err = run_physical_broadcast(&[], 0, 10).unwrap_err();
        assert!(
            matches!(&err, SimError::InvalidParams { reason } if reason.contains("at least one node")),
            "{err:?}"
        );
    }

    #[test]
    fn empty_channel_set_rejected() {
        let err = run_physical_broadcast(&[vec![]], 0, 10).unwrap_err();
        assert!(
            matches!(&err, SimError::InvalidParams { reason } if reason.contains("at least one channel")),
            "{err:?}"
        );
    }
}
