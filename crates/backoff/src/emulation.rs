//! Emulating the paper's abstract collision slot on the physical radio.
//!
//! One abstract slot — "one of the concurrent transmissions, chosen
//! uniformly at random, is received by everyone; broadcasters learn
//! whether they won; losers receive the winner's message" — expands to
//! one decay-backoff episode of `O(log² n)` physical rounds:
//!
//! 1. the contenders run [`crate::decay::resolve_contention`];
//! 2. the first lone transmission is the winner's *message round*:
//!    every listener and every losing contender receives it (satisfying
//!    the model's "failed ones receive the message that was sent");
//! 3. losers abort on reception; the winner, having heard nothing,
//!    knows it succeeded (the model's success feedback).
//!
//! [`emulate_slot`] packages this; the `crn-bench` harness uses it for
//! experiment F10 to report the virtual-slot cost curve. The in-engine
//! equivalent — every slot of a full protocol run expanded this way —
//! is the [`crn_sim::medium::PhysicalDecay`] medium.

use crate::decay::{recommended_rounds, resolve_contention};
use bytes::Bytes;
use crn_sim::{SimError, SimRng};

/// The outcome of emulating one abstract slot for `m` contenders and
/// any number of passive listeners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmulatedSlot {
    /// Index of the winning contender.
    pub winner: usize,
    /// The winner's payload, as delivered to every listener and loser.
    pub delivered: Bytes,
    /// Physical rounds the abstract slot cost.
    pub physical_rounds: u64,
}

/// Emulates one abstract collision-model slot.
///
/// `payloads[i]` is contender `i`'s message. Returns `Ok(None)` if the
/// round budget (sized by [`recommended_rounds`]) is exhausted — the
/// abstract model's "with high probability" caveat made concrete.
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] if `payloads` is empty or
/// exceeds `n_max`.
///
/// # Examples
///
/// ```
/// use bytes::Bytes;
/// use crn_backoff::emulation::emulate_slot;
/// use crn_sim::SimRng;
/// use rand::SeedableRng;
///
/// let mut rng = SimRng::seed_from_u64(3);
/// let payloads = vec![Bytes::from_static(b"a"), Bytes::from_static(b"b")];
/// let slot = emulate_slot(&payloads, 8, &mut rng)?.unwrap();
/// assert_eq!(slot.delivered, payloads[slot.winner]);
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn emulate_slot(
    payloads: &[Bytes],
    n_max: usize,
    rng: &mut SimRng,
) -> Result<Option<EmulatedSlot>, SimError> {
    let result = resolve_contention(payloads.len(), n_max, recommended_rounds(n_max), rng)?;
    Ok(result.map(|r| EmulatedSlot {
        winner: r.winner,
        delivered: payloads[r.winner].clone(),
        physical_rounds: r.rounds,
    }))
}

/// Mean physical rounds per abstract slot for `m` contenders, over
/// `trials` seeded episodes — the series behind experiment F10.
///
/// Returns `NaN` when no episode completes (including `m == 0`).
pub fn mean_rounds_per_slot(m: usize, n_max: usize, trials: usize, seed: u64) -> f64 {
    use rand::SeedableRng;
    let payloads: Vec<Bytes> = (0..m)
        .map(|i| Bytes::from(i.to_le_bytes().to_vec()))
        .collect();
    let mut total = 0u64;
    let mut done = 0usize;
    for t in 0..trials {
        let mut rng = SimRng::seed_from_u64(seed.wrapping_add(t as u64));
        if let Ok(Some(slot)) = emulate_slot(&payloads, n_max, &mut rng) {
            total += slot.physical_rounds;
            done += 1;
        }
    }
    if done == 0 {
        f64::NAN
    } else {
        total as f64 / done as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn delivered_payload_matches_winner() {
        for seed in 0..50 {
            let mut rng = SimRng::seed_from_u64(seed);
            let payloads: Vec<Bytes> = (0..6u8).map(|i| Bytes::from(vec![i])).collect();
            let slot = emulate_slot(&payloads, 8, &mut rng).unwrap().unwrap();
            assert_eq!(slot.delivered[0] as usize, slot.winner);
        }
    }

    #[test]
    fn lone_contender_pays_one_round() {
        let mut rng = SimRng::seed_from_u64(1);
        let slot = emulate_slot(&[Bytes::from_static(b"x")], 1, &mut rng)
            .unwrap()
            .unwrap();
        assert_eq!(slot.physical_rounds, 1);
        assert_eq!(slot.winner, 0);
    }

    #[test]
    fn mean_rounds_stay_polylog() {
        let small = mean_rounds_per_slot(2, 256, 200, 1);
        let large = mean_rounds_per_slot(200, 256, 200, 2);
        assert!(small.is_finite() && large.is_finite());
        // 100x contenders, same n_max: both bounded by the same
        // O(log² n_max) budget, and the ratio should be small.
        assert!(large < small * 12.0, "small={small}, large={large}");
        assert!(large < 200.0, "rounds per slot implausibly high: {large}");
    }

    #[test]
    fn empty_contender_set_rejected() {
        let mut rng = SimRng::seed_from_u64(0);
        let err = emulate_slot(&[], 4, &mut rng).unwrap_err();
        assert!(
            matches!(&err, SimError::InvalidParams { reason } if reason.contains("at least one contender")),
            "{err:?}"
        );
    }
}
