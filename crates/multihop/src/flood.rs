//! COGCAST as a multi-hop flooding primitive.
//!
//! The epidemic structure that makes COGCAST fast in one hop makes it a
//! *flood* across hops: informed nodes keep transmitting, so the
//! message crosses one hop per `O((c/k)·lg n)`-ish epoch and the total
//! time scales with the topology's diameter — the behaviour the
//! multi-hop broadcast literature engineers explicitly, recovered here
//! with zero protocol changes.

use crate::engine::MultihopNetwork;
use crate::topology::Topology;
use crn_core::cogcast::CogCast;
use crn_sim::{ChannelModel, SimError};
use serde::{Deserialize, Serialize};

/// Statistics of one multi-hop flood.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FloodRun {
    /// Slots until every node was informed, or `None` on timeout.
    pub slots: Option<u64>,
    /// The slot budget allowed.
    pub budget: u64,
    /// Informed count after each slot.
    pub informed_per_slot: Vec<usize>,
    /// The topology's diameter (`None` if disconnected).
    pub diameter: Option<usize>,
}

impl FloodRun {
    /// True if the flood completed within the budget.
    pub fn completed(&self) -> bool {
        self.slots.is_some()
    }
}

/// A flood slot budget scaling Theorem 4's single-hop budget by the
/// topology's diameter (each hop is one single-hop broadcast epoch,
/// and hops pipeline, so this is conservative).
///
/// # Panics
///
/// Panics if the topology is disconnected (no finite flood budget
/// exists) or the `(n, c, k)` parameters are invalid.
///
/// # Examples
///
/// ```
/// use crn_multihop::{flood_budget, Topology};
/// let b = flood_budget(&Topology::line(8), 4, 2, 10.0);
/// assert!(b >= 7);
/// ```
pub fn flood_budget(topology: &Topology, c: usize, k: usize, alpha: f64) -> u64 {
    let n = topology.len();
    let diameter = topology
        .diameter()
        .expect("flood budget requires a connected topology") as u64;
    (diameter + 1) * crn_core::bounds::cogcast_slots(n, c, k, alpha)
}

/// Floods from node 0 over `topology` with COGCAST.
///
/// # Errors
///
/// Propagates [`SimError`] from network construction (including
/// topology/model size mismatches).
///
/// # Examples
///
/// ```
/// use crn_multihop::{run_flood, Topology};
/// use crn_sim::{assignment::shared_core, channel_model::StaticChannels};
///
/// let n = 9;
/// let topo = Topology::grid(3, 3);
/// let model = StaticChannels::local(shared_core(n, 4, 2)?, 5);
/// let run = run_flood(topo, model, 5, 100_000)?;
/// assert!(run.completed());
/// assert_eq!(run.diameter, Some(4));
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn run_flood<CM: ChannelModel>(
    topology: Topology,
    model: CM,
    seed: u64,
    budget: u64,
) -> Result<FloodRun, SimError> {
    let n = model.n();
    let diameter = topology.diameter();
    let mut protos = Vec::with_capacity(n);
    protos.push(CogCast::source(()));
    protos.extend((1..n).map(|_| CogCast::node()));
    let mut net = MultihopNetwork::new(topology, model, protos, seed)?;
    let mut informed_per_slot = Vec::new();
    let mut slots = None;
    for s in 0..budget {
        net.step();
        let informed = net.protocols().iter().filter(|p| p.is_informed()).count();
        informed_per_slot.push(informed);
        if informed == n {
            slots = Some(s + 1);
            break;
        }
    }
    Ok(FloodRun {
        slots,
        budget,
        informed_per_slot,
        diameter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_sim::assignment::shared_core;
    use crn_sim::channel_model::StaticChannels;

    fn flood(topo: Topology, c: usize, k: usize, seed: u64, budget: u64) -> FloodRun {
        let n = topo.len();
        let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
        run_flood(topo, model, seed, budget).unwrap()
    }

    #[test]
    fn completes_on_line_ring_grid_complete() {
        for topo in [
            Topology::line(12),
            Topology::ring(12),
            Topology::grid(4, 3),
            Topology::complete(12),
        ] {
            for seed in 0..3 {
                let run = flood(topo.clone(), 4, 2, seed, 1_000_000);
                assert!(run.completed(), "{topo:?} seed {seed}");
            }
        }
    }

    #[test]
    fn disconnected_topology_times_out() {
        let topo = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        let run = flood(topo, 3, 1, 1, 5_000);
        assert!(!run.completed());
        assert_eq!(run.diameter, None);
        // The source's component still gets informed.
        assert_eq!(*run.informed_per_slot.last().unwrap(), 2);
    }

    #[test]
    fn completion_grows_with_diameter() {
        // Same n, same channels: the line (diameter n-1) must be slower
        // than the complete graph (diameter 1).
        let mean = |topo: &Topology| -> f64 {
            let trials = 10;
            let mut total = 0;
            for seed in 0..trials {
                let run = flood(topo.clone(), 4, 2, seed, 10_000_000);
                total += run.slots.unwrap();
            }
            total as f64 / trials as f64
        };
        let line = mean(&Topology::line(16));
        let complete = mean(&Topology::complete(16));
        assert!(
            line > complete * 3.0,
            "diameter must dominate: line {line} vs complete {complete}"
        );
    }

    #[test]
    fn informed_curve_monotone_and_spans_hops() {
        let run = flood(Topology::line(10), 4, 2, 3, 1_000_000);
        for w in run.informed_per_slot.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // A line flood cannot finish faster than one slot per hop.
        assert!(run.slots.unwrap() >= 9);
    }

    #[test]
    fn single_node_flood_is_instant() {
        let run = flood(Topology::complete(1), 3, 1, 0, 10);
        assert_eq!(run.slots, Some(1));
    }

    #[test]
    fn flood_budget_suffices_across_topologies() {
        for topo in [
            Topology::line(10),
            Topology::ring(10),
            Topology::grid(5, 2),
            Topology::complete(10),
        ] {
            let budget = flood_budget(&topo, 4, 2, 10.0);
            for seed in 0..3 {
                let run = flood(topo.clone(), 4, 2, seed, budget);
                assert!(run.completed(), "{topo:?} seed {seed}: budget {budget}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn flood_budget_panics_on_disconnected() {
        let topo = Topology::from_edges(4, &[(0, 1)]);
        flood_budget(&topo, 4, 2, 10.0);
    }

    #[test]
    fn erdos_renyi_floods_when_connected() {
        use crn_sim::rng::SimRng;
        use rand::SeedableRng;
        let mut rng = SimRng::seed_from_u64(5);
        // p well above the ln(n)/n connectivity threshold.
        let topo = Topology::erdos_renyi(24, 0.4, &mut rng);
        if topo.is_connected() {
            let run = flood(topo, 4, 2, 2, 1_000_000);
            assert!(run.completed());
        }
    }

    #[test]
    fn unit_disk_floods_when_connected() {
        use crn_sim::rng::SimRng;
        use rand::SeedableRng;
        let mut rng = SimRng::seed_from_u64(11);
        // Dense disk: almost surely connected.
        let topo = Topology::unit_disk(20, 0.6, &mut rng);
        if topo.is_connected() {
            let run = flood(topo, 4, 2, 2, 1_000_000);
            assert!(run.completed());
        }
    }
}
