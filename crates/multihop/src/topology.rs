//! Connectivity topologies, re-exported from [`crn_sim::topology`].
//!
//! The [`Topology`] type moved into `crn-sim` with the medium refactor
//! (the [`crn_sim::medium::OracleMultihop`] medium is parameterized by
//! it); this module re-exports it so existing `crn_multihop::Topology`
//! imports keep working.
//!
//! # Examples
//!
//! ```
//! use crn_multihop::Topology;
//! let t = Topology::line(4);
//! assert!(t.are_neighbors(0, 1));
//! assert!(!t.are_neighbors(0, 2));
//! assert_eq!(t.diameter(), Some(3));
//! ```

pub use crn_sim::topology::Topology;
