//! # crn-multihop — the multi-hop generalization
//!
//! The paper's protocols are stated for a single-hop network; the
//! broadcast-related work it discusses (Kondareddy–Agrawal's selective
//! broadcasting, Song–Xie's hopping sequences) lives in *multi-hop*
//! cognitive radio networks. This crate extends the substrate in that
//! direction:
//!
//! - [`Topology`] — connectivity graphs (line, ring, grid, complete,
//!   random unit-disk) with BFS distances and diameters;
//! - [`MultihopNetwork`] — a slot engine with receiver-centric
//!   collision resolution, sharing the [`crn_sim::Protocol`] trait so
//!   single-hop protocols run unmodified;
//! - [`run_flood`] — COGCAST as a flooding primitive: unchanged, it
//!   crosses the network at a cost that scales with the diameter
//!   (experiment F15).
//!
//! ```
//! use crn_multihop::{run_flood, Topology};
//! use crn_sim::{assignment::shared_core, channel_model::StaticChannels};
//!
//! let model = StaticChannels::local(shared_core(8, 4, 2)?, 1);
//! let run = run_flood(Topology::ring(8), model, 1, 100_000)?;
//! assert!(run.completed());
//! # Ok::<(), crn_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod flood;
pub mod topology;

pub use engine::MultihopNetwork;
pub use flood::{flood_budget, run_flood, FloodRun};
pub use topology::Topology;
