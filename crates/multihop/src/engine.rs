//! The multi-hop slot engine.
//!
//! Since the medium refactor this is a thin wrapper over the unified
//! [`crn_sim::Network`] driving the [`OracleMultihop`] medium: a
//! transmission on channel `q` reaches only *neighbors* tuned to `q`,
//! and collision resolution is receiver-centric — for each listener,
//! one of its transmitting neighbors on the channel (uniformly random,
//! independent per listener) gets through, the natural multi-hop
//! reading of the paper's backoff abstraction. Transmitter-side
//! feedback does not survive the generalization (a node cannot know
//! which of its neighbors heard it), so transmitters always observe
//! [`Event::Delivered`]; COGCAST never uses the feedback, so it runs
//! unmodified.
//!
//! [`Event::Delivered`]: crn_sim::Event::Delivered
//!
//! Protocols, actions, events and channel models are shared with
//! [`crn_sim`] — any single-hop protocol written against
//! [`crn_sim::Protocol`] runs here as-is, and on a complete topology
//! the medium delegates to the single-hop oracle, reproducing its
//! traces exactly.

use crate::topology::Topology;
use crn_sim::medium::OracleMultihop;
use crn_sim::{ChannelModel, Network, Protocol, SimError};

/// A simulated multi-hop cognitive radio network.
///
/// # Examples
///
/// ```
/// use crn_core::cogcast::CogCast;
/// use crn_multihop::{MultihopNetwork, Topology};
/// use crn_sim::{assignment::shared_core, channel_model::StaticChannels};
///
/// let n = 6;
/// let topo = Topology::line(n);
/// let model = StaticChannels::local(shared_core(n, 4, 2)?, 3);
/// let mut protos = vec![CogCast::source(())];
/// protos.extend((1..n).map(|_| CogCast::node()));
/// let mut net = MultihopNetwork::new(topo, model, protos, 3)?;
/// let done = net.run(100_000, |net| net.protocols().iter().all(|p| p.is_informed()));
/// assert!(done.is_some());
/// # Ok::<(), crn_sim::SimError>(())
/// ```
#[allow(missing_debug_implementations)] // protocols are user types
pub struct MultihopNetwork<M, P, CM> {
    inner: Network<M, P, CM, OracleMultihop>,
}

impl<M, P, CM> MultihopNetwork<M, P, CM>
where
    M: Clone,
    P: Protocol<M>,
    CM: ChannelModel,
{
    /// Creates the network.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProtocolCountMismatch`] if the topology,
    /// channel model and protocol count disagree on `n`.
    pub fn new(
        topology: Topology,
        model: CM,
        protocols: Vec<P>,
        seed: u64,
    ) -> Result<Self, SimError> {
        if topology.len() != model.n() {
            return Err(SimError::ProtocolCountMismatch {
                nodes: model.n(),
                protocols: protocols.len(),
            });
        }
        let inner = Network::with_medium(model, protocols, seed, OracleMultihop::new(topology))?;
        Ok(MultihopNetwork { inner })
    }

    /// The connectivity topology.
    pub fn topology(&self) -> &Topology {
        self.inner.medium().topology()
    }

    /// The channel model.
    pub fn model(&self) -> &CM {
        self.inner.model()
    }

    /// The protocol instances, indexed by node.
    pub fn protocols(&self) -> &[P] {
        self.inner.protocols()
    }

    /// Slots executed so far.
    pub fn slot(&self) -> u64 {
        self.inner.slot()
    }

    /// The underlying unified engine.
    pub fn network(&self) -> &Network<M, P, CM, OracleMultihop> {
        &self.inner
    }

    /// Executes one slot.
    ///
    /// # Panics
    ///
    /// Panics if a protocol selects a local channel `>= c`.
    pub fn step(&mut self) {
        self.inner.step();
    }

    /// Runs until `done` holds; returns the completing slot count, or
    /// `None` when the budget is exhausted.
    pub fn run(&mut self, budget: u64, mut done: impl FnMut(&Self) -> bool) -> Option<u64> {
        for _ in 0..budget {
            self.step();
            if done(self) {
                return Some(self.inner.slot());
            }
        }
        None
    }

    /// Consumes the network and returns its protocols.
    pub fn into_protocols(self) -> Vec<P> {
        self.inner.into_protocols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_sim::assignment::full_overlap;
    use crn_sim::channel_model::StaticChannels;
    use crn_sim::rng::SimRng;
    use crn_sim::{Action, Event, LocalChannel, NodeCtx, NodeId};

    struct Fixed {
        action: Action<u8>,
        heard: Vec<Event<u8>>,
    }

    impl Protocol<u8> for Fixed {
        fn decide(&mut self, _ctx: &NodeCtx<'_>, _rng: &mut SimRng) -> Action<u8> {
            self.action.clone()
        }
        fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<u8>) {
            self.heard.push(event);
        }
    }

    fn fixed(action: Action<u8>) -> Fixed {
        Fixed {
            action,
            heard: Vec::new(),
        }
    }

    #[test]
    fn delivery_respects_the_topology() {
        // Line 0-1-2: node 0 broadcasts; node 1 hears, node 2 does not.
        let topo = Topology::line(3);
        let model = StaticChannels::global(full_overlap(3, 1).unwrap());
        let protos = vec![
            fixed(Action::Broadcast(LocalChannel(0), 9)),
            fixed(Action::Listen(LocalChannel(0))),
            fixed(Action::Listen(LocalChannel(0))),
        ];
        let mut net = MultihopNetwork::new(topo, model, protos, 1).unwrap();
        net.step();
        let p = net.into_protocols();
        assert_eq!(
            p[1].heard,
            vec![Event::Received {
                from: NodeId(0),
                msg: 9
            }]
        );
        assert_eq!(p[2].heard, vec![Event::Silence]);
    }

    #[test]
    fn per_receiver_winners_are_independent() {
        // Star-ish: 1 and 2 both broadcast; 0 neighbors both; over many
        // slots node 0 hears each roughly half the time.
        let topo = Topology::from_edges(3, &[(0, 1), (0, 2)]);
        let model = StaticChannels::global(full_overlap(3, 1).unwrap());
        let protos = vec![
            fixed(Action::Listen(LocalChannel(0))),
            fixed(Action::Broadcast(LocalChannel(0), 1)),
            fixed(Action::Broadcast(LocalChannel(0), 2)),
        ];
        let mut net = MultihopNetwork::new(topo, model, protos, 5).unwrap();
        for _ in 0..2000 {
            net.step();
        }
        let p = net.into_protocols();
        let from1 = p[0]
            .heard
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Received {
                        from: NodeId(1),
                        ..
                    }
                )
            })
            .count();
        assert!(
            (700..=1300).contains(&from1),
            "receiver-side winner skewed: {from1}/2000"
        );
    }

    #[test]
    fn different_channels_do_not_mix() {
        let topo = Topology::complete(2);
        let model = StaticChannels::global(full_overlap(2, 2).unwrap());
        let protos = vec![
            fixed(Action::Broadcast(LocalChannel(0), 3)),
            fixed(Action::Listen(LocalChannel(1))),
        ];
        let mut net = MultihopNetwork::new(topo, model, protos, 2).unwrap();
        net.step();
        assert_eq!(net.into_protocols()[1].heard, vec![Event::Silence]);
    }

    #[test]
    fn count_mismatch_rejected() {
        let topo = Topology::line(3);
        let model = StaticChannels::global(full_overlap(2, 1).unwrap());
        let protos = vec![fixed(Action::Sleep), fixed(Action::Sleep)];
        assert!(MultihopNetwork::new(topo, model, protos, 0).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| -> Vec<Event<u8>> {
            let topo = Topology::from_edges(3, &[(0, 1), (0, 2)]);
            let model = StaticChannels::global(full_overlap(3, 1).unwrap());
            let protos = vec![
                fixed(Action::Listen(LocalChannel(0))),
                fixed(Action::Broadcast(LocalChannel(0), 1)),
                fixed(Action::Broadcast(LocalChannel(0), 2)),
            ];
            let mut net = MultihopNetwork::new(topo, model, protos, seed).unwrap();
            for _ in 0..32 {
                net.step();
            }
            net.into_protocols().remove(0).heard
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn conformance_holds_on_incomplete_topology() {
        // The unified engine's conformance hook applies the multihop
        // profile: winner-less contended channels are legal here.
        let topo = Topology::line(3);
        let model = StaticChannels::global(full_overlap(3, 1).unwrap());
        let protos = vec![
            fixed(Action::Broadcast(LocalChannel(0), 9)),
            fixed(Action::Listen(LocalChannel(0))),
            fixed(Action::Listen(LocalChannel(0))),
        ];
        let mut net = MultihopNetwork::new(topo, model, protos, 1).unwrap();
        net.step();
        assert_eq!(net.network().check_conformance(), vec![]);
    }
}
