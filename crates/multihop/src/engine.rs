//! The multi-hop slot engine.
//!
//! Generalizes the paper's single-hop model (Section 2) to an arbitrary
//! connectivity [`Topology`]: a transmission on channel `q` reaches
//! only *neighbors* tuned to `q`. Collision resolution becomes
//! receiver-centric — for each listener, one of its transmitting
//! neighbors on the channel (uniformly random, independent per
//! listener) gets through — which is the natural multi-hop reading of
//! the paper's backoff abstraction. Transmitter-side feedback does not
//! survive the generalization (a node cannot know which of its
//! neighbors heard it), so transmitters always observe
//! [`Event::Delivered`]; COGCAST never uses the feedback, so it runs
//! unmodified.
//!
//! Protocols, actions, events and channel models are shared with
//! [`crn_sim`] — any single-hop protocol written against
//! [`crn_sim::Protocol`] runs here as-is.

use crate::topology::Topology;
use crn_sim::rng::SimRng;
use crn_sim::rng::{derive_rng, streams};
use crn_sim::{Action, ChannelModel, Event, GlobalChannel, NodeCtx, NodeId, Protocol, SimError};
use rand::Rng;

/// A simulated multi-hop cognitive radio network.
///
/// # Examples
///
/// ```
/// use crn_core::cogcast::CogCast;
/// use crn_multihop::{MultihopNetwork, Topology};
/// use crn_sim::{assignment::shared_core, channel_model::StaticChannels};
///
/// let n = 6;
/// let topo = Topology::line(n);
/// let model = StaticChannels::local(shared_core(n, 4, 2)?, 3);
/// let mut protos = vec![CogCast::source(())];
/// protos.extend((1..n).map(|_| CogCast::node()));
/// let mut net = MultihopNetwork::new(topo, model, protos, 3)?;
/// let done = net.run(100_000, |net| net.protocols().iter().all(|p| p.is_informed()));
/// assert!(done.is_some());
/// # Ok::<(), crn_sim::SimError>(())
/// ```
#[allow(missing_debug_implementations)] // protocols are user types
pub struct MultihopNetwork<M, P, CM> {
    topology: Topology,
    model: CM,
    protocols: Vec<P>,
    node_rngs: Vec<SimRng>,
    engine_rng: SimRng,
    slot: u64,
    _marker: std::marker::PhantomData<M>,
}

impl<M, P, CM> MultihopNetwork<M, P, CM>
where
    M: Clone,
    P: Protocol<M>,
    CM: ChannelModel,
{
    /// Creates the network.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProtocolCountMismatch`] if the topology,
    /// channel model and protocol count disagree on `n`.
    pub fn new(
        topology: Topology,
        model: CM,
        protocols: Vec<P>,
        seed: u64,
    ) -> Result<Self, SimError> {
        if protocols.len() != model.n() || topology.len() != model.n() {
            return Err(SimError::ProtocolCountMismatch {
                nodes: model.n(),
                protocols: protocols.len(),
            });
        }
        let node_rngs = (0..model.n())
            .map(|i| derive_rng(seed, streams::NODE_BASE + i as u64))
            .collect();
        Ok(MultihopNetwork {
            topology,
            model,
            protocols,
            node_rngs,
            engine_rng: derive_rng(seed, streams::ENGINE),
            slot: 0,
            _marker: std::marker::PhantomData,
        })
    }

    /// The connectivity topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The channel model.
    pub fn model(&self) -> &CM {
        &self.model
    }

    /// The protocol instances, indexed by node.
    pub fn protocols(&self) -> &[P] {
        &self.protocols
    }

    /// Slots executed so far.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Executes one slot.
    ///
    /// # Panics
    ///
    /// Panics if a protocol selects a local channel `>= c`.
    pub fn step(&mut self) {
        let slot = self.slot;
        let n = self.model.n();
        let k = self.model.k();
        let global_labels = self.model.labels_are_global();
        self.model.advance(slot);

        let mut actions: Vec<Action<M>> = Vec::with_capacity(n);
        for i in 0..n {
            let c_i = self.model.c_of(i);
            let ctx = NodeCtx {
                id: NodeId(i as u32),
                slot,
                n,
                c: c_i,
                k,
                channels: global_labels.then(|| self.model.channels(i)),
            };
            let action = self.protocols[i].decide(&ctx, &mut self.node_rngs[i]);
            if let Some(ch) = action.channel() {
                assert!(
                    ch.index() < c_i,
                    "protocol bug: node {i} chose local channel {ch} but c = {c_i}"
                );
            }
            actions.push(action);
        }

        // Physical tuning per node.
        let tuned: Vec<Option<(GlobalChannel, bool)>> = actions
            .iter()
            .enumerate()
            .map(|(i, a)| {
                a.channel()
                    .map(|local| (self.model.channels(i)[local.index()], a.is_broadcast()))
            })
            .collect();

        // Receiver-centric resolution.
        for i in 0..n {
            let event: Event<M> = match &actions[i] {
                Action::Sleep => continue,
                Action::Broadcast(..) => Event::Delivered,
                Action::Listen(_) => {
                    let (my_channel, _) = tuned[i].expect("listener is tuned");
                    let senders: Vec<usize> = self
                        .topology
                        .neighbors(i)
                        .iter()
                        .copied()
                        .filter(|&j| tuned[j] == Some((my_channel, true)))
                        .collect();
                    if senders.is_empty() {
                        Event::Silence
                    } else {
                        let w = senders[self.engine_rng.gen_range(0..senders.len())];
                        let Action::Broadcast(_, msg) = &actions[w] else {
                            unreachable!("sender filter guarantees a broadcast")
                        };
                        Event::Received {
                            from: NodeId(w as u32),
                            msg: msg.clone(),
                        }
                    }
                }
            };
            let ctx = NodeCtx {
                id: NodeId(i as u32),
                slot,
                n,
                c: self.model.c_of(i),
                k,
                channels: global_labels.then(|| self.model.channels(i)),
            };
            self.protocols[i].observe(&ctx, event);
        }
        self.slot += 1;
    }

    /// Runs until `done` holds; returns the completing slot count, or
    /// `None` when the budget is exhausted.
    pub fn run(&mut self, budget: u64, mut done: impl FnMut(&Self) -> bool) -> Option<u64> {
        for _ in 0..budget {
            self.step();
            if done(self) {
                return Some(self.slot);
            }
        }
        None
    }

    /// Consumes the network and returns its protocols.
    pub fn into_protocols(self) -> Vec<P> {
        self.protocols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_sim::assignment::full_overlap;
    use crn_sim::channel_model::StaticChannels;
    use crn_sim::LocalChannel;

    struct Fixed {
        action: Action<u8>,
        heard: Vec<Event<u8>>,
    }

    impl Protocol<u8> for Fixed {
        fn decide(&mut self, _ctx: &NodeCtx<'_>, _rng: &mut SimRng) -> Action<u8> {
            self.action.clone()
        }
        fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<u8>) {
            self.heard.push(event);
        }
    }

    fn fixed(action: Action<u8>) -> Fixed {
        Fixed {
            action,
            heard: Vec::new(),
        }
    }

    #[test]
    fn delivery_respects_the_topology() {
        // Line 0-1-2: node 0 broadcasts; node 1 hears, node 2 does not.
        let topo = Topology::line(3);
        let model = StaticChannels::global(full_overlap(3, 1).unwrap());
        let protos = vec![
            fixed(Action::Broadcast(LocalChannel(0), 9)),
            fixed(Action::Listen(LocalChannel(0))),
            fixed(Action::Listen(LocalChannel(0))),
        ];
        let mut net = MultihopNetwork::new(topo, model, protos, 1).unwrap();
        net.step();
        let p = net.into_protocols();
        assert_eq!(
            p[1].heard,
            vec![Event::Received {
                from: NodeId(0),
                msg: 9
            }]
        );
        assert_eq!(p[2].heard, vec![Event::Silence]);
    }

    #[test]
    fn per_receiver_winners_are_independent() {
        // Star-ish: 1 and 2 both broadcast; 0 neighbors both; over many
        // slots node 0 hears each roughly half the time.
        let topo = Topology::from_edges(3, &[(0, 1), (0, 2)]);
        let model = StaticChannels::global(full_overlap(3, 1).unwrap());
        let protos = vec![
            fixed(Action::Listen(LocalChannel(0))),
            fixed(Action::Broadcast(LocalChannel(0), 1)),
            fixed(Action::Broadcast(LocalChannel(0), 2)),
        ];
        let mut net = MultihopNetwork::new(topo, model, protos, 5).unwrap();
        for _ in 0..2000 {
            net.step();
        }
        let p = net.into_protocols();
        let from1 = p[0]
            .heard
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Received {
                        from: NodeId(1),
                        ..
                    }
                )
            })
            .count();
        assert!(
            (700..=1300).contains(&from1),
            "receiver-side winner skewed: {from1}/2000"
        );
    }

    #[test]
    fn different_channels_do_not_mix() {
        let topo = Topology::complete(2);
        let model = StaticChannels::global(full_overlap(2, 2).unwrap());
        let protos = vec![
            fixed(Action::Broadcast(LocalChannel(0), 3)),
            fixed(Action::Listen(LocalChannel(1))),
        ];
        let mut net = MultihopNetwork::new(topo, model, protos, 2).unwrap();
        net.step();
        assert_eq!(net.into_protocols()[1].heard, vec![Event::Silence]);
    }

    #[test]
    fn count_mismatch_rejected() {
        let topo = Topology::line(3);
        let model = StaticChannels::global(full_overlap(2, 1).unwrap());
        let protos = vec![fixed(Action::Sleep), fixed(Action::Sleep)];
        assert!(MultihopNetwork::new(topo, model, protos, 0).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| -> Vec<Event<u8>> {
            let topo = Topology::from_edges(3, &[(0, 1), (0, 2)]);
            let model = StaticChannels::global(full_overlap(3, 1).unwrap());
            let protos = vec![
                fixed(Action::Listen(LocalChannel(0))),
                fixed(Action::Broadcast(LocalChannel(0), 1)),
                fixed(Action::Broadcast(LocalChannel(0), 2)),
            ];
            let mut net = MultihopNetwork::new(topo, model, protos, seed).unwrap();
            for _ in 0..32 {
                net.step();
            }
            net.into_protocols().remove(0).heard
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
