//! Property-based verification of the multi-hop engine against its
//! receiver-centric reference semantics, with randomly scripted
//! behaviour over random topologies.

use crn_multihop::{MultihopNetwork, Topology};
use crn_sim::assignment::full_overlap;
use crn_sim::channel_model::StaticChannels;
use crn_sim::rng::SimRng;
use crn_sim::{Action, Event, LocalChannel, NodeCtx, Protocol};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
enum Step {
    Broadcast(u32),
    Listen(u32),
    Sleep,
}

#[derive(Debug)]
struct Scripted {
    id: u32,
    script: Vec<Step>,
    events: Vec<Option<Event<u32>>>,
}

impl Protocol<u32> for Scripted {
    fn decide(&mut self, ctx: &NodeCtx<'_>, _rng: &mut SimRng) -> Action<u32> {
        self.events.push(None);
        match self.script[ctx.slot as usize] {
            Step::Broadcast(ch) => {
                Action::Broadcast(LocalChannel(ch), self.id * 1000 + ctx.slot as u32)
            }
            Step::Listen(ch) => Action::Listen(LocalChannel(ch)),
            Step::Sleep => Action::Sleep,
        }
    }
    fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<u32>) {
        *self.events.last_mut().expect("decide first") = Some(event);
    }
}

fn step_strategy(c: u32) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..c).prop_map(Step::Broadcast),
        (0..c).prop_map(Step::Listen),
        Just(Step::Sleep),
    ]
}

/// One generated test instance: `(n, c, per-node scripts, edge list)`.
type Instance = (usize, u32, Vec<Vec<Step>>, Vec<(usize, usize)>);

fn instance() -> impl Strategy<Value = Instance> {
    (3usize..8, 1u32..4, 1usize..10).prop_flat_map(|(n, c, slots)| {
        let scripts =
            proptest::collection::vec(proptest::collection::vec(step_strategy(c), slots), n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..=n * 2);
        (Just(n), Just(c), scripts, edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn multihop_engine_matches_reference((n, c, scripts, edges) in instance()) {
        let slots = scripts[0].len();
        let topo = Topology::from_edges(n, &edges);
        // On a complete topology the medium intentionally delegates to
        // the single-hop oracle (losers overhear the winner instead of
        // the receiver-centric rule below); that path is covered by the
        // trace-equality tests in crn_sim::medium and the media
        // differential suite.
        if topo.is_complete() {
            return Ok(());
        }
        let model = StaticChannels::global(full_overlap(n, c as usize).unwrap());
        let protos: Vec<Scripted> = scripts
            .iter()
            .enumerate()
            .map(|(i, s)| Scripted { id: i as u32, script: s.clone(), events: Vec::new() })
            .collect();
        let mut net = MultihopNetwork::new(topo.clone(), model, protos, 7).unwrap();
        for _ in 0..slots {
            net.step();
        }
        let protos = net.into_protocols();

        // Indexing (not iterating) because `slot` addresses the same
        // position in every node's script and event log at once.
        #[allow(clippy::needless_range_loop)]
        for slot in 0..slots {
            for i in 0..n {
                let ev = &protos[i].events[slot];
                match scripts[i][slot] {
                    Step::Sleep => prop_assert!(ev.is_none()),
                    Step::Broadcast(_) => prop_assert_eq!(ev.clone(), Some(Event::Delivered)),
                    Step::Listen(my_ch) => {
                        // Reference: transmitting neighbors on my channel.
                        let senders: Vec<usize> = topo
                            .neighbors(i)
                            .iter()
                            .copied()
                            .filter(|&j| scripts[j][slot] == Step::Broadcast(my_ch))
                            .collect();
                        match ev.clone().expect("listener observes") {
                            Event::Silence => prop_assert!(
                                senders.is_empty(),
                                "node {i} slot {slot}: heard silence despite senders {senders:?}"
                            ),
                            Event::Received { from, msg } => {
                                prop_assert!(senders.contains(&from.index()));
                                prop_assert_eq!(msg, from.0 * 1000 + slot as u32);
                            }
                            other => prop_assert!(false, "unexpected event {other:?}"),
                        }
                    }
                }
            }
        }
    }
}
