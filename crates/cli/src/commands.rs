//! The `crn` subcommands. Each returns its report as a `String` so the
//! commands are unit-testable without process spawning.

use crate::args::Opts;
use crn_core::aggregate::{Count, Max, MeanAcc, Min, Sum};
use crn_core::bounds;
use crn_core::cogcast::run_broadcast;
use crn_core::cogcomp::run_aggregation;
use crn_jamming::{run_jammed_broadcast, JammerStrategy};
use crn_lowerbounds::players::{play, FreshPlayer, Player, UniformPlayer};
use crn_lowerbounds::HittingGame;
use crn_multihop::{run_flood, Topology};
use crn_rendezvous::deterministic::jump_stay_rendezvous_slots;
use crn_rendezvous::pairwise::rendezvous_slots;
use crn_sim::assignment::OverlapPattern;
use crn_sim::channel_model::{DynamicSharedCore, StaticChannels};
use crn_sim::rng::derive_rng;
use crn_stats::Summary;
use rand::SeedableRng;
use std::fmt::Write as _;

const BUDGET: u64 = 100_000_000;

/// Applies the `--threads` flag (or the `CRN_THREADS` env override) to
/// the process-wide worker pool before a command runs. The flag wins
/// over the env; both are strictly validated — a bad value is an error,
/// never a silent default, mirroring the unknown-flag policy.
fn init_threads(opts: &Opts) -> Result<(), String> {
    let flag = opts.has("threads").then(|| opts.get_str("threads", ""));
    crn_sim::pool::init_from_flag(flag.as_deref())
}

fn pattern_by_name(name: &str) -> Result<OverlapPattern, String> {
    OverlapPattern::ALL
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| {
            format!(
                "unknown pattern {name:?}; options: {}",
                OverlapPattern::ALL.map(|p| p.name()).join(", ")
            )
        })
}

fn shape(opts: &Opts) -> Result<(usize, usize, usize, u64, usize), String> {
    let n = opts.get("n", 32usize)?;
    let c = opts.get("c", 8usize)?;
    let k = opts.get("k", 2usize)?;
    let seed = opts.get("seed", 1u64)?;
    let trials = opts.get("trials", 10usize)?;
    if n == 0 || c == 0 || k == 0 || k > c {
        return Err(format!(
            "need n,c >= 1 and 1 <= k <= c (n={n}, c={c}, k={k})"
        ));
    }
    Ok((n, c, k, seed, trials))
}

fn summary_line(label: &str, slots: &[u64]) -> String {
    let s = Summary::of_u64(slots).expect("non-empty");
    let ci = match s.ci95 {
        Some(w) => format!(" ± {w:.1}"),
        None => String::new(),
    };
    format!(
        "{label}: mean {:.1}{ci} slots (p50 {:.0}, p90 {:.0}, max {:.0}) over {} trials\n",
        s.mean, s.p50, s.p90, s.max, s.n
    )
}

/// Which slot-resolution medium a command should drive the protocol
/// over. `multihop` uses the complete topology, so its single-hop
/// behaviour must agree with `oracle`; `physical` expands every slot
/// into a decay-backoff episode and additionally reports physical
/// rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MediumChoice {
    Oracle,
    Multihop,
    Physical,
}

impl MediumChoice {
    const ALL: [MediumChoice; 3] = [
        MediumChoice::Oracle,
        MediumChoice::Multihop,
        MediumChoice::Physical,
    ];

    fn name(self) -> &'static str {
        match self {
            MediumChoice::Oracle => "oracle",
            MediumChoice::Multihop => "multihop",
            MediumChoice::Physical => "physical",
        }
    }
}

fn medium_by_name(name: &str) -> Result<MediumChoice, String> {
    MediumChoice::ALL
        .into_iter()
        .find(|m| m.name() == name)
        .ok_or_else(|| {
            format!(
                "unknown medium {name:?}; options: {}",
                MediumChoice::ALL.map(|m| m.name()).join(", ")
            )
        })
}

/// Runs COGCAST over the chosen medium; accumulates physical-round
/// counts into `physical_rounds` when the medium is `physical`.
fn broadcast_on_medium<CM: crn_sim::ChannelModel + Sync>(
    model: CM,
    seed: u64,
    medium: MediumChoice,
    physical_rounds: &mut u64,
) -> Result<crn_core::cogcast::BroadcastRun, String> {
    use crn_core::cogcast::run_broadcast_on;
    let n = model.n();
    match medium {
        MediumChoice::Oracle => run_broadcast(model, seed, BUDGET).map_err(|e| e.to_string()),
        MediumChoice::Multihop => run_broadcast_on(
            model,
            seed,
            BUDGET,
            crn_sim::OracleMultihop::new(crn_sim::Topology::complete(n)),
        )
        .map(|(run, _)| run)
        .map_err(|e| e.to_string()),
        MediumChoice::Physical => {
            let (run, med) = run_broadcast_on(model, seed, BUDGET, crn_sim::PhysicalDecay::new())
                .map_err(|e| e.to_string())?;
            *physical_rounds += med.physical_rounds();
            Ok(run)
        }
    }
}

/// `crn broadcast` — run COGCAST.
pub fn broadcast(opts: &Opts) -> Result<String, String> {
    opts.expect_keys(
        "broadcast",
        &[
            "n", "c", "k", "seed", "trials", "pattern", "churn", "medium", "threads",
        ],
    )?;
    init_threads(opts)?;
    let (n, c, k, seed, trials) = shape(opts)?;
    let pattern = pattern_by_name(&opts.get_str("pattern", "shared-core"))?;
    let medium = medium_by_name(&opts.get_str("medium", "oracle"))?;
    let churn = opts.get("churn", 0.0f64)?;
    let mut slots = Vec::new();
    let mut physical_rounds = 0u64;
    for t in 0..trials as u64 {
        let s = seed.wrapping_add(t);
        let run = if churn > 0.0 {
            let model = DynamicSharedCore::new(n, c, k, (c - k).max(1) * 10, churn, s)
                .map_err(|e| e.to_string())?;
            broadcast_on_medium(model, s, medium, &mut physical_rounds)
        } else {
            let mut rng = derive_rng(s, 0xC11);
            let a = pattern
                .generate(n, c, k, &mut rng)
                .map_err(|e| e.to_string())?;
            broadcast_on_medium(StaticChannels::local(a, s), s, medium, &mut physical_rounds)
        }?;
        slots.push(run.slots.ok_or("broadcast did not complete in budget")?);
    }
    let mut out = String::new();
    writeln!(
        out,
        "COGCAST local broadcast: n = {n}, c = {c}, k = {k}, pattern = {}, medium = {}{}",
        pattern.name(),
        medium.name(),
        if churn > 0.0 {
            format!(", churn = {churn}")
        } else {
            String::new()
        }
    )
    .expect("write to string");
    out.push_str(&summary_line("completion", &slots));
    if medium == MediumChoice::Physical {
        let total_slots: u64 = slots.iter().sum();
        writeln!(
            out,
            "physical cost: {} rounds total, {:.0} rounds per abstract slot",
            physical_rounds,
            physical_rounds as f64 / total_slots.max(1) as f64
        )
        .expect("write to string");
    }
    writeln!(
        out,
        "Theorem 4 budget (alpha = {}): {} slots",
        bounds::DEFAULT_ALPHA,
        bounds::cogcast_slots(n, c, k, bounds::DEFAULT_ALPHA)
    )
    .expect("write to string");
    Ok(out)
}

/// `crn aggregate` — run COGCOMP with a chosen associative function.
pub fn aggregate(opts: &Opts) -> Result<String, String> {
    opts.expect_keys(
        "aggregate",
        &[
            "n", "c", "k", "seed", "trials", "op", "pattern", "alpha", "threads",
        ],
    )?;
    init_threads(opts)?;
    let (n, c, k, seed, trials) = shape(opts)?;
    let op = opts.get_str("op", "sum");
    let pattern = pattern_by_name(&opts.get_str("pattern", "shared-core"))?;
    let alpha = opts.get("alpha", bounds::DEFAULT_ALPHA)?;
    let mut slots = Vec::new();
    let mut result_line = String::new();
    for t in 0..trials as u64 {
        let s = seed.wrapping_add(t);
        let mut rng = derive_rng(s, 0xA66);
        let a = pattern
            .generate(n, c, k, &mut rng)
            .map_err(|e| e.to_string())?;
        let model = StaticChannels::local(a, s);
        macro_rules! run_op {
            ($mk:expr, $fmt:expr) => {{
                let values: Vec<_> = (0..n as u64).map($mk).collect();
                let run = run_aggregation(model, values, s, alpha).map_err(|e| e.to_string())?;
                let r = run.result.ok_or("aggregation did not complete")?;
                if t == 0 {
                    result_line = format!("result ({op} of node ids 0..{n}): {}\n", $fmt(&r));
                }
                run.slots.expect("checked by result")
            }};
        }
        let used = match op.as_str() {
            "sum" => run_op!(Sum, |r: &Sum| r.0.to_string()),
            "min" => run_op!(Min, |r: &Min| r.0.to_string()),
            "max" => run_op!(Max, |r: &Max| r.0.to_string()),
            "count" => run_op!(|_| Count(1), |r: &Count| r.0.to_string()),
            "mean" => run_op!(MeanAcc::of, |r: &MeanAcc| format!("{:.3}", r.mean())),
            other => {
                return Err(format!(
                    "unknown op {other:?}; options: sum, min, max, count, mean"
                ))
            }
        };
        slots.push(used);
    }
    let mut out = format!(
        "COGCOMP aggregation: n = {n}, c = {c}, k = {k}, op = {op}, pattern = {}\n",
        pattern.name()
    );
    out.push_str(&result_line);
    out.push_str(&summary_line("completion", &slots));
    Ok(out)
}

/// `crn rendezvous` — pairwise rendezvous, randomized or deterministic.
pub fn rendezvous(opts: &Opts) -> Result<String, String> {
    opts.expect_keys(
        "rendezvous",
        &["c", "k", "seed", "trials", "deterministic", "threads"],
    )?;
    init_threads(opts)?;
    let c = opts.get("c", 8usize)?;
    let k = opts.get("k", 2usize)?;
    let seed = opts.get("seed", 1u64)?;
    let trials = opts.get("trials", 50usize)?;
    let deterministic = opts.has("deterministic");
    if k == 0 || k > c {
        return Err(format!("need 1 <= k <= c (k = {k}, c = {c})"));
    }
    let mut slots = Vec::new();
    for t in 0..trials as u64 {
        let s = seed.wrapping_add(t);
        let mut rng = derive_rng(s, 0x3E0);
        let a = crn_sim::assignment::random_with_core(2, c, k, 10 * c, &mut rng)
            .map_err(|e| e.to_string())?
            .permute_globals(&mut rng);
        let met = if deterministic {
            jump_stay_rendezvous_slots(StaticChannels::global(a), s, BUDGET)
        } else {
            rendezvous_slots(StaticChannels::local(a, s), s, BUDGET)
        }
        .map_err(|e| e.to_string())?;
        slots.push(met.ok_or("pair did not meet within budget")?);
    }
    let mut out = format!(
        "pairwise rendezvous: c = {c}, k = {k}, scheme = {}\n",
        if deterministic {
            "deterministic jump-stay"
        } else {
            "uniform randomized"
        }
    );
    out.push_str(&summary_line("meeting time", &slots));
    writeln!(out, "c²/k reference: {:.0}", (c * c) as f64 / k as f64).expect("write");
    Ok(out)
}

/// `crn flood` — COGCAST over a multi-hop topology.
pub fn flood(opts: &Opts) -> Result<String, String> {
    opts.expect_keys(
        "flood",
        &["n", "c", "k", "seed", "trials", "topology", "threads"],
    )?;
    init_threads(opts)?;
    let (n, c, k, seed, trials) = shape(opts)?;
    let shape_name = opts.get_str("topology", "grid");
    let topo = match shape_name.as_str() {
        "line" => Topology::line(n),
        "ring" => Topology::ring(n),
        "complete" => Topology::complete(n),
        "grid" => {
            let w = (n as f64).sqrt().ceil() as usize;
            let h = n.div_ceil(w);
            Topology::grid(w, h)
        }
        other => {
            return Err(format!(
                "unknown topology {other:?}; options: line, ring, grid, complete"
            ))
        }
    };
    let n = topo.len();
    let diameter = topo.diameter().ok_or("topology is disconnected")?;
    let mut slots = Vec::new();
    for t in 0..trials as u64 {
        let s = seed.wrapping_add(t);
        let a = crn_sim::assignment::shared_core(n, c, k).map_err(|e| e.to_string())?;
        let run = run_flood(topo.clone(), StaticChannels::local(a, s), s, BUDGET)
            .map_err(|e| e.to_string())?;
        slots.push(run.slots.ok_or("flood did not complete")?);
    }
    let mut out = format!(
        "multi-hop flood: topology = {shape_name} (n = {n}, diameter = {diameter}), c = {c}, k = {k}\n"
    );
    out.push_str(&summary_line("completion", &slots));
    Ok(out)
}

/// `crn game` — play the bipartite hitting game.
pub fn game(opts: &Opts) -> Result<String, String> {
    opts.expect_keys("game", &["c", "k", "seed", "trials", "player", "threads"])?;
    init_threads(opts)?;
    let c = opts.get("c", 16usize)?;
    let k = opts.get("k", 2usize)?;
    let seed = opts.get("seed", 1u64)?;
    let trials = opts.get("trials", 200usize)?;
    let player_name = opts.get_str("player", "fresh");
    if k == 0 || k > c {
        return Err(format!("need 1 <= k <= c (k = {k}, c = {c})"));
    }
    let mut rounds = Vec::new();
    for t in 0..trials as u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(t));
        let mut game = HittingGame::new(c, k, &mut rng);
        let won = match player_name.as_str() {
            "uniform" => {
                let mut p = UniformPlayer::new(c);
                play_boxed(&mut game, &mut p, &mut rng)
            }
            "fresh" => {
                let mut p = FreshPlayer::new(c);
                play_boxed(&mut game, &mut p, &mut rng)
            }
            other => return Err(format!("unknown player {other:?}; options: uniform, fresh")),
        };
        rounds.push(won.ok_or("player did not win within budget")?);
    }
    let floor = bounds::hitting_game_floor(c, k, 2.0);
    let below = rounds.iter().filter(|&&r| r <= floor).count();
    let mut out =
        format!("({c},{k})-bipartite hitting game, player = {player_name}, {trials} games\n");
    out.push_str(&summary_line("winning round", &rounds));
    writeln!(
        out,
        "Lemma 11 floor c²/(8k) = {floor}; P[win by floor] = {:.3} (must be < 0.5)",
        below as f64 / trials as f64
    )
    .expect("write");
    Ok(out)
}

fn play_boxed(
    game: &mut HittingGame,
    player: &mut dyn Player,
    rng: &mut rand::rngs::StdRng,
) -> Option<u64> {
    struct DynPlayer<'a>(&'a mut dyn Player);
    impl Player for DynPlayer<'_> {
        fn next_proposal(&mut self, rng: &mut rand::rngs::StdRng) -> crn_lowerbounds::Edge {
            self.0.next_proposal(rng)
        }
    }
    play(game, &mut DynPlayer(player), 10_000_000, rng)
}

/// `crn jam` — COGCAST against an n-uniform jammer.
pub fn jam(opts: &Opts) -> Result<String, String> {
    opts.expect_keys(
        "jam",
        &["n", "c", "k", "seed", "trials", "strategy", "threads"],
    )?;
    init_threads(opts)?;
    let (n, c, k, seed, trials) = shape(opts)?;
    if 2 * k >= c {
        return Err(format!(
            "the Theorem 18 regime needs k < c/2 (k = {k}, c = {c})"
        ));
    }
    let strategy_name = opts.get_str("strategy", "random");
    let strategy = JammerStrategy::ALL
        .into_iter()
        .find(|s| s.name() == strategy_name)
        .ok_or_else(|| {
            format!(
                "unknown strategy {strategy_name:?}; options: {}",
                JammerStrategy::ALL.map(|s| s.name()).join(", ")
            )
        })?;
    let mut slots = Vec::new();
    for t in 0..trials as u64 {
        let s = seed.wrapping_add(t);
        let run = run_jammed_broadcast(n, c, k, strategy, s, 60.0).map_err(|e| e.to_string())?;
        slots.push(run.slots.ok_or("jammed broadcast did not complete")?);
    }
    let mut out = format!(
        "COGCAST vs n-uniform jammer: n = {n}, c = {c}, jam budget = {k} ({} strategy)\n",
        strategy.name()
    );
    out.push_str(&summary_line("completion", &slots));
    writeln!(out, "effective overlap c - 2k = {}", c - 2 * k).expect("write");
    Ok(out)
}

/// `crn backoff` — resolve contention on the physical radio.
pub fn backoff(opts: &Opts) -> Result<String, String> {
    opts.expect_keys("backoff", &["m", "nmax", "seed", "trials", "threads"])?;
    init_threads(opts)?;
    let m = opts.get("m", 16usize)?;
    let n_max = opts.get("nmax", 256usize)?;
    let seed = opts.get("seed", 1u64)?;
    let trials = opts.get("trials", 200usize)?;
    if m == 0 || m > n_max {
        return Err(format!("need 1 <= m <= nmax (m = {m}, nmax = {n_max})"));
    }
    let mut rounds = Vec::new();
    for t in 0..trials as u64 {
        let mut rng = crn_sim::SimRng::seed_from_u64(seed.wrapping_add(t));
        let r = crn_backoff::resolve_contention(
            m,
            n_max,
            crn_backoff::recommended_rounds(n_max),
            &mut rng,
        )
        .map_err(|e| e.to_string())?
        .ok_or("decay episode failed within the recommended budget")?;
        rounds.push(r.rounds);
    }
    let mut out = format!("decay backoff: m = {m} contenders, population bound {n_max}\n");
    out.push_str(&summary_line("rounds to one winner", &rounds));
    writeln!(
        out,
        "w.h.p. budget 8·log²: {} rounds",
        crn_backoff::recommended_rounds(n_max)
    )
    .expect("write");
    Ok(out)
}

/// `crn monitor` — amortized repeated aggregation over one tree.
pub fn monitor(opts: &Opts) -> Result<String, String> {
    use crn_core::cogcomp::run_repeated_aggregation;
    opts.expect_keys(
        "monitor",
        &["n", "c", "k", "seed", "trials", "rounds", "op", "threads"],
    )?;
    init_threads(opts)?;
    let (n, c, k, seed, _trials) = shape(opts)?;
    let rounds = opts.get("rounds", 5usize)?;
    let op = opts.get_str("op", "max");
    if rounds == 0 {
        return Err("need at least one round".into());
    }
    if op != "max" {
        return Err(format!("monitor currently supports --op max, got {op:?}"));
    }
    let a = crn_sim::assignment::shared_core(n, c, k).map_err(|e| e.to_string())?;
    let model = StaticChannels::local(a, seed);
    // Drifting synthetic readings, deterministic per seed.
    let mut vrng = derive_rng(seed, 0x300);
    let values: Vec<Vec<Max>> = (0..rounds)
        .map(|r| {
            (0..n)
                .map(|_| Max(100 + 2 * r as u64 + rand::Rng::gen_range(&mut vrng, 0u64..20)))
                .collect()
        })
        .collect();
    let truth: Vec<u64> = values
        .iter()
        .map(|round| round.iter().map(|m| m.0).max().expect("n >= 1"))
        .collect();
    let run = run_repeated_aggregation(model, values, seed, bounds::DEFAULT_ALPHA)
        .map_err(|e| e.to_string())?;
    if !run.is_complete() {
        return Err("a monitoring round missed its window".into());
    }
    let mut out = format!(
        "continuous monitoring: n = {n}, c = {c}, k = {k}, {rounds} rounds over one tree\n"
    );
    writeln!(
        out,
        "total {} slots; setup {} slots; {} slots per round window",
        run.slots.expect("complete"),
        run.cfg.phase4_start(),
        3 * run.cfg.round_steps()
    )
    .expect("write");
    for (r, (result, truth)) in run.results.iter().zip(&truth).enumerate() {
        let measured = result.as_ref().expect("complete").0;
        writeln!(
            out,
            "  round {r}: max = {measured}{}",
            if measured == *truth {
                ""
            } else {
                " (MISMATCH)"
            }
        )
        .expect("write");
        if measured != *truth {
            return Err(format!(
                "round {r} result {measured} != ground truth {truth}"
            ));
        }
    }
    Ok(out)
}

/// Dispatches a subcommand; `None` means "unknown command".
pub fn dispatch(command: &str, opts: &Opts) -> Option<Result<String, String>> {
    Some(match command {
        "broadcast" => broadcast(opts),
        "aggregate" => aggregate(opts),
        "rendezvous" => rendezvous(opts),
        "flood" => flood(opts),
        "game" => game(opts),
        "jam" => jam(opts),
        "backoff" => backoff(opts),
        "monitor" => monitor(opts),
        _ => return None,
    })
}

/// The help text.
pub fn help() -> String {
    "crn — efficient communication in cognitive radio networks (PODC'15 reproduction)

USAGE: crn <command> [--key value]...

COMMANDS
  broadcast   COGCAST local broadcast
              --n 32 --c 8 --k 2 --pattern shared-core --churn 0.0 --trials 10 --seed 1
              --medium oracle|multihop|physical
  aggregate   COGCOMP data aggregation
              --n 32 --c 8 --k 2 --op sum|min|max|count|mean --alpha 10 --trials 10
  rendezvous  pairwise rendezvous
              --c 8 --k 2 --trials 50 [--deterministic]
  flood       multi-hop COGCAST flood
              --n 16 --c 4 --k 2 --topology line|ring|grid|complete
  game        the (c,k)-bipartite hitting game (Lemma 11)
              --c 16 --k 2 --player uniform|fresh --trials 200
  jam         COGCAST vs an n-uniform jammer (Theorem 18)
              --n 16 --c 12 --k 3 --strategy random|sweep|targeted
  backoff     decay contention resolution on the physical radio
              --m 16 --nmax 256 --trials 200
  monitor     amortized repeated aggregation (one tree, many rounds)
              --n 32 --c 8 --k 2 --rounds 5 --op max

GLOBAL FLAGS
  --threads N   worker-pool width for parallel phases (every command).
                Overrides the CRN_THREADS env var; defaults to the
                machine's available cores. Strictly validated: 0, junk
                or out-of-range values are errors, never defaults.

Patterns: full-overlap, shared-core, random-dispersed, random-congested, clustered.
All commands are deterministic for a fixed --seed (at any --threads).
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Opts {
        Opts::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn broadcast_reports_completion() {
        let out = broadcast(&opts(&["--n", "12", "--c", "4", "--trials", "3"])).unwrap();
        assert!(out.contains("COGCAST local broadcast"));
        assert!(out.contains("mean"));
        assert!(out.contains("Theorem 4 budget"));
    }

    #[test]
    fn broadcast_rejects_bad_shape() {
        assert!(broadcast(&opts(&["--k", "9", "--c", "4"])).is_err());
    }

    #[test]
    fn broadcast_medium_axis() {
        for medium in ["oracle", "multihop", "physical"] {
            let out = broadcast(&opts(&[
                "--n", "10", "--c", "4", "--trials", "2", "--medium", medium,
            ]))
            .unwrap_or_else(|e| panic!("{medium}: {e}"));
            assert!(out.contains(&format!("medium = {medium}")), "{out}");
        }
        // Physical runs additionally report the round expansion.
        let out = broadcast(&opts(&[
            "--n", "10", "--c", "4", "--trials", "2", "--medium", "physical",
        ]))
        .unwrap();
        assert!(out.contains("physical cost"), "{out}");
        assert!(broadcast(&opts(&["--medium", "ether"])).is_err());
    }

    #[test]
    fn broadcast_multihop_medium_matches_oracle() {
        // Complete topology + single-hop protocol: the multihop medium
        // must delegate to the oracle and reproduce its exact numbers.
        let base = &["--n", "12", "--c", "4", "--trials", "3"];
        let oracle = broadcast(&opts(base)).unwrap();
        let mut with_medium = base.to_vec();
        with_medium.extend(["--medium", "multihop"]);
        let multihop = broadcast(&opts(&with_medium)).unwrap();
        let line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("completion"))
                .unwrap()
                .to_string()
        };
        assert_eq!(line(&oracle), line(&multihop));
    }

    #[test]
    fn aggregate_each_op() {
        for op in ["sum", "min", "max", "count", "mean"] {
            let out = aggregate(&opts(&[
                "--n", "10", "--c", "4", "--op", op, "--trials", "2",
            ]))
            .unwrap_or_else(|e| panic!("{op}: {e}"));
            assert!(out.contains(&format!("op = {op}")), "{out}");
            assert!(out.contains("result"), "{out}");
        }
        assert!(aggregate(&opts(&["--op", "median"])).is_err());
    }

    #[test]
    fn aggregate_sum_is_correct() {
        let out = aggregate(&opts(&[
            "--n", "10", "--c", "4", "--op", "sum", "--trials", "1",
        ]))
        .unwrap();
        assert!(out.contains(": 45"), "{out}");
    }

    #[test]
    fn rendezvous_both_schemes() {
        let out = rendezvous(&opts(&["--c", "6", "--k", "2", "--trials", "5"])).unwrap();
        assert!(out.contains("uniform randomized"));
        let out = rendezvous(&opts(&[
            "--c",
            "6",
            "--k",
            "2",
            "--trials",
            "5",
            "--deterministic",
        ]))
        .unwrap();
        assert!(out.contains("deterministic"));
    }

    #[test]
    fn flood_topologies() {
        for topo in ["line", "ring", "grid", "complete"] {
            let out = flood(&opts(&[
                "--n",
                "9",
                "--c",
                "4",
                "--topology",
                topo,
                "--trials",
                "2",
            ]))
            .unwrap_or_else(|e| panic!("{topo}: {e}"));
            assert!(out.contains("diameter"), "{out}");
        }
        assert!(flood(&opts(&["--topology", "torus"])).is_err());
    }

    #[test]
    fn game_respects_floor() {
        let out = game(&opts(&["--c", "16", "--k", "2", "--trials", "50"])).unwrap();
        assert!(out.contains("Lemma 11 floor"));
    }

    #[test]
    fn jam_runs_and_validates_regime() {
        let out = jam(&opts(&[
            "--n", "10", "--c", "8", "--k", "2", "--trials", "3",
        ]))
        .unwrap();
        assert!(out.contains("effective overlap"));
        assert!(jam(&opts(&["--c", "8", "--k", "4"])).is_err());
    }

    #[test]
    fn backoff_runs() {
        let out = backoff(&opts(&["--m", "8", "--trials", "20"])).unwrap();
        assert!(out.contains("rounds to one winner"));
        assert!(backoff(&opts(&["--m", "0"])).is_err());
    }

    #[test]
    fn monitor_tracks_ground_truth() {
        let out = monitor(&opts(&["--n", "12", "--c", "4", "--rounds", "3"])).unwrap();
        assert!(out.contains("3 rounds"), "{out}");
        assert!(out.contains("round 2"), "{out}");
        assert!(!out.contains("MISMATCH"), "{out}");
        assert!(monitor(&opts(&["--rounds", "0"])).is_err());
        assert!(monitor(&opts(&["--op", "sum"])).is_err());
    }

    #[test]
    fn dispatch_covers_all_commands() {
        for cmd in ["broadcast", "rendezvous", "game", "backoff"] {
            let result = dispatch(cmd, &opts(&["--trials", "1"])).expect("known command");
            assert!(result.is_ok(), "{cmd}: {result:?}");
        }
        assert!(dispatch("nope", &opts(&[])).is_none());
    }

    #[test]
    fn unknown_flags_are_rejected_not_defaulted() {
        // The original bug: `--seeed 7` fell back to the default seed
        // and silently ran a different experiment.
        let err = broadcast(&opts(&["--seeed", "7"])).unwrap_err();
        assert!(err.contains("--seeed"), "{err}");
        assert!(err.contains("--seed"), "must list accepted flags: {err}");
        // Every command validates its own accepted-key set.
        for cmd in [
            "broadcast",
            "aggregate",
            "rendezvous",
            "flood",
            "game",
            "jam",
            "backoff",
            "monitor",
        ] {
            let result = dispatch(cmd, &opts(&["--no-such-flag", "1"])).expect("known command");
            let err = result.unwrap_err();
            assert!(err.contains("--no-such-flag"), "{cmd}: {err}");
        }
        // Flags valid for one command are still rejected for another.
        assert!(rendezvous(&opts(&["--n", "6"])).is_err());
        assert!(backoff(&opts(&["--c", "4"])).is_err());
    }

    #[test]
    fn help_mentions_every_command() {
        let h = help();
        for cmd in [
            "broadcast",
            "aggregate",
            "rendezvous",
            "flood",
            "game",
            "jam",
            "backoff",
        ] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn threads_flag_rejects_bad_values() {
        // Mirrors the unknown-flag policy: a bad --threads is an error
        // up front, never a silent fall-back to the default width.
        for bad in [
            &["--threads", "0"][..],
            &["--threads", "abc"],
            &["--threads", "-3"],
            &["--threads", "1000000"],
            &["--threads"], // bare boolean flag parses as "true"
        ] {
            let err = broadcast(&opts(bad)).unwrap_err();
            assert!(err.contains("--threads"), "{bad:?}: {err}");
            assert!(err.contains("thread count"), "{bad:?}: {err}");
        }
        // Every command accepts and validates the flag.
        for cmd in [
            "broadcast",
            "aggregate",
            "rendezvous",
            "flood",
            "game",
            "jam",
            "backoff",
            "monitor",
        ] {
            let result = dispatch(cmd, &opts(&["--threads", "0"])).expect("known command");
            let err = result.unwrap_err();
            assert!(err.contains("--threads"), "{cmd}: {err}");
        }
    }

    #[test]
    fn threads_flag_accepts_configured_width() {
        // Use the width the lazy global pool would pick anyway: the
        // pool is process-wide, so any other width could conflict with
        // pool-using tests in this same test process (and the right
        // width must be accepted idempotently).
        let w = crn_sim::pool::configured_workers().unwrap().to_string();
        let out = broadcast(&opts(&[
            "--n",
            "10",
            "--c",
            "4",
            "--trials",
            "2",
            "--threads",
            &w,
        ]))
        .unwrap();
        assert!(out.contains("COGCAST local broadcast"), "{out}");
    }

    #[test]
    fn help_documents_threads_flag() {
        assert!(help().contains("--threads"));
        assert!(help().contains("CRN_THREADS"));
    }

    #[test]
    fn deterministic_output_for_fixed_seed() {
        let a = broadcast(&opts(&[
            "--n", "10", "--c", "4", "--trials", "3", "--seed", "9",
        ]))
        .unwrap();
        let b = broadcast(&opts(&[
            "--n", "10", "--c", "4", "--trials", "3", "--seed", "9",
        ]))
        .unwrap();
        assert_eq!(a, b);
    }
}
