//! `crn` — the command-line driver.
//!
//! ```text
//! crn broadcast --n 64 --c 8 --k 2
//! crn aggregate --op mean --n 40
//! crn rendezvous --c 12 --k 3 --deterministic
//! crn flood --topology grid --n 25
//! crn game --c 32 --k 4 --player fresh
//! crn jam --n 16 --c 12 --k 3 --strategy sweep
//! crn backoff --m 64
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty()
        || raw
            .iter()
            .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        print!("{}", commands::help());
        return ExitCode::SUCCESS;
    }
    let opts = match args::Opts::parse(raw) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(command) = opts.positional().first().cloned() else {
        eprintln!("missing command\n");
        eprint!("{}", commands::help());
        return ExitCode::FAILURE;
    };
    match commands::dispatch(&command, &opts) {
        Some(Ok(report)) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Some(Err(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("unknown command {command:?}\n");
            eprint!("{}", commands::help());
            ExitCode::FAILURE
        }
    }
}
