//! A tiny `--key value` argument parser (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command-line options: `--key value` pairs plus positional
/// arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Opts {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

impl Opts {
    /// Parses raw arguments. A `--key` followed by another `--key` (or
    /// nothing) is treated as a boolean flag with value `"true"`.
    ///
    /// # Errors
    ///
    /// Returns an error message for malformed flags (e.g. `---x`) and
    /// for a flag given more than once (a silent last-one-wins would
    /// hide the user's mistake).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = Opts::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if key.is_empty() || key.starts_with('-') {
                    return Err(format!("malformed flag: {arg}"));
                }
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().expect("peeked"),
                    _ => "true".to_string(),
                };
                if opts.flags.insert(key.to_string(), value).is_some() {
                    return Err(format!("duplicate flag --{key}"));
                }
            } else {
                opts.positional.push(arg);
            }
        }
        Ok(opts)
    }

    /// Validates that every given flag is one `command` accepts.
    ///
    /// The `get_*` accessors fall back to defaults for absent keys, so
    /// a typo (`--seeed 7`) would otherwise silently run a different
    /// experiment than the user asked for. Each command calls this
    /// first with its accepted-key set.
    ///
    /// # Errors
    ///
    /// Returns an error naming the unknown flag and listing the
    /// accepted ones.
    pub fn expect_keys(&self, command: &str, allowed: &[&str]) -> Result<(), String> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(format!(
                    "unknown flag --{key} for {command}; accepted: {}",
                    allowed
                        .iter()
                        .map(|k| format!("--{k}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(())
    }

    /// The positional arguments, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A string option, or the default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A typed option, or the default.
    ///
    /// # Errors
    ///
    /// Returns an error message when the value does not parse.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    /// True if the boolean flag was given.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Opts {
        Opts::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_key_value_pairs() {
        let o = parse(&["broadcast", "--n", "32", "--seed", "7"]);
        assert_eq!(o.positional(), &["broadcast".to_string()]);
        assert_eq!(o.get::<usize>("n", 0).unwrap(), 32);
        assert_eq!(o.get::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(o.get::<usize>("missing", 5).unwrap(), 5);
    }

    #[test]
    fn boolean_flags() {
        let o = parse(&["x", "--quick", "--n", "4"]);
        assert!(o.has("quick"));
        assert!(!o.has("slow"));
        assert_eq!(o.get_str("quick", ""), "true");
    }

    #[test]
    fn trailing_boolean_flag() {
        let o = parse(&["--deterministic"]);
        assert!(o.has("deterministic"));
    }

    #[test]
    fn parse_errors() {
        assert!(Opts::parse(vec!["---x".to_string()]).is_err());
        let o = parse(&["--n", "abc"]);
        assert!(o.get::<usize>("n", 0).is_err());
    }

    #[test]
    fn duplicate_flags_rejected() {
        let err = Opts::parse(["--n", "4", "--n", "8"].iter().map(|s| s.to_string())).unwrap_err();
        assert!(err.contains("duplicate flag --n"), "{err}");
    }

    #[test]
    fn expect_keys_flags_typos() {
        let o = parse(&["--seeed", "7"]);
        let err = o
            .expect_keys("broadcast", &["n", "c", "k", "seed"])
            .unwrap_err();
        assert!(err.contains("--seeed"), "{err}");
        assert!(err.contains("broadcast"), "{err}");
        assert!(err.contains("--seed"), "should list accepted flags: {err}");
    }

    #[test]
    fn expect_keys_accepts_known_flags() {
        let o = parse(&["--n", "4", "--seed", "7"]);
        assert!(o.expect_keys("broadcast", &["n", "c", "k", "seed"]).is_ok());
    }

    #[test]
    fn string_options() {
        let o = parse(&["--pattern", "shared-core"]);
        assert_eq!(o.get_str("pattern", "x"), "shared-core");
        assert_eq!(o.get_str("other", "fallback"), "fallback");
    }
}
