//! Summary statistics for experiment samples.

use serde::{Deserialize, Serialize};

/// Descriptive statistics of a sample.
///
/// # Examples
///
/// ```
/// use crn_stats::Summary;
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n = 1).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Half-width of the normal-approximation 95% confidence interval
    /// of the mean; `None` for `n = 1`, where no spread can be
    /// estimated (a zero-width interval would overstate confidence).
    pub ci95: Option<f64>,
}

impl Summary {
    /// Computes the summary; returns `None` on an empty sample or any
    /// non-finite value.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std = var.sqrt();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        // Linearly interpolated percentile (the rank `p·(n−1)` falls
        // between two order statistics). Nearest-rank rounding would
        // collapse p90/p99 to `max` for any n ≤ 5, biasing the tails.
        let pct = |p: f64| -> f64 {
            let rank = p * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let frac = rank - lo as f64;
            if frac == 0.0 || lo + 1 >= n {
                sorted[lo]
            } else {
                sorted[lo] + frac * (sorted[lo + 1] - sorted[lo])
            }
        };
        Some(Summary {
            n,
            mean,
            std,
            min: sorted[0],
            max: sorted[n - 1],
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            ci95: (n > 1).then(|| 1.96 * std / (n as f64).sqrt()),
        })
    }

    /// Convenience for integer slot counts.
    pub fn of_u64(samples: &[u64]) -> Option<Summary> {
        let f: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_statistics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95, None, "one trial supports no interval estimate");
        assert_eq!(s.p50, 3.5);
        assert_eq!(s.p99, 3.5);
    }

    #[test]
    fn ci95_present_from_two_samples() {
        let s = Summary::of(&[1.0, 3.0]).unwrap();
        let w = s.ci95.expect("n = 2 has an interval");
        // std = sqrt(2), half-width = 1.96·sqrt(2)/sqrt(2) = 1.96.
        assert!((w - 1.96).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate_instead_of_collapsing_to_max() {
        // Nearest-rank rounding reported p90 = p99 = max = 5 here.
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert!((s.p50 - 3.0).abs() < 1e-12);
        assert!((s.p90 - 4.6).abs() < 1e-12);
        assert!((s.p99 - 4.96).abs() < 1e-12);
        assert!(s.p99 < s.max);

        let xs: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let s = Summary::of(&xs).unwrap();
        assert!((s.p50 - 5.5).abs() < 1e-12);
        assert!((s.p90 - 9.1).abs() < 1e-12);
        assert!((s.p99 - 9.91).abs() < 1e-12);
    }

    #[test]
    fn empty_and_nonfinite_rejected() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        assert!(Summary::of(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn median_of_odd_sample() {
        let s = Summary::of(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.p50, 5.0);
    }

    #[test]
    fn of_u64_matches_of() {
        let a = Summary::of_u64(&[1, 2, 3]).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_bounds_hold(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::of(&xs).unwrap();
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.min <= s.p50 && s.p50 <= s.max);
            prop_assert!(s.p50 <= s.p90 + 1e-9 && s.p90 <= s.p99 + 1e-9);
            prop_assert!(s.std >= 0.0);
        }

        #[test]
        fn prop_constant_sample_has_zero_std(x in -1e6f64..1e6, n in 1usize..50) {
            let s = Summary::of(&vec![x; n]).unwrap();
            prop_assert!(s.std.abs() < 1e-9 * (1.0 + x.abs()));
            prop_assert_eq!(s.min, s.max);
        }
    }
}
