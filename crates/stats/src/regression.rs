//! Least-squares fits for scaling-law checks.
//!
//! The experiments verify asymptotic *shapes* ("slots grow like
//! `(c/k)·lg n`") by fitting power laws: a linear regression in log-log
//! space whose slope is the empirical exponent.

use serde::{Deserialize, Serialize};

/// An ordinary-least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineFit {
    /// The fitted slope.
    pub slope: f64,
    /// The fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r2: f64,
}

/// Fits a least-squares line; `None` if fewer than two points, lengths
/// differ, any value is non-finite, or the x-values are all equal.
///
/// # Examples
///
/// ```
/// use crn_stats::regression::linear_fit;
/// let fit = linear_fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!((fit.r2 - 1.0).abs() < 1e-12);
/// ```
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LineFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    if xs.iter().chain(ys).any(|v| !v.is_finite()) {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    Some(LineFit {
        slope,
        intercept,
        r2,
    })
}

/// Fits `y ≈ a·x^slope` by regressing `ln y` on `ln x`; the returned
/// slope is the empirical scaling exponent. Requires strictly positive
/// data.
///
/// # Examples
///
/// ```
/// use crn_stats::regression::power_law_fit;
/// let xs = [1.0, 2.0, 4.0, 8.0];
/// let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
/// let fit = power_law_fit(&xs, &ys).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-9);
/// ```
pub fn power_law_fit(xs: &[f64], ys: &[f64]) -> Option<LineFit> {
    if xs.iter().chain(ys).any(|&v| v <= 0.0) {
        return None;
    }
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    linear_fit(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -3.0 * x + 7.0).collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope + 3.0).abs() < 1e-12);
        assert!((f.intercept - 7.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_lower_r2() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 5.0 } else { -5.0 })
            .collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!(f.r2 < 1.0);
        assert!((f.slope - 2.0).abs() < 0.3);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_none());
        assert!(linear_fit(&[3.0, 3.0], &[1.0, 2.0]).is_none());
        assert!(linear_fit(&[1.0, f64::NAN], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn power_law_rejects_nonpositive() {
        assert!(power_law_fit(&[0.0, 1.0], &[1.0, 2.0]).is_none());
        assert!(power_law_fit(&[1.0, 2.0], &[-1.0, 2.0]).is_none());
    }

    #[test]
    fn constant_ys_have_full_r2() {
        let f = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r2, 1.0);
    }

    proptest! {
        #[test]
        fn prop_recovers_random_lines(
            slope in -100.0f64..100.0,
            intercept in -100.0f64..100.0,
        ) {
            let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
            let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
            let f = linear_fit(&xs, &ys).unwrap();
            prop_assert!((f.slope - slope).abs() < 1e-6);
            prop_assert!((f.intercept - intercept).abs() < 1e-6);
        }

        #[test]
        fn prop_power_law_exponent(exp in 0.2f64..3.0, scale in 0.1f64..10.0) {
            let xs = [1.0f64, 2.0, 4.0, 8.0, 16.0];
            let ys: Vec<f64> = xs.iter().map(|x| scale * x.powf(exp)).collect();
            let f = power_law_fit(&xs, &ys).unwrap();
            prop_assert!((f.slope - exp).abs() < 1e-6);
        }
    }
}
