//! Bootstrap resampling for distribution-free confidence intervals.
//!
//! Slot-count distributions are skewed (geometric-ish tails), so the
//! normal-approximation CI in [`crate::Summary`] can be optimistic;
//! the experiment tables that make close calls use a percentile
//! bootstrap instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A percentile-bootstrap confidence interval for the mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapCi {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Lower bound of the interval.
    pub lo: f64,
    /// Upper bound of the interval.
    pub hi: f64,
    /// The confidence level used (e.g. 0.95).
    pub level: f64,
}

impl BootstrapCi {
    /// True if `other`'s interval does not overlap this one (a
    /// conservative "significantly different" check).
    pub fn separated_from(&self, other: &BootstrapCi) -> bool {
        self.hi < other.lo || other.hi < self.lo
    }
}

/// Percentile bootstrap of the sample mean.
///
/// Returns `None` for empty/non-finite samples or `level` outside
/// `(0, 1)`.
///
/// # Examples
///
/// ```
/// use crn_stats::resample::bootstrap_mean_ci;
/// let xs: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
/// let ci = bootstrap_mean_ci(&xs, 500, 0.95, 42).unwrap();
/// assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
/// assert!((ci.mean - 4.5).abs() < 1e-9);
/// ```
pub fn bootstrap_mean_ci(
    samples: &[f64],
    iterations: usize,
    level: f64,
    seed: u64,
) -> Option<BootstrapCi> {
    if samples.is_empty()
        || iterations == 0
        || !(0.0..1.0).contains(&level)
        || level <= 0.0
        || samples.iter().any(|x| !x.is_finite())
    {
        return None;
    }
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..iterations)
        .map(|_| {
            let mut total = 0.0;
            for _ in 0..n {
                total += samples[rng.gen_range(0..n)];
            }
            total / n as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let alpha = (1.0 - level) / 2.0;
    let idx =
        |q: f64| -> usize { ((q * (iterations - 1) as f64).round() as usize).min(iterations - 1) };
    Some(BootstrapCi {
        mean,
        lo: means[idx(alpha)],
        hi: means[idx(1.0 - alpha)],
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interval_brackets_the_mean() {
        let xs: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let ci = bootstrap_mean_ci(&xs, 1000, 0.95, 1).unwrap();
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
        assert!(ci.lo > 18.0 && ci.hi < 33.0, "{ci:?}");
    }

    #[test]
    fn constant_sample_collapses() {
        let ci = bootstrap_mean_ci(&[7.0; 30], 200, 0.9, 2).unwrap();
        assert_eq!(ci.lo, 7.0);
        assert_eq!(ci.hi, 7.0);
    }

    #[test]
    fn separation_detects_distinct_distributions() {
        let a: Vec<f64> = (0..60).map(|i| 10.0 + (i % 5) as f64).collect();
        let b: Vec<f64> = (0..60).map(|i| 50.0 + (i % 5) as f64).collect();
        let ca = bootstrap_mean_ci(&a, 500, 0.95, 3).unwrap();
        let cb = bootstrap_mean_ci(&b, 500, 0.95, 4).unwrap();
        assert!(ca.separated_from(&cb));
        assert!(cb.separated_from(&ca));
        assert!(!ca.separated_from(&ca));
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(bootstrap_mean_ci(&[], 100, 0.95, 0).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 0, 0.95, 0).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 100, 1.5, 0).is_none());
        assert!(bootstrap_mean_ci(&[f64::NAN], 100, 0.95, 0).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<f64> = (0..40).map(|i| (i * i % 17) as f64).collect();
        let a = bootstrap_mean_ci(&xs, 300, 0.95, 9).unwrap();
        let b = bootstrap_mean_ci(&xs, 300, 0.95, 9).unwrap();
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn prop_interval_ordered(
            xs in proptest::collection::vec(-1e3f64..1e3, 2..60),
            seed in 0u64..100,
        ) {
            let ci = bootstrap_mean_ci(&xs, 200, 0.9, seed).unwrap();
            prop_assert!(ci.lo <= ci.hi);
            prop_assert!(ci.lo <= ci.mean + 1e-9);
            prop_assert!(ci.mean <= ci.hi + 1e-9);
        }
    }
}
