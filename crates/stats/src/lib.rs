//! # crn-stats — statistics and rendering for the experiments
//!
//! Small, dependency-free helpers shared by the benchmark harness and
//! the test suites:
//!
//! - [`summary`] — descriptive statistics with percentiles and a 95% CI;
//! - [`regression`] — least-squares and log-log (power-law) fits, used
//!   to check measured scaling exponents against the theorems;
//! - [`table`] — markdown-style tables and ASCII-charted series, the
//!   output format of every reproduced table and figure.
//!
//! ```
//! use crn_stats::{Summary, regression::power_law_fit};
//! let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
//! assert_eq!(s.p50, 2.0);
//! let fit = power_law_fit(&[1.0, 2.0, 4.0], &[2.0, 4.0, 8.0]).unwrap();
//! assert!((fit.slope - 1.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod regression;
pub mod resample;
pub mod summary;
pub mod table;

pub use regression::{linear_fit, power_law_fit, LineFit};
pub use resample::{bootstrap_mean_ci, BootstrapCi};
pub use summary::Summary;
pub use table::{Series, Table};
