//! Plain-text table and series rendering for the experiment harness.
//!
//! The `experiments` binary prints every reproduced "table" as a
//! markdown-style [`Table`] and every "figure" as a [`Series`] — the
//! x/y rows plus an ASCII chart, so results are inspectable in a
//! terminal and diffable in EXPERIMENTS.md.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rectangular text table with a header row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The raw rows (for assertions in tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells
    /// containing commas, quotes or newlines), header row first.
    ///
    /// # Examples
    ///
    /// ```
    /// use crn_stats::Table;
    /// let mut t = Table::new("demo", &["a", "b"]);
    /// t.push_row(vec!["1".into(), "x,y".into()]);
    /// assert_eq!(t.to_csv(), "a,b\n1,\"x,y\"\n");
    /// ```
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let mut line = |cells: &[String]| {
            let row: Vec<String> = cells.iter().map(|c| cell(c)).collect();
            out.push_str(&row.join(","));
            out.push('\n');
        };
        line(&self.headers);
        for row in &self.rows {
            line(row);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        writeln!(f)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<1$}|", "", w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// An x/y series with an ASCII rendering (one experiment "figure").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    title: String,
    x_label: String,
    y_label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Series {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The series title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The collected points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Renders the series as two-column CSV (`x,y`).
    ///
    /// # Examples
    ///
    /// ```
    /// use crn_stats::Series;
    /// let mut s = Series::new("t", "n", "slots");
    /// s.push(2.0, 8.5);
    /// assert_eq!(s.to_csv(), "n,slots\n2,8.5\n");
    /// ```
    pub fn to_csv(&self) -> String {
        let mut out = format!("{},{}\n", self.x_label, self.y_label);
        for &(x, y) in &self.points {
            out.push_str(&format!("{x},{y}\n"));
        }
        out
    }

    /// Renders a simple horizontal bar chart, one line per point.
    fn render_bars(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max_y = self
            .points
            .iter()
            .map(|&(_, y)| y)
            .fold(f64::NEG_INFINITY, f64::max);
        if !max_y.is_finite() || max_y <= 0.0 {
            return Ok(());
        }
        const WIDTH: usize = 48;
        for &(x, y) in &self.points {
            let bar = ((y / max_y) * WIDTH as f64).round().max(0.0) as usize;
            writeln!(f, "{x:>12.2} | {:#<bar$}", "", bar = bar)?;
        }
        Ok(())
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        writeln!(f)?;
        writeln!(f, "| {} | {} |", self.x_label, self.y_label)?;
        writeln!(f, "|---|---|")?;
        for &(x, y) in &self.points {
            writeln!(f, "| {x} | {y:.3} |")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "{} vs {} (bars scaled to max):",
            self.y_label, self.x_label
        )?;
        self.render_bars(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "12345".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| name  | value |"));
        assert!(s.contains("| alpha | 1     |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("x", &["name", "note"]);
        t.push_row(vec!["plain".into(), "a,b".into()]);
        t.push_row(vec!["quoted\"".into(), "line\nbreak".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("name,note\n"));
        assert!(csv.contains("plain,\"a,b\"\n"));
        assert!(csv.contains("\"quoted\"\"\",\"line\nbreak\"\n"));
    }

    #[test]
    fn series_renders_points_and_bars() {
        let mut s = Series::new("fig", "n", "slots");
        s.push(2.0, 10.0);
        s.push(4.0, 20.0);
        let out = s.to_string();
        assert!(out.contains("## fig"));
        assert!(out.contains("| 2 | 10.000 |"));
        assert!(out.contains('#'), "bars missing: {out}");
        assert_eq!(s.points().len(), 2);
    }

    #[test]
    fn empty_series_renders_without_bars() {
        let s = Series::new("empty", "x", "y");
        let out = s.to_string();
        assert!(out.contains("## empty"));
    }

    #[test]
    fn series_with_zero_max_does_not_panic() {
        let mut s = Series::new("zero", "x", "y");
        s.push(1.0, 0.0);
        let _ = s.to_string();
    }
}
