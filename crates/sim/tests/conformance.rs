//! Integration tests for the Section 2 conformance validator against
//! real engine runs: clean runs across channel models, fault schedules
//! and jamming must produce zero violations, and deliberately
//! corrupted records must be caught — a checker that cannot fail
//! checks nothing.

use crn_sim::assignment::{full_overlap, shared_core};
use crn_sim::channel_model::{DynamicSharedCore, StaticChannels};
use crn_sim::conformance::{check_slot, replay_winners, Rule};
use crn_sim::interference::Interference;
use crn_sim::rng::SimRng;
use crn_sim::{
    Action, ChannelModel, Event, FaultSchedule, Flaky, GlobalChannel, LocalChannel, Network,
    NodeCtx, NodeId, Protocol, SlotActivity,
};
use proptest::prelude::*;
use rand::Rng;

/// A COGCAST-shaped hopper: informed nodes broadcast on a uniform
/// local channel, the rest hop and listen.
struct Hopper {
    informed: bool,
}

impl Protocol<u8> for Hopper {
    fn decide(&mut self, ctx: &NodeCtx<'_>, rng: &mut SimRng) -> Action<u8> {
        let ch = LocalChannel(rng.gen_range(0..ctx.c as u32));
        if self.informed {
            Action::Broadcast(ch, 1)
        } else {
            Action::Listen(ch)
        }
    }
    fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<u8>) {
        if matches!(event, Event::Received { .. }) {
            self.informed = true;
        }
    }
}

fn hoppers(n: usize) -> Vec<Hopper> {
    (0..n).map(|i| Hopper { informed: i == 0 }).collect()
}

fn assert_clean_run<CM: crn_sim::ChannelModel>(
    net: &mut Network<u8, impl Protocol<u8>, CM>,
    seed: u64,
    slots: u64,
    label: &str,
) {
    let mut trace: Vec<SlotActivity> = Vec::new();
    for s in 0..slots {
        trace.push(net.step().clone());
        let violations = net.check_conformance();
        assert!(violations.is_empty(), "{label}, slot {s}: {violations:?}");
    }
    assert_eq!(
        replay_winners(seed, &trace),
        vec![],
        "{label}: winners must match the ENGINE-stream replay"
    );
}

#[test]
fn clean_runs_are_conformant_across_models() {
    // Static local labels.
    let model = StaticChannels::local(shared_core(12, 5, 2).unwrap(), 7);
    let mut net = Network::new(model, hoppers(12), 7).unwrap();
    assert_clean_run(&mut net, 7, 300, "static local");

    // Static global labels.
    let model = StaticChannels::global(full_overlap(8, 4).unwrap());
    let mut net = Network::new(model, hoppers(8), 8).unwrap();
    assert_clean_run(&mut net, 8, 300, "static global");

    // Churned assignment: sets change under the protocol's feet.
    let model = DynamicSharedCore::new(10, 5, 2, 25, 0.6, 9).unwrap();
    let mut net = Network::new(model, hoppers(10), 9).unwrap();
    assert_clean_run(&mut net, 9, 300, "dynamic churned");
}

#[test]
fn faulty_runs_are_conformant() {
    for schedule in [
        FaultSchedule::Random { p: 0.3 },
        FaultSchedule::Window { from: 10, to: 60 },
        FaultSchedule::Periodic { period: 7, down: 3 },
    ] {
        let model = StaticChannels::local(shared_core(10, 5, 2).unwrap(), 3);
        let protos: Vec<Flaky<Hopper>> = hoppers(10)
            .into_iter()
            .map(|p| Flaky::new(p, schedule.clone()))
            .collect();
        let mut net = Network::new(model, protos, 3).unwrap();
        assert_clean_run(&mut net, 3, 200, "faulty");
    }
}

/// An inline n-uniform jammer (crn-sim cannot depend on crn-jamming):
/// jams a per-node rotating window of `budget` channels and declares
/// the budget, so the Theorem 18 clauses are exercised.
struct WindowJammer {
    c: usize,
    budget: usize,
    slot: u64,
}

impl Interference for WindowJammer {
    fn advance(&mut self, slot: u64, _rng: &mut SimRng) {
        self.slot = slot;
    }
    fn is_jammed(&self, node: NodeId, channel: GlobalChannel) -> bool {
        let start = (self.slot as usize + node.index()) % self.c;
        (0..self.budget).any(|off| (start + off) % self.c == channel.index())
    }
    fn jam_budget(&self) -> Option<usize> {
        Some(self.budget)
    }
}

#[test]
fn jammed_runs_are_conformant_including_budget_clauses() {
    // full_overlap(10, 8) with budget 2: effective overlap 8 - 4 = 4.
    let model = StaticChannels::local(full_overlap(10, 8).unwrap(), 5);
    let jammer = WindowJammer {
        c: 8,
        budget: 2,
        slot: 0,
    };
    let mut net = Network::with_interference(model, hoppers(10), 5, Box::new(jammer)).unwrap();
    assert_clean_run(&mut net, 5, 300, "jammed");
}

#[test]
fn validator_catches_a_corrupted_winner_from_a_real_run() {
    let model = StaticChannels::global(full_overlap(6, 2).unwrap());
    let mut net = Network::new(model.clone(), hoppers(6), 13).unwrap();
    // Find a slot with a contended channel that also has a listener.
    let corrupted = loop {
        let act = net.step().clone();
        if let Some(ch) = act
            .channels
            .iter()
            .find(|ch| !ch.broadcasters.is_empty() && !ch.listeners.is_empty())
        {
            let listener = ch.listeners[0];
            let channel = ch.channel;
            let mut bad = act;
            for c in &mut bad.channels {
                if c.channel == channel {
                    c.winner = Some(listener);
                }
            }
            break bad;
        }
    };
    let violations = check_slot(&model, None, &corrupted);
    assert!(
        violations.iter().any(|v| v.rule == Rule::WinnerLegitimacy),
        "a listener posing as winner must be flagged: {violations:?}"
    );
}

#[test]
fn validator_catches_an_out_of_set_participant_from_a_real_run() {
    let model = StaticChannels::global(shared_core(6, 3, 1).unwrap());
    let mut net = Network::new(model.clone(), hoppers(6), 17).unwrap();
    let mut act = net.step().clone();
    while act.channels.is_empty() {
        act = net.step().clone();
    }
    // Teleport the record to a channel outside everyone's sets.
    let far = GlobalChannel(model.total_channels() as u32 + 5);
    act.channels.last_mut().unwrap().channel = far;
    let violations = check_slot(&model, None, &act);
    assert!(
        violations.iter().any(|v| v.rule == Rule::ChannelMembership),
        "{violations:?}"
    );
}

/// Scripted protocol with payloads encoding (node, slot) so the event
/// contract can be checked with exact message attribution.
#[derive(Debug, Clone)]
enum Step {
    Broadcast(u32),
    Listen(u32),
    Sleep,
}

struct Scripted {
    id: u32,
    script: Vec<Step>,
    events: Vec<Option<Event<u32>>>,
}

impl Protocol<u32> for Scripted {
    fn decide(&mut self, ctx: &NodeCtx<'_>, _rng: &mut SimRng) -> Action<u32> {
        self.events.push(None);
        match self.script[ctx.slot as usize % self.script.len()] {
            Step::Broadcast(ch) => {
                Action::Broadcast(LocalChannel(ch), self.id * 10_000 + ctx.slot as u32)
            }
            Step::Listen(ch) => Action::Listen(LocalChannel(ch)),
            Step::Sleep => Action::Sleep,
        }
    }
    fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<u32>) {
        *self.events.last_mut().expect("decide ran first") = Some(event);
    }
}

fn step_strategy(c: u32) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..c).prop_map(Step::Broadcast),
        (0..c).prop_map(Step::Listen),
        Just(Step::Sleep),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary scripted workloads on arbitrary full-overlap shapes:
    /// every slot conformant, the whole run replayable, and every
    /// delivered message exactly the winner's (footnote 4 end to end).
    #[test]
    fn random_workloads_are_conformant_and_replayable(
        (n, c, scripts) in (2usize..8, 1u32..5, 1usize..14).prop_flat_map(|(n, c, slots)| {
            (
                Just(n),
                Just(c),
                proptest::collection::vec(
                    proptest::collection::vec(step_strategy(c), slots),
                    n,
                ),
            )
        }),
        seed in 0u64..1000,
    ) {
        let slots = scripts[0].len();
        let model = StaticChannels::global(full_overlap(n, c as usize).unwrap());
        let protos: Vec<Scripted> = scripts
            .iter()
            .enumerate()
            .map(|(i, s)| Scripted { id: i as u32, script: s.clone(), events: Vec::new() })
            .collect();
        let mut net = Network::new(model, protos, seed).unwrap();
        let mut trace = Vec::new();
        for _ in 0..slots {
            trace.push(net.step().clone());
            let violations = net.check_conformance();
            prop_assert!(violations.is_empty(), "{violations:?}");
        }
        prop_assert_eq!(replay_winners(seed, &trace), vec![]);

        // Event contract: every listener on a winning channel received
        // exactly the winner's message.
        let protos = net.into_protocols();
        for (slot, act) in trace.iter().enumerate() {
            for ch in &act.channels {
                let expected = ch.winner.map(|w| w.0 * 10_000 + slot as u32);
                for &l in &ch.listeners {
                    let ev = protos[l.index()].events[slot].clone().expect("listener observes");
                    match (ch.winner, ev) {
                        (Some(w), Event::Received { from, msg }) => {
                            prop_assert_eq!(from, w);
                            prop_assert_eq!(msg, expected.unwrap());
                        }
                        (None, Event::Silence) => {}
                        (winner, other) => {
                            return Err(TestCaseError::fail(format!(
                                "slot {slot}, {l}: winner {winner:?} but observed {other:?}"
                            )));
                        }
                    }
                }
            }
        }
    }
}
