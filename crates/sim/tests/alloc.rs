//! Proves the slot engine is allocation-free in steady state.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up period long enough for every scratch buffer and recycled
//! [`ChannelActivity`] record to reach its high-water capacity, stepping
//! the network must perform zero heap allocations — with and without an
//! interference model installed.
//!
//! This file intentionally contains a single `#[test]` so no concurrent
//! test can allocate while the counter is being read.
//!
//! The guarantee is scoped to the default build: the `validate` feature
//! deliberately trades allocation-freedom for per-slot conformance
//! checking, so this test is compiled out under it.
#![cfg(not(feature = "validate"))]

use crn_sim::assignment::shared_core;
use crn_sim::channel_model::StaticChannels;
use crn_sim::interference::Interference;
use crn_sim::rng::SimRng;
use crn_sim::{Action, Event, GlobalChannel, LocalChannel, Network, NodeCtx, NodeId, Protocol};
use rand::Rng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// A COGCAST-shaped workload: informed nodes broadcast on a uniformly
/// random local channel, uninformed nodes hop and listen, and listeners
/// that receive become informed — the same per-slot engine load as the
/// broadcast experiments, without depending on `crn-core`.
struct Hopper {
    informed: bool,
}

impl Protocol<u8> for Hopper {
    fn decide(&mut self, ctx: &NodeCtx<'_>, rng: &mut SimRng) -> Action<u8> {
        let ch = LocalChannel(rng.gen_range(0..ctx.c as u32));
        if self.informed {
            Action::Broadcast(ch, 0xAB)
        } else {
            Action::Listen(ch)
        }
    }

    fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<u8>) {
        if matches!(event, Event::Received { .. }) {
            self.informed = true;
        }
    }
}

/// Jams one (node, channel) pair every other slot, so the interference
/// code path (intent staging + jam filtering) is exercised too.
struct AlternatingJammer {
    odd_slot: bool,
}

impl Interference for AlternatingJammer {
    fn advance(&mut self, slot: u64, _rng: &mut SimRng) {
        self.odd_slot = slot % 2 == 1;
    }

    fn is_jammed(&self, node: NodeId, channel: GlobalChannel) -> bool {
        self.odd_slot && node == NodeId(1) && channel == GlobalChannel(0)
    }
}

fn hopper_protos(n: usize) -> Vec<Hopper> {
    let mut protos = vec![Hopper { informed: true }];
    protos.extend((1..n).map(|_| Hopper { informed: false }));
    protos
}

fn assert_steady_state_alloc_free(mut step: impl FnMut(), label: &str) {
    // Warm-up: let every scratch buffer, the channel-record pool, and
    // the per-record broadcaster/listener vectors hit their high-water
    // capacities.
    for _ in 0..4000 {
        step();
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..2000 {
        step();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "{label}: expected zero steady-state allocations over 2000 slots, got {}",
        after - before
    );
}

#[test]
fn step_is_allocation_free_in_steady_state() {
    let n = 64;
    let model = StaticChannels::local(shared_core(n, 8, 2).unwrap(), 11);
    let mut net = Network::new(model, hopper_protos(n), 11).unwrap();
    assert_steady_state_alloc_free(
        || {
            net.step();
        },
        "no interference",
    );

    let model = StaticChannels::local(shared_core(n, 8, 2).unwrap(), 12);
    let mut jammed_net = Network::with_interference(
        model,
        hopper_protos(n),
        12,
        Box::new(AlternatingJammer { odd_slot: false }),
    )
    .unwrap();
    assert_steady_state_alloc_free(
        || {
            jammed_net.step();
        },
        "with interference",
    );

    // Parallel path: a dedicated 2-worker pool at threshold 1, so every
    // step fans decide/observe across the pool. The pool's threads and
    // job plumbing are built up front (and the warm-up absorbs any
    // first-epoch laziness); the steady-state contract is the same zero
    // as the sequential path — no per-slot spawns, boxes or channels.
    let model = StaticChannels::local(shared_core(n, 8, 2).unwrap(), 13);
    let mut par_net = Network::new(model, hopper_protos(n), 13).unwrap();
    let pool = std::sync::Arc::new(crn_sim::WorkerPool::new(2));
    par_net.set_parallelism(Some(crn_sim::ParConfig::new(pool).with_threshold(1)));
    assert_steady_state_alloc_free(
        || {
            par_net.step();
        },
        "parallel (2 workers)",
    );
}
