//! Property-based verification of the engine against the paper's slot
//! semantics (Section 2), using randomly scripted node behaviour and
//! an independent reference check.
//!
//! For arbitrary scripts we assert, slot by slot:
//! - the activity record reproduces the scripted tunings exactly;
//! - every contended channel has exactly one winner, drawn from its
//!   broadcasters;
//! - every listener on a channel with a winner receives the winner's
//!   message; listeners on quiet channels hear silence;
//! - the winner observes `Delivered`; every other broadcaster observes
//!   `Lost` with the winner's message;
//! - sleepers observe nothing.

use crn_sim::assignment::full_overlap;
use crn_sim::channel_model::StaticChannels;
use crn_sim::rng::SimRng;
use crn_sim::{Action, Event, LocalChannel, Network, NodeCtx, NodeId, Protocol, SlotActivity};
use proptest::prelude::*;

/// A scripted action: what one node does in one slot.
#[derive(Debug, Clone, PartialEq)]
enum Step {
    Broadcast(u32),
    Listen(u32),
    Sleep,
}

#[derive(Debug)]
struct Scripted {
    id: u32,
    script: Vec<Step>,
    events: Vec<Option<Event<u32>>>,
}

impl Protocol<u32> for Scripted {
    fn decide(&mut self, ctx: &NodeCtx<'_>, _rng: &mut SimRng) -> Action<u32> {
        self.events.push(None);
        match self.script[ctx.slot as usize] {
            // Message payload encodes (node, slot) so deliveries can be
            // attributed exactly.
            Step::Broadcast(ch) => {
                Action::Broadcast(LocalChannel(ch), self.id * 10_000 + ctx.slot as u32)
            }
            Step::Listen(ch) => Action::Listen(LocalChannel(ch)),
            Step::Sleep => Action::Sleep,
        }
    }

    fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<u32>) {
        *self.events.last_mut().expect("decide ran first") = Some(event);
    }
}

fn step_strategy(c: u32) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..c).prop_map(Step::Broadcast),
        (0..c).prop_map(Step::Listen),
        Just(Step::Sleep),
    ]
}

fn scripts_strategy() -> impl Strategy<Value = (usize, u32, Vec<Vec<Step>>)> {
    (2usize..7, 1u32..5, 1usize..12).prop_flat_map(|(n, c, slots)| {
        (
            Just(n),
            Just(c),
            proptest::collection::vec(proptest::collection::vec(step_strategy(c), slots), n),
        )
    })
}

/// Theorem 18's exclusion at the slot level: a broadcaster whose
/// `(node, channel)` pair is jammed is removed from the slot entirely —
/// its message is never delivered to anyone, it never wins contention,
/// and it observes `Jammed` rather than a contention outcome.
#[test]
fn jammed_broadcaster_never_delivers_and_never_wins() {
    use crn_sim::interference::Interference;
    use crn_sim::GlobalChannel;

    /// Permanently jams node 0 on global channel 0.
    struct JamSource;
    impl Interference for JamSource {
        fn advance(&mut self, _slot: u64, _rng: &mut SimRng) {}
        fn is_jammed(&self, node: NodeId, channel: GlobalChannel) -> bool {
            node == NodeId(0) && channel == GlobalChannel(0)
        }
    }

    let slots = 200usize;
    let script = |step: Step| vec![step; slots];
    let protos = vec![
        Scripted {
            id: 0,
            script: script(Step::Broadcast(0)),
            events: Vec::new(),
        },
        Scripted {
            id: 1,
            script: script(Step::Broadcast(0)),
            events: Vec::new(),
        },
        Scripted {
            id: 2,
            script: script(Step::Listen(0)),
            events: Vec::new(),
        },
    ];
    let model = StaticChannels::global(full_overlap(3, 1).unwrap());
    let mut net = Network::with_interference(model, protos, 5, Box::new(JamSource)).unwrap();
    for _ in 0..slots {
        let activity = net.step();
        assert_eq!(activity.jammed, 1);
        let ch = activity.on_channel(GlobalChannel(0)).expect("busy channel");
        assert!(
            !ch.broadcasters.contains(&NodeId(0)),
            "jammed broadcaster must not contend"
        );
        assert_ne!(
            ch.winner,
            Some(NodeId(0)),
            "jammed broadcaster must not win"
        );
    }
    let protos = net.into_protocols();
    for ev in protos[0].events.iter() {
        assert_eq!(
            ev.clone().expect("broadcaster observes"),
            Event::Jammed,
            "jammed broadcaster observes only jamming"
        );
    }
    for (slot, ev) in protos[2].events.iter().enumerate() {
        // Node 1 is the only live broadcaster, so the listener receives
        // its message every slot — never node 0's.
        assert_eq!(
            ev.clone().expect("listener observes"),
            Event::Received {
                from: NodeId(1),
                msg: 10_000 + slot as u32
            }
        );
    }
}

/// With local labels (`labels_are_global() == false`), protocols must
/// not be able to see the global channel ids behind their labels:
/// `NodeCtx.channels` is `None` in both `decide` and `observe`. With
/// global labels it is `Some` — the same assignment, observed through
/// both models.
#[test]
fn local_labels_never_expose_global_channel_ids() {
    use crn_sim::channel_model::ChannelModel;

    /// Records whether `ctx.channels` was populated, every call.
    struct CtxSpy {
        saw_channels: Vec<bool>,
    }
    impl Protocol<u8> for CtxSpy {
        fn decide(&mut self, ctx: &NodeCtx<'_>, _rng: &mut SimRng) -> Action<u8> {
            self.saw_channels.push(ctx.channels.is_some());
            Action::Broadcast(LocalChannel(0), 1)
        }
        fn observe(&mut self, ctx: &NodeCtx<'_>, _event: Event<u8>) {
            self.saw_channels.push(ctx.channels.is_some());
        }
    }

    for global in [false, true] {
        let assignment = full_overlap(4, 3).unwrap();
        let model = if global {
            StaticChannels::global(assignment)
        } else {
            StaticChannels::local(assignment, 17)
        };
        assert_eq!(model.labels_are_global(), global);
        let protos = (0..4)
            .map(|_| CtxSpy {
                saw_channels: Vec::new(),
            })
            .collect();
        let mut net = Network::new(model, protos, 17).unwrap();
        for _ in 0..50 {
            net.step();
        }
        for (i, spy) in net.into_protocols().into_iter().enumerate() {
            assert!(!spy.saw_channels.is_empty());
            for saw in spy.saw_channels {
                assert_eq!(
                    saw, global,
                    "node {i}: ctx.channels must be Some iff labels are global (global={global})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn engine_matches_reference_semantics((n, c, scripts) in scripts_strategy()) {
        let slots = scripts[0].len();
        let model = StaticChannels::global(full_overlap(n, c as usize).unwrap());
        let protos: Vec<Scripted> = scripts
            .iter()
            .enumerate()
            .map(|(i, s)| Scripted { id: i as u32, script: s.clone(), events: Vec::new() })
            .collect();
        let mut net = Network::new(model, protos, 99).unwrap();
        let mut activities: Vec<SlotActivity> = Vec::new();
        for _ in 0..slots {
            activities.push(net.step().clone());
        }
        let protos = net.into_protocols();

        for (slot, activity) in activities.iter().enumerate() {
            // Reference: group scripted tunings per channel.
            let mut per_channel: std::collections::BTreeMap<u32, (Vec<u32>, Vec<u32>)> =
                std::collections::BTreeMap::new();
            let mut sleepers = 0;
            for (i, script) in scripts.iter().enumerate() {
                match script[slot] {
                    Step::Broadcast(ch) => per_channel.entry(ch).or_default().0.push(i as u32),
                    Step::Listen(ch) => per_channel.entry(ch).or_default().1.push(i as u32),
                    Step::Sleep => sleepers += 1,
                }
            }
            prop_assert_eq!(activity.sleepers, sleepers);
            prop_assert_eq!(activity.channels.len(), per_channel.len());

            for ch_act in &activity.channels {
                let (bs, ls) = per_channel
                    .get(&(ch_act.channel.0))
                    .expect("engine reported an untuned channel");
                let got_bs: Vec<u32> = ch_act.broadcasters.iter().map(|x| x.0).collect();
                let got_ls: Vec<u32> = ch_act.listeners.iter().map(|x| x.0).collect();
                prop_assert_eq!(&got_bs, bs);
                prop_assert_eq!(&got_ls, ls);
                // Winner drawn from the broadcasters, iff any exist.
                match ch_act.winner {
                    Some(w) => prop_assert!(bs.contains(&w.0)),
                    None => prop_assert!(bs.is_empty()),
                }
                let expected_msg =
                    ch_act.winner.map(|w| w.0 * 10_000 + slot as u32);

                // Event checks per participant.
                for &b in bs {
                    let ev = protos[b as usize].events[slot].clone().expect("broadcaster observes");
                    if Some(NodeId(b)) == ch_act.winner {
                        prop_assert_eq!(ev, Event::Delivered);
                    } else {
                        prop_assert_eq!(
                            ev,
                            Event::Lost {
                                winner: ch_act.winner.unwrap(),
                                msg: expected_msg.unwrap()
                            }
                        );
                    }
                }
                for &l in ls {
                    let ev = protos[l as usize].events[slot].clone().expect("listener observes");
                    match ch_act.winner {
                        Some(w) => prop_assert_eq!(
                            ev,
                            Event::Received { from: w, msg: expected_msg.unwrap() }
                        ),
                        None => prop_assert_eq!(ev, Event::Silence),
                    }
                }
            }

            // Sleepers observed nothing.
            for (i, script) in scripts.iter().enumerate() {
                if script[slot] == Step::Sleep {
                    prop_assert!(protos[i].events[slot].is_none());
                }
            }
        }
    }
}
