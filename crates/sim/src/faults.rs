//! Fault injection: transient node outages.
//!
//! The paper argues COGCAST's uniform structure makes it robust to
//! "changes to the network conditions, temporary faults, and so on"
//! (Section 1). [`Flaky`] makes that claim testable: it wraps any
//! protocol and forces the node's radio off (a [`Action::Sleep`])
//! according to a [`FaultSchedule`], without the wrapped protocol
//! observing anything for the suppressed slot — exactly a node that
//! was powered down.

use crate::proto::{Action, Event, NodeCtx, Protocol};
use crate::rng::SimRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// When a node is down.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultSchedule {
    /// Never down.
    None,
    /// Down in each slot independently with this probability
    /// (crash-recover churn).
    Random {
        /// Per-slot outage probability in `[0, 1]`.
        p: f64,
    },
    /// Down during `[from, to)` (a single outage window).
    Window {
        /// First down slot.
        from: u64,
        /// First up slot after the outage.
        to: u64,
    },
    /// Down periodically: slots where `slot % period < down` are lost
    /// (duty-cycled radios).
    Periodic {
        /// Cycle length in slots.
        period: u64,
        /// Down slots at the start of each cycle.
        down: u64,
    },
}

impl FaultSchedule {
    /// Whether the node is down in `slot`.
    ///
    /// # Examples
    ///
    /// ```
    /// use crn_sim::faults::FaultSchedule;
    /// use rand::SeedableRng;
    /// let mut rng = crn_sim::rng::SimRng::seed_from_u64(0);
    /// let w = FaultSchedule::Window { from: 5, to: 8 };
    /// assert!(!w.is_down(4, &mut rng));
    /// assert!(w.is_down(5, &mut rng));
    /// assert!(w.is_down(7, &mut rng));
    /// assert!(!w.is_down(8, &mut rng));
    /// ```
    pub fn is_down(&self, slot: u64, rng: &mut SimRng) -> bool {
        match *self {
            FaultSchedule::None => false,
            FaultSchedule::Random { p } => p > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0)),
            FaultSchedule::Window { from, to } => (from..to).contains(&slot),
            FaultSchedule::Periodic { period, down } => {
                period > 0 && slot % period < down.min(period)
            }
        }
    }
}

/// Wraps a protocol with a [`FaultSchedule`]: in down slots the node
/// sleeps and the inner protocol is not consulted at all.
///
/// # Examples
///
/// ```
/// use crn_sim::faults::{FaultSchedule, Flaky};
/// let node = Flaky::new("any protocol", FaultSchedule::Random { p: 0.2 });
/// assert_eq!(*node.inner(), "any protocol");
/// assert_eq!(node.downtime(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Flaky<P> {
    inner: P,
    schedule: FaultSchedule,
    down_this_slot: bool,
    downtime: u64,
}

impl<P> Flaky<P> {
    /// Wraps `inner` with the given outage schedule.
    pub fn new(inner: P, schedule: FaultSchedule) -> Self {
        Flaky {
            inner,
            schedule,
            down_this_slot: false,
            downtime: 0,
        }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Consumes the wrapper, returning the inner protocol.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Total slots this node has been down so far.
    pub fn downtime(&self) -> u64 {
        self.downtime
    }
}

impl<M, P: Protocol<M>> Protocol<M> for Flaky<P> {
    fn decide(&mut self, ctx: &NodeCtx<'_>, rng: &mut SimRng) -> Action<M> {
        self.down_this_slot = self.schedule.is_down(ctx.slot, rng);
        if self.down_this_slot {
            self.downtime += 1;
            Action::Sleep
        } else {
            self.inner.decide(ctx, rng)
        }
    }

    fn observe(&mut self, ctx: &NodeCtx<'_>, event: Event<M>) {
        if !self.down_this_slot {
            self.inner.observe(ctx, event);
        }
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LocalChannel;
    use rand::SeedableRng;

    /// Inner protocol that records how often it was consulted.
    #[derive(Debug, Default)]
    struct Probe {
        decides: u64,
        observes: u64,
    }

    impl Protocol<u8> for Probe {
        fn decide(&mut self, _ctx: &NodeCtx<'_>, _rng: &mut SimRng) -> Action<u8> {
            self.decides += 1;
            Action::Listen(LocalChannel(0))
        }
        fn observe(&mut self, _ctx: &NodeCtx<'_>, _event: Event<u8>) {
            self.observes += 1;
        }
    }

    fn ctx(slot: u64) -> NodeCtx<'static> {
        NodeCtx {
            id: crate::NodeId(0),
            slot,
            n: 1,
            c: 1,
            k: 1,
            channels: None,
        }
    }

    #[test]
    fn window_schedule_boundaries() {
        let mut rng = SimRng::seed_from_u64(0);
        let s = FaultSchedule::Window { from: 2, to: 4 };
        let up: Vec<bool> = (0..6).map(|t| s.is_down(t, &mut rng)).collect();
        assert_eq!(up, vec![false, false, true, true, false, false]);
    }

    #[test]
    fn periodic_schedule_cycles() {
        let mut rng = SimRng::seed_from_u64(0);
        let s = FaultSchedule::Periodic { period: 4, down: 1 };
        let down: Vec<bool> = (0..8).map(|t| s.is_down(t, &mut rng)).collect();
        assert_eq!(
            down,
            vec![true, false, false, false, true, false, false, false]
        );
    }

    #[test]
    fn periodic_down_capped_at_period() {
        let mut rng = SimRng::seed_from_u64(0);
        let s = FaultSchedule::Periodic { period: 3, down: 9 };
        assert!((0..9).all(|t| s.is_down(t, &mut rng)), "always down");
        let s0 = FaultSchedule::Periodic { period: 0, down: 1 };
        assert!(!(s0.is_down(5, &mut rng)), "period 0 never fires");
    }

    #[test]
    fn random_schedule_rate_is_plausible() {
        let mut rng = SimRng::seed_from_u64(1);
        let s = FaultSchedule::Random { p: 0.3 };
        let downs = (0..10_000).filter(|&t| s.is_down(t, &mut rng)).count();
        assert!((2500..3500).contains(&downs), "rate off: {downs}");
    }

    #[test]
    fn down_slots_bypass_inner_protocol() {
        let mut f = Flaky::new(Probe::default(), FaultSchedule::Window { from: 0, to: 3 });
        let mut rng = SimRng::seed_from_u64(0);
        for slot in 0..5u64 {
            let action = f.decide(&ctx(slot), &mut rng);
            if slot < 3 {
                assert_eq!(action, Action::Sleep);
            } else {
                assert_eq!(action, Action::Listen(LocalChannel(0)));
                f.observe(&ctx(slot), Event::Silence);
            }
        }
        assert_eq!(f.inner().decides, 2);
        assert_eq!(f.inner().observes, 2);
        assert_eq!(f.downtime(), 3);
        let probe = f.into_inner();
        assert_eq!(probe.decides, 2);
    }

    #[test]
    fn none_schedule_is_transparent() {
        let mut f = Flaky::new(Probe::default(), FaultSchedule::None);
        let mut rng = SimRng::seed_from_u64(0);
        for slot in 0..4u64 {
            f.decide(&ctx(slot), &mut rng);
            f.observe(&ctx(slot), Event::Silence);
        }
        assert_eq!(f.inner().decides, 4);
        assert_eq!(f.downtime(), 0);
    }
}
