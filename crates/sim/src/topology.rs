//! Connectivity topologies for multi-hop media.
//!
//! The paper studies the single-hop case; the broadcast literature it
//! discusses (Kondareddy–Agrawal, Song–Xie) is multi-hop. A
//! [`Topology`] fixes which node pairs can hear each other; the
//! [`crate::medium::OracleMultihop`] medium delivers transmissions only
//! along its edges.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An undirected connectivity graph on `n` nodes.
///
/// # Examples
///
/// ```
/// use crn_sim::Topology;
/// let t = Topology::line(4);
/// assert!(t.are_neighbors(0, 1));
/// assert!(!t.are_neighbors(0, 2));
/// assert_eq!(t.diameter(), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    n: usize,
    /// Adjacency lists, sorted.
    adj: Vec<Vec<usize>>,
}

impl Topology {
    /// Builds a topology from an edge list (self-loops and duplicates
    /// are ignored).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for n = {n}");
            if a != b && !adj[a].contains(&b) {
                adj[a].push(b);
                adj[b].push(a);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        Topology { n, adj }
    }

    /// The path `0 — 1 — … — n−1`.
    pub fn line(n: usize) -> Self {
        Topology::from_edges(n, &(1..n).map(|i| (i - 1, i)).collect::<Vec<_>>())
    }

    /// The cycle on `n` nodes (`n ≥ 3` for a proper ring; smaller
    /// values degrade to a line).
    pub fn ring(n: usize) -> Self {
        let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        if n >= 3 {
            edges.push((n - 1, 0));
        }
        Topology::from_edges(n, &edges)
    }

    /// The `w × h` grid with 4-neighborhoods; node `(x, y)` has index
    /// `y·w + x`.
    pub fn grid(w: usize, h: usize) -> Self {
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                if x + 1 < w {
                    edges.push((i, i + 1));
                }
                if y + 1 < h {
                    edges.push((i, i + w));
                }
            }
        }
        Topology::from_edges(w * h, &edges)
    }

    /// The complete graph (the paper's single-hop setting).
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        Topology::from_edges(n, &edges)
    }

    /// An Erdős–Rényi random graph: each pair is an edge independently
    /// with probability `p`.
    pub fn erdos_renyi(n: usize, p: f64, rng: &mut impl Rng) -> Self {
        let p = p.clamp(0.0, 1.0);
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if p > 0.0 && rng.gen_bool(p) {
                    edges.push((a, b));
                }
            }
        }
        Topology::from_edges(n, &edges)
    }

    /// A random unit-disk graph: `n` points uniform in the unit square,
    /// an edge whenever two points are within `radius`.
    pub fn unit_disk(n: usize, radius: f64, rng: &mut impl Rng) -> Self {
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let r2 = radius * radius;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let (dx, dy) = (pts[a].0 - pts[b].0, pts[a].1 - pts[b].1);
                if dx * dx + dy * dy <= r2 {
                    edges.push((a, b));
                }
            }
        }
        Topology::from_edges(n, &edges)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The sorted neighbor list of `node`.
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.adj[node]
    }

    /// Whether `a` and `b` share an edge.
    pub fn are_neighbors(&self, a: usize, b: usize) -> bool {
        self.adj[a].binary_search(&b).is_ok()
    }

    /// Total number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|l| l.len()).sum::<usize>() / 2
    }

    /// True when every pair of distinct nodes shares an edge — the
    /// paper's single-hop setting, where a multi-hop medium degenerates
    /// to the collision oracle.
    pub fn is_complete(&self) -> bool {
        self.adj.iter().all(|l| l.len() + 1 == self.n) || self.n <= 1
    }

    /// BFS distances from `from` (`usize::MAX` for unreachable nodes).
    pub fn distances_from(&self, from: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        dist[from] = 0;
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// True if every node is reachable from node 0 (and `n > 0`).
    pub fn is_connected(&self) -> bool {
        self.n > 0 && self.distances_from(0).iter().all(|&d| d != usize::MAX)
    }

    /// The graph diameter, or `None` if disconnected.
    pub fn diameter(&self) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        let mut best = 0;
        for from in 0..self.n {
            let d = self.distances_from(from);
            let m = *d.iter().max().expect("n > 0");
            if m == usize::MAX {
                return None;
            }
            best = best.max(m);
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use rand::SeedableRng;

    #[test]
    fn line_and_ring_shapes() {
        let l = Topology::line(5);
        assert_eq!(l.edge_count(), 4);
        assert_eq!(l.diameter(), Some(4));
        let r = Topology::ring(5);
        assert_eq!(r.edge_count(), 5);
        assert_eq!(r.diameter(), Some(2));
        assert!(r.are_neighbors(4, 0));
    }

    #[test]
    fn grid_shape() {
        let g = Topology::grid(3, 3);
        assert_eq!(g.len(), 9);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.diameter(), Some(4));
        assert!(g.are_neighbors(0, 1));
        assert!(g.are_neighbors(0, 3));
        assert!(!g.are_neighbors(0, 4));
    }

    #[test]
    fn complete_is_diameter_one() {
        let c = Topology::complete(6);
        assert_eq!(c.diameter(), Some(1));
        assert_eq!(c.edge_count(), 15);
    }

    #[test]
    fn completeness_detection() {
        assert!(Topology::complete(6).is_complete());
        assert!(Topology::complete(1).is_complete());
        assert!(Topology::complete(0).is_complete());
        assert!(Topology::ring(3).is_complete(), "K3 is a ring");
        assert!(!Topology::ring(4).is_complete());
        assert!(!Topology::line(3).is_complete());
    }

    #[test]
    fn singleton_and_disconnected() {
        let s = Topology::complete(1);
        assert_eq!(s.diameter(), Some(0));
        assert!(s.is_connected());
        let d = Topology::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!d.is_connected());
        assert_eq!(d.diameter(), None);
    }

    #[test]
    fn self_loops_and_duplicates_ignored() {
        let t = Topology::from_edges(3, &[(0, 0), (0, 1), (1, 0), (0, 1)]);
        assert_eq!(t.edge_count(), 1);
        assert!(!t.are_neighbors(0, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Topology::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        let empty = Topology::erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let full = Topology::erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn erdos_renyi_density_tracks_p() {
        let mut rng = SimRng::seed_from_u64(9);
        let t = Topology::erdos_renyi(40, 0.25, &mut rng);
        let expected = (40 * 39 / 2) as f64 * 0.25;
        let got = t.edge_count() as f64;
        assert!(
            (got - expected).abs() < expected * 0.4,
            "edges {got} vs expected ~{expected}"
        );
    }

    #[test]
    fn unit_disk_large_radius_is_complete() {
        let mut rng = SimRng::seed_from_u64(1);
        let t = Topology::unit_disk(8, 2.0, &mut rng);
        assert_eq!(t.edge_count(), 28);
    }

    #[test]
    fn unit_disk_small_radius_is_sparse() {
        let mut rng = SimRng::seed_from_u64(2);
        let t = Topology::unit_disk(30, 0.05, &mut rng);
        assert!(t.edge_count() < 30, "edges: {}", t.edge_count());
    }

    #[test]
    fn distances_match_line() {
        let l = Topology::line(6);
        assert_eq!(l.distances_from(0), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(l.distances_from(3), vec![3, 2, 1, 0, 1, 2]);
    }
}
