//! Strongly-typed identifiers used throughout the simulator.
//!
//! The paper's model distinguishes three "name spaces" that are easy to
//! confuse in an implementation: the *global* (oracle-view) channel space,
//! the per-node *local* channel labels, and node identities. Each gets a
//! newtype so the compiler keeps them apart.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A unique node identity.
///
/// The paper assumes each of the `n` nodes has a unique identity; COGCOMP's
/// mediator election picks the *smallest* identifier in a cluster, so
/// `NodeId` is ordered.
///
/// # Examples
///
/// ```
/// use crn_sim::NodeId;
/// let a = NodeId(3);
/// let b = NodeId(7);
/// assert!(a < b);
/// assert_eq!(a.to_string(), "n3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index of this node.
    ///
    /// ```
    /// # use crn_sim::NodeId;
    /// assert_eq!(NodeId(5).index(), 5);
    /// ```
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A channel identifier in the *global* (oracle) channel space `0..C`.
///
/// Nodes in the local-label model never observe these directly; they are
/// used by the simulator to decide which transmissions physically collide,
/// and by global-label algorithms (which are a special case of the model).
///
/// # Examples
///
/// ```
/// use crn_sim::GlobalChannel;
/// let q = GlobalChannel(12);
/// assert_eq!(q.index(), 12);
/// assert_eq!(q.to_string(), "g12");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct GlobalChannel(pub u32);

impl GlobalChannel {
    /// Returns the raw index of this channel in the global space.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GlobalChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<u32> for GlobalChannel {
    fn from(v: u32) -> Self {
        GlobalChannel(v)
    }
}

/// A channel label in a node's *local* label space `0..c`.
///
/// Each node assigns arbitrary labels to its `c` available channels; the
/// same physical channel may carry different local labels at different
/// nodes (Section 2 of the paper). Protocols select channels exclusively
/// through local labels; the engine translates them to [`GlobalChannel`]s.
///
/// # Examples
///
/// ```
/// use crn_sim::LocalChannel;
/// let l = LocalChannel(0);
/// assert_eq!(l.index(), 0);
/// assert_eq!(l.to_string(), "l0");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LocalChannel(pub u32);

impl LocalChannel {
    /// Returns the raw index of this label in the node's local space.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LocalChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<u32> for LocalChannel {
    fn from(v: u32) -> Self {
        LocalChannel(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_ordering_matches_raw() {
        assert!(NodeId(0) < NodeId(1));
        assert!(NodeId(10) > NodeId(9));
        assert_eq!(NodeId(4), NodeId(4));
    }

    #[test]
    fn display_forms_are_distinct() {
        assert_eq!(NodeId(1).to_string(), "n1");
        assert_eq!(GlobalChannel(1).to_string(), "g1");
        assert_eq!(LocalChannel(1).to_string(), "l1");
    }

    #[test]
    fn ids_are_hashable_and_distinct_types() {
        let mut set = HashSet::new();
        set.insert(NodeId(0));
        set.insert(NodeId(1));
        set.insert(NodeId(0));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn from_u32_round_trips() {
        assert_eq!(NodeId::from(9).index(), 9);
        assert_eq!(GlobalChannel::from(9).index(), 9);
        assert_eq!(LocalChannel::from(9).index(), 9);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId(0));
        assert_eq!(GlobalChannel::default(), GlobalChannel(0));
        assert_eq!(LocalChannel::default(), LocalChannel(0));
    }
}
