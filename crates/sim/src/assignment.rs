//! Static channel assignments and their generators.
//!
//! A [`ChannelAssignment`] fixes, for each of the `n` nodes, the set of
//! `c` global channels it may use, subject to the model invariant that
//! every pair of nodes overlaps on at least `k` channels. The generators
//! here produce the overlap *patterns* the paper reasons about:
//!
//! - [`full_overlap`] — everyone shares the same `c` channels (`k = c`),
//!   the "highly congested" end of the spectrum from the Section 4
//!   analysis.
//! - [`shared_core`] — exactly `k` common channels plus per-node disjoint
//!   private blocks; this is the `C = k + n(c-k)` setup used by the
//!   Theorem 16 lower bound and the `Ω(n/k)` aggregation floor.
//! - [`random_with_core`] — `k` common channels plus random private
//!   channels drawn from a pool; tuning the pool size moves between
//!   "widely distributed" (huge pool: pairwise overlap ≈ exactly `k`)
//!   and "congested" (small pool: lots of incidental overlap).
//! - [`clustered`] — groups of nodes share extra group channels on top of
//!   the global core, producing heterogeneous overlap.

use crate::error::SimError;
use crate::ids::GlobalChannel;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A static assignment of channel sets to nodes.
///
/// Invariants (checked by [`ChannelAssignment::validate`]):
/// - every node has exactly `c` distinct channels, all `< C`;
/// - every pair of nodes overlaps on at least `k` channels.
///
/// Per-node channel lists are kept sorted in global order; the engine
/// applies a per-node label permutation on top when simulating the
/// local-label model.
///
/// # Examples
///
/// ```
/// use crn_sim::assignment::shared_core;
/// let a = shared_core(4, 6, 2).unwrap();
/// assert_eq!(a.n(), 4);
/// assert_eq!(a.c(), 6);
/// assert!(a.min_pairwise_overlap() >= 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelAssignment {
    /// Per-node sorted channel sets.
    sets: Vec<Vec<GlobalChannel>>,
    /// Total number of global channels `C`.
    total: usize,
    /// The overlap guarantee this assignment was built for.
    k: usize,
}

impl ChannelAssignment {
    /// Builds an assignment from raw per-node channel sets.
    ///
    /// Sorts and deduplicates each set, then validates the model
    /// invariants.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParams`] if sets are empty, of unequal
    /// size, or reference channels `>= total`; and
    /// [`SimError::OverlapViolation`] if some pair overlaps on fewer than
    /// `k` channels.
    pub fn from_sets(
        mut sets: Vec<Vec<GlobalChannel>>,
        total: usize,
        k: usize,
    ) -> Result<Self, SimError> {
        if sets.is_empty() {
            return Err(SimError::InvalidParams {
                reason: "assignment needs at least one node".into(),
            });
        }
        for s in &mut sets {
            s.sort_unstable();
            s.dedup();
        }
        let c = sets[0].len();
        if c == 0 {
            return Err(SimError::InvalidParams {
                reason: "each node needs at least one channel".into(),
            });
        }
        if sets.iter().any(|s| s.len() != c) {
            return Err(SimError::InvalidParams {
                reason: "all nodes must have the same number of channels c \
                         (use from_ragged_sets for heterogeneous counts)"
                    .into(),
            });
        }
        if sets.iter().any(|s| s.iter().any(|g| g.index() >= total)) {
            return Err(SimError::InvalidParams {
                reason: format!("channel id out of range (C = {total})"),
            });
        }
        if k == 0 || k > c {
            return Err(SimError::InvalidParams {
                reason: format!("k must satisfy 1 <= k <= c (k = {k}, c = {c})"),
            });
        }
        let a = ChannelAssignment { sets, total, k };
        a.validate()?;
        Ok(a)
    }

    /// Builds an assignment in the *generalized* model where nodes may
    /// hold different channel counts (`c_u ≠ c_v`, as in the rendezvous
    /// literature the paper discusses, e.g. Gu et al.'s
    /// `O(max{c_u, c_v}²)` bound). Sets are sorted and deduplicated;
    /// the pairwise-overlap `≥ k` invariant still applies to every
    /// pair.
    ///
    /// # Errors
    ///
    /// Same as [`ChannelAssignment::from_sets`], minus the uniform-size
    /// requirement (`k` must satisfy `k <= min_u c_u`).
    pub fn from_ragged_sets(
        mut sets: Vec<Vec<GlobalChannel>>,
        total: usize,
        k: usize,
    ) -> Result<Self, SimError> {
        if sets.is_empty() {
            return Err(SimError::InvalidParams {
                reason: "assignment needs at least one node".into(),
            });
        }
        for s in &mut sets {
            s.sort_unstable();
            s.dedup();
        }
        let min_c = sets.iter().map(Vec::len).min().expect("non-empty");
        if min_c == 0 {
            return Err(SimError::InvalidParams {
                reason: "each node needs at least one channel".into(),
            });
        }
        if sets.iter().any(|s| s.iter().any(|g| g.index() >= total)) {
            return Err(SimError::InvalidParams {
                reason: format!("channel id out of range (C = {total})"),
            });
        }
        if k == 0 || k > min_c {
            return Err(SimError::InvalidParams {
                reason: format!("k must satisfy 1 <= k <= min c_u (k = {k}, min = {min_c})"),
            });
        }
        let a = ChannelAssignment { sets, total, k };
        a.validate()?;
        Ok(a)
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.sets.len()
    }

    /// Channels per node; for heterogeneous (ragged) assignments the
    /// maximum over nodes (see [`ChannelAssignment::c_of`]).
    pub fn c(&self) -> usize {
        self.sets.iter().map(Vec::len).max().expect("non-empty")
    }

    /// Channels available to `node` specifically.
    ///
    /// # Panics
    ///
    /// Panics if `node >= n`.
    pub fn c_of(&self, node: usize) -> usize {
        self.sets[node].len()
    }

    /// True if every node holds the same number of channels (the
    /// paper's base model).
    pub fn is_uniform(&self) -> bool {
        self.sets.iter().all(|s| s.len() == self.sets[0].len())
    }

    /// The pairwise-overlap guarantee `k` this assignment satisfies.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of global channels `C`.
    pub fn total_channels(&self) -> usize {
        self.total
    }

    /// The sorted channel set of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= n`.
    pub fn channels_of(&self, node: usize) -> &[GlobalChannel] {
        &self.sets[node]
    }

    /// Computes the overlap (number of shared channels) of a node pair.
    ///
    /// Linear merge over the two sorted sets.
    pub fn overlap(&self, a: usize, b: usize) -> usize {
        let (xs, ys) = (&self.sets[a], &self.sets[b]);
        let (mut i, mut j, mut cnt) = (0, 0, 0);
        while i < xs.len() && j < ys.len() {
            match xs[i].cmp(&ys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    cnt += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        cnt
    }

    /// The smallest pairwise overlap over all node pairs (or `c` when
    /// `n == 1`).
    pub fn min_pairwise_overlap(&self) -> usize {
        let n = self.n();
        if n == 1 {
            return self.c();
        }
        let mut min = usize::MAX;
        for a in 0..n {
            for b in (a + 1)..n {
                min = min.min(self.overlap(a, b));
            }
        }
        min
    }

    /// Applies a uniformly random permutation to the *global* channel
    /// id space.
    ///
    /// The generators in this module place structured channels (e.g.
    /// the shared core) at low ids for readability; algorithms that
    /// scan ids in order would exploit that artifact. Permuting the
    /// global ids removes it while preserving every overlap property.
    ///
    /// # Examples
    ///
    /// ```
    /// use crn_sim::assignment::shared_core;
    /// use rand::SeedableRng;
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    /// let a = shared_core(4, 6, 2)?.permute_globals(&mut rng);
    /// assert!(a.min_pairwise_overlap() >= 2);
    /// # Ok::<(), crn_sim::SimError>(())
    /// ```
    #[must_use]
    pub fn permute_globals(mut self, rng: &mut impl Rng) -> Self {
        let mut perm: Vec<u32> = (0..self.total as u32).collect();
        perm.shuffle(rng);
        for set in &mut self.sets {
            for g in set.iter_mut() {
                *g = GlobalChannel(perm[g.index()]);
            }
            set.sort_unstable();
        }
        self
    }

    /// Checks the model invariants against this assignment's `k`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OverlapViolation`] naming the first offending
    /// pair.
    pub fn validate(&self) -> Result<(), SimError> {
        let n = self.n();
        for a in 0..n {
            for b in (a + 1)..n {
                let o = self.overlap(a, b);
                if o < self.k {
                    return Err(SimError::OverlapViolation {
                        a: a as u32,
                        b: b as u32,
                        observed: o,
                        required: self.k,
                    });
                }
            }
        }
        Ok(())
    }
}

fn check_basic(n: usize, c: usize, k: usize) -> Result<(), SimError> {
    if n == 0 {
        return Err(SimError::InvalidParams {
            reason: "n must be at least 1".into(),
        });
    }
    if c == 0 {
        return Err(SimError::InvalidParams {
            reason: "c must be at least 1".into(),
        });
    }
    if k == 0 || k > c {
        return Err(SimError::InvalidParams {
            reason: format!("k must satisfy 1 <= k <= c (k = {k}, c = {c})"),
        });
    }
    Ok(())
}

/// All nodes share the identical channel set `0..c` (so `k = c`).
///
/// This is the maximally *congested* overlap pattern: few channels to
/// search, but heavy contention per channel.
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] if `n == 0` or `c == 0`.
///
/// # Examples
///
/// ```
/// use crn_sim::assignment::full_overlap;
/// let a = full_overlap(8, 4).unwrap();
/// assert_eq!(a.min_pairwise_overlap(), 4);
/// assert_eq!(a.total_channels(), 4);
/// ```
pub fn full_overlap(n: usize, c: usize) -> Result<ChannelAssignment, SimError> {
    check_basic(n, c, c.max(1))?;
    let base: Vec<GlobalChannel> = (0..c as u32).map(GlobalChannel).collect();
    ChannelAssignment::from_sets(vec![base; n], c, c)
}

/// The Theorem 16 setup: `k` channels shared by everyone plus `c - k`
/// *disjoint* private channels per node, for `C = k + n(c-k)` total.
///
/// Pairwise overlap is exactly `k`, and the only usable meeting points
/// are the `k` core channels — the maximally *dispersed* pattern.
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] for inconsistent `(n, c, k)`.
///
/// # Examples
///
/// ```
/// use crn_sim::assignment::shared_core;
/// let a = shared_core(3, 5, 2).unwrap();
/// assert_eq!(a.total_channels(), 2 + 3 * 3);
/// assert_eq!(a.overlap(0, 1), 2);
/// ```
pub fn shared_core(n: usize, c: usize, k: usize) -> Result<ChannelAssignment, SimError> {
    check_basic(n, c, k)?;
    let private = c - k;
    let total = k + n * private;
    let sets = (0..n)
        .map(|i| {
            let mut s: Vec<GlobalChannel> = (0..k as u32).map(GlobalChannel).collect();
            let base = k + i * private;
            s.extend((0..private).map(|j| GlobalChannel((base + j) as u32)));
            s
        })
        .collect();
    ChannelAssignment::from_sets(sets, total, k)
}

/// `k` shared core channels plus `c - k` private channels drawn uniformly
/// (without replacement, per node) from a pool of `pool` non-core
/// channels, for `C = k + pool` total.
///
/// With `pool >> n·(c-k)` private sets rarely collide and pairwise
/// overlap ≈ exactly `k`; with `pool` close to `c - k` the pattern
/// approaches [`full_overlap`]. This is the default workload for the
/// broadcast/aggregation experiments.
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] if `pool < c - k` or the basic
/// parameter constraints fail.
///
/// # Examples
///
/// ```
/// use crn_sim::assignment::random_with_core;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let a = random_with_core(10, 8, 3, 100, &mut rng).unwrap();
/// assert!(a.min_pairwise_overlap() >= 3);
/// assert_eq!(a.total_channels(), 103);
/// ```
pub fn random_with_core(
    n: usize,
    c: usize,
    k: usize,
    pool: usize,
    rng: &mut impl Rng,
) -> Result<ChannelAssignment, SimError> {
    check_basic(n, c, k)?;
    let private = c - k;
    if pool < private {
        return Err(SimError::InvalidParams {
            reason: format!("pool ({pool}) must be at least c - k ({private})"),
        });
    }
    let total = k + pool;
    let pool_ids: Vec<u32> = (k as u32..total as u32).collect();
    let sets = (0..n)
        .map(|_| {
            let mut s: Vec<GlobalChannel> = (0..k as u32).map(GlobalChannel).collect();
            let picks = pool_ids.choose_multiple(rng, private);
            s.extend(picks.map(|&g| GlobalChannel(g)));
            s
        })
        .collect();
    ChannelAssignment::from_sets(sets, total, k)
}

/// The generalized (ragged) model: node `i` holds `cs[i]` channels —
/// `k` shared core channels plus `cs[i] − k` private channels drawn
/// from a pool of `pool` non-core channels (`C = k + pool`).
///
/// This is the heterogeneous setting of the rendezvous literature the
/// paper discusses (`c_u ≠ c_v`); the paper's own bounds apply with
/// `c = max_u c_u`.
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] if any `cs[i] < k`, `cs` is
/// empty, or `pool < max(cs) − k`.
///
/// # Examples
///
/// ```
/// use crn_sim::assignment::ragged_with_core;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let a = ragged_with_core(&[3, 6, 9], 2, 40, &mut rng)?;
/// assert_eq!(a.c_of(0), 3);
/// assert_eq!(a.c_of(2), 9);
/// assert_eq!(a.c(), 9);
/// assert!(!a.is_uniform());
/// assert!(a.min_pairwise_overlap() >= 2);
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn ragged_with_core(
    cs: &[usize],
    k: usize,
    pool: usize,
    rng: &mut impl Rng,
) -> Result<ChannelAssignment, SimError> {
    if cs.is_empty() {
        return Err(SimError::InvalidParams {
            reason: "need at least one node".into(),
        });
    }
    let max_c = *cs.iter().max().expect("non-empty");
    if k == 0 || cs.iter().any(|&c| c < k) {
        return Err(SimError::InvalidParams {
            reason: format!("k must satisfy 1 <= k <= every c_u (k = {k}, cs = {cs:?})"),
        });
    }
    if pool < max_c - k {
        return Err(SimError::InvalidParams {
            reason: format!("pool ({pool}) must be at least max(cs) - k ({})", max_c - k),
        });
    }
    let total = k + pool;
    let pool_ids: Vec<u32> = (k as u32..total as u32).collect();
    let sets = cs
        .iter()
        .map(|&c| {
            let mut s: Vec<GlobalChannel> = (0..k as u32).map(GlobalChannel).collect();
            s.extend(
                pool_ids
                    .choose_multiple(rng, c - k)
                    .map(|&g| GlobalChannel(g)),
            );
            s
        })
        .collect();
    ChannelAssignment::from_ragged_sets(sets, total, k)
}

/// Heterogeneous overlap: a global core of `k` channels, plus per-group
/// pools from which group members draw their private channels.
///
/// Nodes within a group tend to overlap on far more than `k` channels,
/// while cross-group pairs overlap on roughly the `k` core only. Group
/// `i` of `groups` contains the nodes `{j : j % groups == i}`.
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] if `groups == 0`,
/// `group_pool < c - k`, or the basic constraints fail.
///
/// # Examples
///
/// ```
/// use crn_sim::assignment::clustered;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let a = clustered(12, 6, 2, 3, 8, &mut rng).unwrap();
/// assert!(a.min_pairwise_overlap() >= 2);
/// ```
pub fn clustered(
    n: usize,
    c: usize,
    k: usize,
    groups: usize,
    group_pool: usize,
    rng: &mut impl Rng,
) -> Result<ChannelAssignment, SimError> {
    check_basic(n, c, k)?;
    if groups == 0 {
        return Err(SimError::InvalidParams {
            reason: "groups must be at least 1".into(),
        });
    }
    let private = c - k;
    if group_pool < private {
        return Err(SimError::InvalidParams {
            reason: format!("group_pool ({group_pool}) must be at least c - k ({private})"),
        });
    }
    let total = k + groups * group_pool;
    let sets = (0..n)
        .map(|i| {
            let g = i % groups;
            let base = (k + g * group_pool) as u32;
            let pool_ids: Vec<u32> = (base..base + group_pool as u32).collect();
            let mut s: Vec<GlobalChannel> = (0..k as u32).map(GlobalChannel).collect();
            s.extend(
                pool_ids
                    .choose_multiple(rng, private)
                    .map(|&x| GlobalChannel(x)),
            );
            s
        })
        .collect();
    ChannelAssignment::from_sets(sets, total, k)
}

/// Identifies the named overlap patterns swept by experiment F7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OverlapPattern {
    /// [`full_overlap`] (requires `k == c`; other patterns ignore that).
    FullOverlap,
    /// [`shared_core`].
    SharedCore,
    /// [`random_with_core`] with a large pool (dispersed).
    RandomDispersed,
    /// [`random_with_core`] with a small pool (congested).
    RandomCongested,
    /// [`clustered`] with 4 groups.
    Clustered,
}

impl OverlapPattern {
    /// All patterns, in sweep order.
    pub const ALL: [OverlapPattern; 5] = [
        OverlapPattern::FullOverlap,
        OverlapPattern::SharedCore,
        OverlapPattern::RandomDispersed,
        OverlapPattern::RandomCongested,
        OverlapPattern::Clustered,
    ];

    /// Human-readable name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            OverlapPattern::FullOverlap => "full-overlap",
            OverlapPattern::SharedCore => "shared-core",
            OverlapPattern::RandomDispersed => "random-dispersed",
            OverlapPattern::RandomCongested => "random-congested",
            OverlapPattern::Clustered => "clustered",
        }
    }

    /// Instantiates the pattern for `(n, c, k)`.
    ///
    /// For [`OverlapPattern::FullOverlap`] the generated assignment has
    /// overlap `c` (the strongest pattern consistent with any `k`).
    ///
    /// # Errors
    ///
    /// Propagates generator errors for inconsistent parameters.
    pub fn generate(
        self,
        n: usize,
        c: usize,
        k: usize,
        rng: &mut impl Rng,
    ) -> Result<ChannelAssignment, SimError> {
        match self {
            OverlapPattern::FullOverlap => full_overlap(n, c),
            OverlapPattern::SharedCore => shared_core(n, c, k),
            OverlapPattern::RandomDispersed => {
                random_with_core(n, c, k, (c - k).max(1) * n.max(4) * 4, rng)
            }
            OverlapPattern::RandomCongested => random_with_core(n, c, k, ((c - k) * 2).max(1), rng),
            OverlapPattern::Clustered => clustered(n, c, k, 4, ((c - k) * 3).max(1), rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_overlap_basics() {
        let a = full_overlap(5, 3).unwrap();
        assert_eq!(a.n(), 5);
        assert_eq!(a.c(), 3);
        assert_eq!(a.k(), 3);
        assert_eq!(a.total_channels(), 3);
        assert_eq!(a.min_pairwise_overlap(), 3);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn shared_core_exact_overlap() {
        let a = shared_core(4, 6, 2).unwrap();
        assert_eq!(a.total_channels(), 2 + 4 * 4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(a.overlap(i, j), 2, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn shared_core_k_equals_c_is_full_overlap() {
        let a = shared_core(3, 4, 4).unwrap();
        assert_eq!(a.total_channels(), 4);
        assert_eq!(a.min_pairwise_overlap(), 4);
    }

    #[test]
    fn shared_core_single_node() {
        let a = shared_core(1, 4, 2).unwrap();
        assert_eq!(a.min_pairwise_overlap(), 4);
    }

    #[test]
    fn random_with_core_respects_overlap() {
        let mut rng = StdRng::seed_from_u64(7);
        for pool in [4usize, 10, 100] {
            let a = random_with_core(8, 6, 3, pool.max(3), &mut rng).unwrap();
            assert!(a.min_pairwise_overlap() >= 3, "pool {pool}");
            assert!(a.validate().is_ok());
        }
    }

    #[test]
    fn random_with_core_pool_too_small() {
        let mut rng = StdRng::seed_from_u64(7);
        let err = random_with_core(3, 6, 2, 3, &mut rng).unwrap_err();
        assert!(matches!(err, SimError::InvalidParams { .. }));
    }

    #[test]
    fn clustered_within_group_overlap_exceeds_core() {
        let mut rng = StdRng::seed_from_u64(3);
        // 2 groups, small group pool: group-mates share many channels.
        let a = clustered(8, 8, 2, 2, 7, &mut rng).unwrap();
        assert!(a.validate().is_ok());
        // nodes 0 and 2 are in the same group (i % 2).
        assert!(a.overlap(0, 2) > 2);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(full_overlap(0, 3).is_err());
        assert!(full_overlap(3, 0).is_err());
        assert!(shared_core(3, 4, 0).is_err());
        assert!(shared_core(3, 4, 5).is_err());
    }

    #[test]
    fn from_sets_detects_overlap_violation() {
        let sets = vec![
            vec![GlobalChannel(0), GlobalChannel(1)],
            vec![GlobalChannel(2), GlobalChannel(3)],
        ];
        let err = ChannelAssignment::from_sets(sets, 4, 1).unwrap_err();
        assert!(matches!(
            err,
            SimError::OverlapViolation {
                observed: 0,
                required: 1,
                ..
            }
        ));
    }

    #[test]
    fn from_sets_detects_out_of_range() {
        let sets = vec![vec![GlobalChannel(0), GlobalChannel(9)]; 2];
        let err = ChannelAssignment::from_sets(sets, 4, 1).unwrap_err();
        assert!(matches!(err, SimError::InvalidParams { .. }));
    }

    #[test]
    fn from_sets_detects_ragged_sets() {
        let sets = vec![
            vec![GlobalChannel(0), GlobalChannel(1)],
            vec![GlobalChannel(0)],
        ];
        assert!(ChannelAssignment::from_sets(sets, 2, 1).is_err());
    }

    #[test]
    fn ragged_assignments_expose_per_node_counts() {
        let mut rng = StdRng::seed_from_u64(15);
        let a = ragged_with_core(&[2, 4, 8], 2, 30, &mut rng).unwrap();
        assert_eq!(a.n(), 3);
        assert_eq!(a.c(), 8);
        assert_eq!(a.c_of(0), 2);
        assert_eq!(a.c_of(1), 4);
        assert!(!a.is_uniform());
        assert!(a.min_pairwise_overlap() >= 2);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn uniform_assignments_report_uniform() {
        let a = shared_core(4, 5, 2).unwrap();
        assert!(a.is_uniform());
        assert_eq!(a.c_of(3), 5);
    }

    #[test]
    fn ragged_rejects_bad_params() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(ragged_with_core(&[], 1, 5, &mut rng).is_err());
        assert!(
            ragged_with_core(&[3, 1], 2, 5, &mut rng).is_err(),
            "c_u < k"
        );
        assert!(
            ragged_with_core(&[3, 9], 2, 3, &mut rng).is_err(),
            "pool too small"
        );
        assert!(ragged_with_core(&[3, 4], 0, 5, &mut rng).is_err());
    }

    #[test]
    fn from_ragged_sets_validates_overlap() {
        let sets = vec![
            vec![GlobalChannel(0)],
            vec![GlobalChannel(1), GlobalChannel(2)],
        ];
        let err = ChannelAssignment::from_ragged_sets(sets, 3, 1).unwrap_err();
        assert!(matches!(err, SimError::OverlapViolation { .. }));
        let sets = vec![
            vec![GlobalChannel(0)],
            vec![GlobalChannel(0), GlobalChannel(2)],
        ];
        assert!(ChannelAssignment::from_ragged_sets(sets, 3, 1).is_ok());
    }

    #[test]
    fn permute_globals_preserves_overlaps() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = shared_core(5, 6, 2).unwrap();
        let overlaps: Vec<usize> = (0..5)
            .flat_map(|i| ((i + 1)..5).map(move |j| (i, j)))
            .map(|(i, j)| a.overlap(i, j))
            .collect();
        let b = a.clone().permute_globals(&mut rng);
        let permuted: Vec<usize> = (0..5)
            .flat_map(|i| ((i + 1)..5).map(move |j| (i, j)))
            .map(|(i, j)| b.overlap(i, j))
            .collect();
        assert_eq!(overlaps, permuted);
        assert!(b.validate().is_ok());
        assert_eq!(b.total_channels(), a.total_channels());
        // The permutation essentially always moves the core off 0..k.
        assert_ne!(a, b);
    }

    #[test]
    fn overlap_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = random_with_core(6, 5, 2, 20, &mut rng).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(a.overlap(i, j), a.overlap(j, i));
            }
        }
    }

    #[test]
    fn all_patterns_generate_valid_assignments() {
        let mut rng = StdRng::seed_from_u64(5);
        for p in OverlapPattern::ALL {
            let a = p.generate(10, 6, 3, &mut rng).unwrap();
            assert!(
                a.min_pairwise_overlap() >= 3,
                "pattern {} violated overlap",
                p.name()
            );
        }
    }

    #[test]
    fn pattern_names_unique() {
        let names: std::collections::HashSet<_> =
            OverlapPattern::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), OverlapPattern::ALL.len());
    }

    proptest! {
        #[test]
        fn prop_shared_core_valid(n in 1usize..20, c in 1usize..12, k_off in 0usize..12) {
            let k = 1 + k_off % c;
            let a = shared_core(n, c, k).unwrap();
            prop_assert!(a.validate().is_ok());
            prop_assert_eq!(a.n(), n);
            prop_assert_eq!(a.c(), c);
            prop_assert!(a.min_pairwise_overlap() >= k);
        }

        #[test]
        fn prop_random_with_core_valid(
            n in 1usize..16,
            c in 1usize..10,
            k_off in 0usize..10,
            pool_extra in 0usize..30,
            seed in 0u64..1000,
        ) {
            let k = 1 + k_off % c;
            let pool = (c - k) + pool_extra;
            if pool == 0 { return Ok(()); }
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_with_core(n, c, k, pool, &mut rng).unwrap();
            prop_assert!(a.validate().is_ok());
            // each set is sorted and deduplicated
            for i in 0..n {
                let s = a.channels_of(i);
                for w in s.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
            }
        }

        #[test]
        fn prop_overlap_never_exceeds_c(n in 2usize..10, c in 1usize..8, seed in 0u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = random_with_core(n, c, 1, c * 3, &mut rng).unwrap();
            for i in 0..n {
                for j in (i+1)..n {
                    prop_assert!(a.overlap(i, j) <= c);
                }
            }
        }
    }
}
