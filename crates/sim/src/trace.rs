//! Per-slot activity records for analysis and debugging.
//!
//! The engine fills one [`SlotActivity`] per slot (reusing buffers); the
//! experiment harness and the tests use it to observe physical-layer
//! facts — which transmissions collided, who won, who was listening —
//! that protocols themselves (by design) cannot see.

use crate::ids::{GlobalChannel, NodeId};
use serde::{Deserialize, Serialize};

/// What happened on a single global channel during one slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelActivity {
    /// The physical channel.
    pub channel: GlobalChannel,
    /// Nodes that attempted a (non-jammed) transmission on the channel.
    pub broadcasters: Vec<NodeId>,
    /// The broadcaster whose message was delivered, if any transmitted.
    pub winner: Option<NodeId>,
    /// Nodes that were (non-jammed) listening on the channel.
    pub listeners: Vec<NodeId>,
}

impl ChannelActivity {
    /// True if at least two nodes contended on this channel.
    pub fn had_collision(&self) -> bool {
        self.broadcasters.len() >= 2
    }
}

/// Everything that happened in one slot.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotActivity {
    /// The slot number this record describes.
    pub slot: u64,
    /// Activity per channel that had at least one participant; channels
    /// with no tuned node are omitted.
    pub channels: Vec<ChannelActivity>,
    /// Number of nodes that slept this slot.
    pub sleepers: usize,
    /// Number of `(node, channel)` pairs suppressed by interference.
    pub jammed: usize,
}

impl SlotActivity {
    /// Total successful deliveries this slot (channels with a winner and
    /// at least one listener).
    pub fn deliveries(&self) -> usize {
        self.channels
            .iter()
            .filter(|c| c.winner.is_some() && !c.listeners.is_empty())
            .count()
    }

    /// Total transmissions attempted this slot.
    pub fn transmissions(&self) -> usize {
        self.channels.iter().map(|c| c.broadcasters.len()).sum()
    }

    /// Finds the activity record for `channel`, if it saw any traffic.
    pub fn on_channel(&self, channel: GlobalChannel) -> Option<&ChannelActivity> {
        self.channels.iter().find(|c| c.channel == channel)
    }
}

/// A streaming FNV-1a digest over full [`SlotActivity`] records.
///
/// Folds every field of every slot — channel ids, broadcaster sets,
/// winners, listener sets, sleeper and jam counts — into one `u64`, so a
/// single constant in a test pins the engine's complete observable
/// behavior for a fixed configuration. The golden-trace test in
/// `crn-core` uses this to turn any engine or RNG change into a
/// deliberate, reviewed digest update instead of silent drift.
///
/// # Examples
///
/// ```
/// use crn_sim::trace::{SlotActivity, TraceDigest};
/// let mut a = TraceDigest::new();
/// let mut b = TraceDigest::new();
/// a.record(&SlotActivity::default());
/// b.record(&SlotActivity::default());
/// assert_eq!(a.finish(), b.finish());
/// assert_ne!(a.finish(), TraceDigest::new().finish());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDigest {
    hash: u64,
}

impl Default for TraceDigest {
    fn default() -> Self {
        TraceDigest::new()
    }
}

impl TraceDigest {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    /// An empty digest (FNV-1a offset basis).
    pub fn new() -> Self {
        TraceDigest {
            hash: Self::FNV_OFFSET,
        }
    }

    #[inline]
    fn mix(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.hash ^= byte as u64;
            self.hash = self.hash.wrapping_mul(Self::FNV_PRIME);
        }
    }

    /// Folds one slot's complete activity record into the digest.
    pub fn record(&mut self, activity: &SlotActivity) {
        self.mix(activity.slot);
        self.mix(activity.sleepers as u64);
        self.mix(activity.jammed as u64);
        self.mix(activity.channels.len() as u64);
        for ch in &activity.channels {
            self.mix(ch.channel.index() as u64);
            self.mix(ch.broadcasters.len() as u64);
            for b in &ch.broadcasters {
                self.mix(b.index() as u64);
            }
            // Distinguish "no winner" from "winner 0".
            self.mix(ch.winner.map_or(u64::MAX, |w| w.index() as u64));
            self.mix(ch.listeners.len() as u64);
            for l in &ch.listeners {
                self.mix(l.index() as u64);
            }
        }
    }

    /// The digest over everything recorded so far.
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

/// An accumulating log of per-slot activity with physical-layer
/// statistics — the observability layer experiments use to explain
/// *why* a protocol was fast or slow.
///
/// # Examples
///
/// ```
/// use crn_sim::trace::{ChannelActivity, SlotActivity, TraceLog};
/// use crn_sim::{GlobalChannel, NodeId};
/// let mut log = TraceLog::new();
/// log.record(&SlotActivity {
///     slot: 0,
///     channels: vec![ChannelActivity {
///         channel: GlobalChannel(0),
///         broadcasters: vec![NodeId(0), NodeId(1)],
///         winner: Some(NodeId(0)),
///         listeners: vec![NodeId(2)],
///     }],
///     sleepers: 0,
///     jammed: 0,
/// });
/// assert_eq!(log.slots(), 1);
/// assert_eq!(log.total_transmissions(), 2);
/// assert_eq!(log.total_collisions(), 1);
/// assert_eq!(log.total_deliveries(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceLog {
    slots: u64,
    transmissions: u64,
    collisions: u64,
    deliveries: u64,
    wasted_wins: u64,
    jammed: u64,
    busy_channel_slots: u64,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Folds one slot's activity into the log.
    pub fn record(&mut self, activity: &SlotActivity) {
        self.slots += 1;
        self.jammed += activity.jammed as u64;
        for ch in &activity.channels {
            if !ch.broadcasters.is_empty() || !ch.listeners.is_empty() {
                self.busy_channel_slots += 1;
            }
            self.transmissions += ch.broadcasters.len() as u64;
            if ch.had_collision() {
                self.collisions += 1;
            }
            if ch.winner.is_some() {
                if ch.listeners.is_empty() {
                    self.wasted_wins += 1;
                } else {
                    self.deliveries += 1;
                }
            }
        }
    }

    /// Number of slots recorded.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Total transmissions attempted.
    pub fn total_transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Channel-slots on which two or more transmissions contended.
    pub fn total_collisions(&self) -> u64 {
        self.collisions
    }

    /// Channel-slots on which a winning message reached ≥ 1 listener.
    pub fn total_deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Channel-slots on which a transmission won but nobody listened.
    pub fn total_wasted_wins(&self) -> u64 {
        self.wasted_wins
    }

    /// `(node, channel)` pairs suppressed by interference.
    pub fn total_jammed(&self) -> u64 {
        self.jammed
    }

    /// Fraction of busy channel-slots that had a contention collision.
    pub fn collision_rate(&self) -> f64 {
        if self.busy_channel_slots == 0 {
            0.0
        } else {
            self.collisions as f64 / self.busy_channel_slots as f64
        }
    }

    /// Fraction of transmissions whose message reached a listener.
    pub fn delivery_efficiency(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.deliveries as f64 / self.transmissions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SlotActivity {
        SlotActivity {
            slot: 3,
            channels: vec![
                ChannelActivity {
                    channel: GlobalChannel(0),
                    broadcasters: vec![NodeId(1), NodeId(2)],
                    winner: Some(NodeId(2)),
                    listeners: vec![NodeId(3)],
                },
                ChannelActivity {
                    channel: GlobalChannel(5),
                    broadcasters: vec![NodeId(4)],
                    winner: Some(NodeId(4)),
                    listeners: vec![],
                },
                ChannelActivity {
                    channel: GlobalChannel(7),
                    broadcasters: vec![],
                    winner: None,
                    listeners: vec![NodeId(0)],
                },
            ],
            sleepers: 1,
            jammed: 0,
        }
    }

    #[test]
    fn deliveries_require_listener_and_winner() {
        assert_eq!(sample().deliveries(), 1);
    }

    #[test]
    fn transmissions_counts_all_broadcasters() {
        assert_eq!(sample().transmissions(), 3);
    }

    #[test]
    fn on_channel_lookup() {
        let s = sample();
        assert!(s.on_channel(GlobalChannel(5)).is_some());
        assert!(s.on_channel(GlobalChannel(6)).is_none());
        assert!(s.on_channel(GlobalChannel(0)).unwrap().had_collision());
        assert!(!s.on_channel(GlobalChannel(5)).unwrap().had_collision());
    }

    #[test]
    fn default_is_empty() {
        let s = SlotActivity::default();
        assert_eq!(s.deliveries(), 0);
        assert_eq!(s.transmissions(), 0);
        assert_eq!(s.channels.len(), 0);
    }

    #[test]
    fn trace_log_accumulates_sample() {
        let mut log = TraceLog::new();
        log.record(&sample());
        log.record(&sample());
        assert_eq!(log.slots(), 2);
        assert_eq!(log.total_transmissions(), 6);
        assert_eq!(log.total_collisions(), 2);
        assert_eq!(log.total_deliveries(), 2);
        // g5's lone win had no listeners.
        assert_eq!(log.total_wasted_wins(), 2);
        assert_eq!(log.total_jammed(), 0);
    }

    #[test]
    fn trace_log_rates() {
        let mut log = TraceLog::new();
        log.record(&sample());
        // 3 busy channels, 1 collision.
        assert!((log.collision_rate() - 1.0 / 3.0).abs() < 1e-12);
        // 3 transmissions, 1 delivered to a listener.
        assert!((log.delivery_efficiency() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn digest_is_deterministic_and_order_sensitive() {
        let mut a = TraceDigest::new();
        a.record(&sample());
        let mut b = TraceDigest::new();
        b.record(&sample());
        assert_eq!(a.finish(), b.finish());
        // A different winner must change the digest.
        let mut changed = sample();
        changed.channels[0].winner = Some(NodeId(1));
        let mut c = TraceDigest::new();
        c.record(&changed);
        assert_ne!(a.finish(), c.finish());
        // "No winner" differs from "winner 0".
        let mut none_winner = sample();
        none_winner.channels[0].winner = None;
        let mut zero_winner = sample();
        zero_winner.channels[0].winner = Some(NodeId(0));
        let (mut dn, mut dz) = (TraceDigest::new(), TraceDigest::new());
        dn.record(&none_winner);
        dz.record(&zero_winner);
        assert_ne!(dn.finish(), dz.finish());
    }

    #[test]
    fn empty_trace_log_rates_are_zero() {
        let log = TraceLog::new();
        assert_eq!(log.collision_rate(), 0.0);
        assert_eq!(log.delivery_efficiency(), 0.0);
        assert_eq!(log.slots(), 0);
    }
}
