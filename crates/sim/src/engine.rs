//! The synchronous slot engine.
//!
//! [`Network`] drives `n` protocol state machines against a
//! [`ChannelModel`] over a pluggable [`Medium`], implementing the
//! paper's Section 2 model exactly:
//!
//! 1. at the start of each slot every node picks an action (broadcast /
//!    listen / sleep) on one of its `c` channels, addressed by local
//!    label;
//! 2. the engine translates local labels to global channels and applies
//!    interference;
//! 3. the medium resolves contention — under the default
//!    [`OracleSingleHop`], on each channel with at least one
//!    transmission one transmission (chosen uniformly at random)
//!    succeeds: all listeners on the channel receive it, the winner
//!    learns it succeeded, and the losing broadcasters both learn they
//!    failed *and* receive the winning message;
//! 4. every non-sleeping node observes the outcome.
//!
//! Everything around step 3 — protocol driving, label translation,
//! interference/jamming, fault wrappers, tracing, conformance checking
//! — is medium-agnostic and written once here; swapping the medium
//! (multi-hop topology, physical decay backoff) swaps only the
//! resolution rule.
//!
//! The engine is fully deterministic given its seed: per-node protocol
//! RNGs, the medium's resolution RNG, and the interference RNG are all
//! derived from the master seed on independent streams, and channels
//! are resolved in sorted order so winner draws are reproducible.

use crate::channel_model::ChannelModel;
use crate::error::SimError;
use crate::ids::NodeId;
use crate::interference::Interference;
use crate::medium::{Medium, OracleSingleHop, SlotInputs};
use crate::pool::WorkerPool;
use crate::proto::{Action, Event, NodeCtx, Protocol};
use crate::rng::{derive_rng, streams, SimRng};
use crate::trace::SlotActivity;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Default minimum network size before [`Network::step`] fans its
/// per-node phases across the worker pool. Below this, per-slot
/// synchronization (wake + barrier, on the order of microseconds)
/// costs more than the per-node work it would parallelize; tiny
/// networks therefore keep the exact sequential path.
pub const DEFAULT_PAR_THRESHOLD: usize = 256;

/// Intra-slot parallelism configuration: which [`WorkerPool`] the
/// engine fans its per-node decide/observe phases across, and from
/// what network size ([`DEFAULT_PAR_THRESHOLD`] by default).
///
/// Installing one never changes results: every golden-trace digest is
/// reproduced bit-for-bit at any worker count, because the
/// parallelized phases are order-free (each node touches only its own
/// RNG lane and its own index-keyed slots) while winner draws stay
/// serialized on the ENGINE stream and jamming on the JAMMER stream.
/// See DESIGN.md "Threading model".
#[derive(Clone, Debug)]
pub struct ParConfig {
    pool: Arc<WorkerPool>,
    threshold: usize,
}

impl ParConfig {
    /// Parallelism over an explicit pool, at the default threshold.
    pub fn new(pool: Arc<WorkerPool>) -> Self {
        ParConfig {
            pool,
            threshold: DEFAULT_PAR_THRESHOLD,
        }
    }

    /// Parallelism over the process-wide shared pool
    /// ([`crate::pool::global`]).
    ///
    /// # Panics
    ///
    /// Panics if `CRN_THREADS` is set to an invalid value (binaries
    /// validate via [`crate::pool::configured_workers`] first).
    pub fn global() -> Self {
        Self::new(crate::pool::global())
    }

    /// [`ParConfig::global`], but `None` when the global pool has a
    /// single worker — callers can skip installing a configuration
    /// that could never engage.
    pub fn auto() -> Option<Self> {
        let pool = crate::pool::global();
        (pool.workers() > 1).then(|| Self::new(pool))
    }

    /// Replaces the small-`n` sequential-fallback threshold (networks
    /// with fewer nodes step sequentially). `0`/`1` parallelizes
    /// everything — useful in differential tests, wasteful otherwise.
    #[must_use]
    pub fn with_threshold(mut self, threshold: usize) -> Self {
        self.threshold = threshold;
        self
    }

    /// Total worker count of the underlying pool.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The small-`n` sequential-fallback threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// True when stepping an `n`-node network should use the pool.
    fn engaged(&self, n: usize) -> bool {
        self.pool.workers() > 1 && n >= self.threshold
    }

    /// Chunk size for an `n`-node fan-out: a few chunks per worker for
    /// stealing slack, but never so small that claim traffic dominates.
    fn chunk(&self, n: usize) -> usize {
        (n / (self.pool.workers() * 4)).max(16)
    }

    /// Fans `f` over `0..n` across the pool with this config's
    /// chunking, blocking until every index is processed.
    fn pool_run(&self, n: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        self.pool.run(n, self.chunk(n), f);
    }
}

/// A raw pointer that asserts cross-thread shareability.
///
/// Used by the parallel step phases to hand per-node buffer bases to
/// pool workers without widening [`Network::step`]'s bounds. Soundness
/// is enforced at install time: the only ways to set `Network::par`
/// ([`NetworkBuilder::parallelism`], [`Network::set_parallelism`])
/// require `P: Send`, `M: Send`, `CM: Sync`, and every worker touches
/// a disjoint index range.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);

// SAFETY: see the struct docs — disjoint-range access to buffers whose
// element types were proven Send/Sync at `ParConfig` install time.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: as above.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The `i`-th element's address. Accessed through a method so
    /// closures capture the `SendPtr` wrapper (which is `Sync`), not
    /// the raw pointer field (which is not).
    ///
    /// # Safety
    ///
    /// `i` must be in bounds of the underlying buffer, and the caller
    /// must hold exclusive access to that element.
    unsafe fn at(&self, i: usize) -> *mut T {
        self.0.add(i)
    }

    /// The base address as a shared read-only pointer (same capture
    /// rationale as [`SendPtr::at`]).
    fn as_const(&self) -> *const T {
        self.0
    }
}

/// The result of [`Network::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The predicate became true after the given number of slots had
    /// executed (i.e. `slots` is the completion time in slots).
    Done {
        /// Slots executed when the predicate first held.
        slots: u64,
    },
    /// The slot budget was exhausted before the predicate held.
    Timeout {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl RunOutcome {
    /// The completion time, or `None` on timeout.
    ///
    /// ```
    /// use crn_sim::RunOutcome;
    /// assert_eq!(RunOutcome::Done { slots: 10 }.slots(), Some(10));
    /// assert_eq!(RunOutcome::Timeout { budget: 5 }.slots(), None);
    /// ```
    pub fn slots(self) -> Option<u64> {
        match self {
            RunOutcome::Done { slots } => Some(slots),
            RunOutcome::Timeout { .. } => None,
        }
    }

    /// True if the run completed within budget.
    pub fn is_done(self) -> bool {
        matches!(self, RunOutcome::Done { .. })
    }
}

/// A consuming builder for [`Network`], convenient when protocols are
/// assembled incrementally, interference is optional, or the medium is
/// non-default.
///
/// # Examples
///
/// ```
/// use crn_sim::assignment::full_overlap;
/// use crn_sim::channel_model::StaticChannels;
/// use crn_sim::engine::NetworkBuilder;
/// use crn_sim::{Action, Event, NodeCtx, Protocol};
/// use crn_sim::rng::SimRng;
///
/// struct Quiet;
/// impl Protocol<u8> for Quiet {
///     fn decide(&mut self, _: &NodeCtx<'_>, _: &mut SimRng) -> Action<u8> { Action::Sleep }
///     fn observe(&mut self, _: &NodeCtx<'_>, _: Event<u8>) {}
/// }
///
/// let model = StaticChannels::global(full_overlap(2, 1)?);
/// let mut net = NetworkBuilder::new(model)
///     .seed(9)
///     .protocol(Quiet)
///     .protocol(Quiet)
///     .build()?;
/// net.step();
/// assert_eq!(net.slot(), 1);
/// # Ok::<(), crn_sim::SimError>(())
/// ```
#[allow(missing_debug_implementations)] // protocols and interference are user types
pub struct NetworkBuilder<M, P, CM, Med = OracleSingleHop> {
    model: CM,
    protocols: Vec<P>,
    seed: u64,
    interference: Option<Box<dyn Interference>>,
    medium: Med,
    par: Option<ParConfig>,
    _marker: std::marker::PhantomData<M>,
}

impl<M, P, CM> NetworkBuilder<M, P, CM>
where
    M: Clone,
    P: Protocol<M>,
    CM: ChannelModel,
{
    /// Starts a builder over `model` (seed 0, no protocols, no
    /// interference, single-hop oracle medium, sequential stepping).
    pub fn new(model: CM) -> Self {
        NetworkBuilder {
            model,
            protocols: Vec::new(),
            seed: 0,
            interference: None,
            medium: OracleSingleHop::new(),
            par: None,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M, P, CM, Med> NetworkBuilder<M, P, CM, Med>
where
    M: Clone,
    P: Protocol<M>,
    CM: ChannelModel,
    Med: Medium<M>,
{
    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Appends one protocol instance (node ids follow insertion order).
    #[must_use]
    pub fn protocol(mut self, protocol: P) -> Self {
        self.protocols.push(protocol);
        self
    }

    /// Appends protocol instances in bulk.
    #[must_use]
    pub fn protocols(mut self, protocols: impl IntoIterator<Item = P>) -> Self {
        self.protocols.extend(protocols);
        self
    }

    /// Installs an interference model.
    #[must_use]
    pub fn interference(mut self, interference: Box<dyn Interference>) -> Self {
        self.interference = Some(interference);
        self
    }

    /// Replaces the medium (type-changing: the builder tracks the new
    /// medium type).
    #[must_use]
    pub fn medium<Med2: Medium<M>>(self, medium: Med2) -> NetworkBuilder<M, P, CM, Med2> {
        NetworkBuilder {
            model: self.model,
            protocols: self.protocols,
            seed: self.seed,
            interference: self.interference,
            medium,
            par: self.par,
            _marker: std::marker::PhantomData,
        }
    }

    /// Enables intra-slot parallelism: the built network fans its
    /// per-node decide/observe phases across `cfg`'s pool (for
    /// networks at or above the configured threshold). Results are
    /// bit-identical to sequential stepping at any worker count.
    ///
    /// The bounds make the sharing sound: protocol state (`P`) and
    /// actions/events (`M`) move to pool threads, and the channel
    /// model (`CM`) is read concurrently.
    #[must_use]
    pub fn parallelism(mut self, cfg: ParConfig) -> Self
    where
        P: Send,
        M: Send,
        CM: Sync,
    {
        self.par = Some(cfg);
        self
    }

    /// Builds the network.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProtocolCountMismatch`] if the number of
    /// protocols differs from the model's node count.
    pub fn build(self) -> Result<Network<M, P, CM, Med>, SimError> {
        let mut net = Network::assemble(
            self.model,
            self.protocols,
            self.seed,
            self.interference,
            self.medium,
        )?;
        // Sound: `parallelism()` carried the Send/Sync bounds.
        net.par = self.par;
        Ok(net)
    }
}

/// A simulated cognitive radio network.
///
/// Generic over the message type `M`, the per-node protocol `P`, the
/// channel model `CM`, and the slot-resolution [`Medium`] `Med`
/// (default: the paper's single-hop collision oracle).
///
/// # Examples
///
/// ```
/// use crn_sim::assignment::full_overlap;
/// use crn_sim::channel_model::StaticChannels;
/// use crn_sim::{Action, Event, LocalChannel, Network, NodeCtx, Protocol};
/// use crn_sim::rng::SimRng;
///
/// /// Node 0 shouts; everyone else listens on the only channel.
/// struct Shout(bool);
/// impl Protocol<u32> for Shout {
///     fn decide(&mut self, ctx: &NodeCtx<'_>, _rng: &mut SimRng) -> Action<u32> {
///         if ctx.id.index() == 0 {
///             Action::Broadcast(LocalChannel(0), 42)
///         } else {
///             Action::Listen(LocalChannel(0))
///         }
///     }
///     fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<u32>) {
///         if matches!(event, Event::Received { msg: 42, .. }) {
///             self.0 = true;
///         }
///     }
///     fn is_done(&self) -> bool { self.0 }
/// }
///
/// let model = StaticChannels::global(full_overlap(3, 1)?);
/// let mut net = Network::new(model, vec![Shout(false), Shout(false), Shout(false)], 7)?;
/// net.step();
/// assert!(net.protocols()[1].is_done());
/// assert!(net.protocols()[2].is_done());
/// # Ok::<(), crn_sim::SimError>(())
/// ```
#[allow(missing_debug_implementations)] // protocols and interference are user types
pub struct Network<M, P, CM, Med = OracleSingleHop> {
    model: CM,
    protocols: Vec<P>,
    node_rngs: Vec<SimRng>,
    jam_rng: SimRng,
    interference: Option<Box<dyn Interference>>,
    medium: Med,
    slot: u64,
    activity: SlotActivity,
    scratch: Scratch<M>,
    par: Option<ParConfig>,
    /// Number of protocols reporting done as of the last executed
    /// slot; `None` when stale (before the first step, or after
    /// `protocols_mut` handed out mutable state). Makes `all_done`
    /// O(1) in run loops instead of an O(n) rescan per slot.
    done_cache: Option<usize>,
    _marker: std::marker::PhantomData<M>,
}

/// Reusable per-slot buffers owned by [`Network`].
///
/// Every vector [`Network::step`] needs is cleared and refilled in
/// place, so after the first few slots the engine itself performs no
/// heap allocation in steady state (see `tests/alloc.rs`); the default
/// [`OracleSingleHop`] medium upholds the same guarantee for the
/// resolution path.
struct Scratch<M> {
    /// Phase A: each node's chosen action this slot.
    actions: Vec<Action<M>>,
    /// Phase B: per node, whether interference suppressed it this slot.
    jammed_nodes: Vec<bool>,
    /// Phase B: committed tunings shown to adaptive interference.
    intents: Vec<crate::interference::Intent>,
    /// Phase B: `(channel, node, is_broadcast)` in ascending node order
    /// — the medium's [`SlotInputs::tuned`].
    tuned: Vec<(crate::ids::GlobalChannel, usize, bool)>,
    /// Phase C/D: per node, the event to observe (`None` = sleeper).
    events: Vec<Option<Event<M>>>,
    /// Phase D (parallel path): per-chunk doneness tallies accumulate
    /// here; the barrier at the end of the fan-out orders the final
    /// read, so `Relaxed` operations suffice.
    done_count: AtomicUsize,
}

impl<M> Default for Scratch<M> {
    fn default() -> Self {
        Scratch {
            actions: Vec::new(),
            jammed_nodes: Vec::new(),
            intents: Vec::new(),
            tuned: Vec::new(),
            events: Vec::new(),
            done_count: AtomicUsize::new(0),
        }
    }
}

impl<M, P, CM> Network<M, P, CM>
where
    M: Clone,
    P: Protocol<M>,
    CM: ChannelModel,
{
    /// Creates a network with no interference, on the default
    /// single-hop oracle medium.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProtocolCountMismatch`] if `protocols.len()`
    /// differs from the model's node count.
    pub fn new(model: CM, protocols: Vec<P>, seed: u64) -> Result<Self, SimError> {
        Self::assemble(model, protocols, seed, None, OracleSingleHop::new())
    }

    /// Creates a network subject to an [`Interference`] model (used by
    /// the jamming experiments of Theorem 18), on the default
    /// single-hop oracle medium.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProtocolCountMismatch`] if `protocols.len()`
    /// differs from the model's node count.
    pub fn with_interference(
        model: CM,
        protocols: Vec<P>,
        seed: u64,
        interference: Box<dyn Interference>,
    ) -> Result<Self, SimError> {
        Self::assemble(
            model,
            protocols,
            seed,
            Some(interference),
            OracleSingleHop::new(),
        )
    }
}

impl<M, P, CM, Med> Network<M, P, CM, Med>
where
    M: Clone,
    P: Protocol<M>,
    CM: ChannelModel,
    Med: Medium<M>,
{
    /// Creates a network over an explicit [`Medium`] (no interference).
    ///
    /// The medium's RNG stream is re-derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProtocolCountMismatch`] if `protocols.len()`
    /// differs from the model's node count.
    pub fn with_medium(
        model: CM,
        protocols: Vec<P>,
        seed: u64,
        medium: Med,
    ) -> Result<Self, SimError> {
        Self::assemble(model, protocols, seed, None, medium)
    }

    fn assemble(
        model: CM,
        protocols: Vec<P>,
        seed: u64,
        interference: Option<Box<dyn Interference>>,
        mut medium: Med,
    ) -> Result<Self, SimError> {
        if protocols.len() != model.n() {
            return Err(SimError::ProtocolCountMismatch {
                nodes: model.n(),
                protocols: protocols.len(),
            });
        }
        let node_rngs = (0..model.n())
            .map(|i| derive_rng(seed, streams::NODE_BASE + i as u64))
            .collect();
        medium.reseed(seed);
        Ok(Network {
            model,
            protocols,
            node_rngs,
            jam_rng: derive_rng(seed, streams::JAMMER),
            interference,
            medium,
            slot: 0,
            activity: SlotActivity::default(),
            scratch: Scratch::default(),
            par: None,
            done_cache: None,
            _marker: std::marker::PhantomData,
        })
    }

    /// The current slot (number of slots executed so far).
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// The channel model.
    pub fn model(&self) -> &CM {
        &self.model
    }

    /// The installed interference model, if any.
    pub fn interference(&self) -> Option<&dyn Interference> {
        self.interference.as_deref()
    }

    /// The slot-resolution medium.
    pub fn medium(&self) -> &Med {
        &self.medium
    }

    /// Mutable access to the medium (e.g. to read-and-reset metadata
    /// counters between runs).
    pub fn medium_mut(&mut self) -> &mut Med {
        &mut self.medium
    }

    /// Checks the most recently executed slot against the Section 2
    /// model contract (see [`crate::conformance`]), applying only the
    /// clauses the medium's [`crate::medium::MediumProfile`] claims;
    /// returns every violation found. Valid only after at least one
    /// [`Network::step`] — the model still holds that slot's channel
    /// sets until the next step advances it.
    pub fn check_conformance(&self) -> Vec<crate::conformance::Violation> {
        crate::conformance::check_slot_for(
            &self.model,
            self.interference(),
            &self.activity,
            self.medium.profile(),
        )
    }

    /// The protocol instances, indexed by node.
    pub fn protocols(&self) -> &[P] {
        &self.protocols
    }

    /// Mutable access to the protocol instances (e.g. to inject values
    /// between protocol phases in tests).
    pub fn protocols_mut(&mut self) -> &mut [P] {
        // The caller may flip doneness behind the engine's back.
        self.done_cache = None;
        &mut self.protocols
    }

    /// Installs (or, with `None`, removes) intra-slot parallelism; see
    /// [`NetworkBuilder::parallelism`] for the determinism guarantee
    /// and why the bounds are required.
    pub fn set_parallelism(&mut self, cfg: Option<ParConfig>)
    where
        P: Send,
        M: Send,
        CM: Sync,
    {
        self.par = cfg;
    }

    /// The installed parallelism configuration, if any.
    pub fn parallelism(&self) -> Option<&ParConfig> {
        self.par.as_ref()
    }

    /// The activity record of the most recently executed slot.
    pub fn last_activity(&self) -> &SlotActivity {
        &self.activity
    }

    /// True once every protocol reports [`Protocol::is_done`].
    ///
    /// O(1) after a [`Network::step`]: the observe phase tallies
    /// doneness as it runs, so per-slot run loops don't rescan all `n`
    /// protocols. Falls back to the scan when the tally is stale
    /// (before the first step, or after [`Network::protocols_mut`]).
    pub fn all_done(&self) -> bool {
        match self.done_cache {
            Some(done) => done == self.protocols.len(),
            None => self.protocols.iter().all(|p| p.is_done()),
        }
    }

    /// Executes one slot and returns its activity record.
    ///
    /// # Panics
    ///
    /// Panics if a protocol selects a local channel `>= c` — that is a
    /// protocol bug, not a recoverable condition.
    pub fn step(&mut self) -> &SlotActivity {
        let slot = self.slot;
        let n = self.model.n();
        let k = self.model.k();
        let global_labels = self.model.labels_are_global();

        self.model.advance(slot);
        if let Some(intf) = self.interference.as_mut() {
            intf.advance(slot, &mut self.jam_rng);
        }

        // Whether this slot's per-node phases (A and D) fan out across
        // the worker pool. Decided once so both phases agree; phases B
        // and C always stay serial — jamming consumes the JAMMER
        // stream and winner draws the ENGINE stream in fixed order, so
        // digests are identical at any worker count.
        let par_engaged = self.par.as_ref().is_some_and(|cfg| cfg.engaged(n));

        // Phase A: collect decisions.
        self.scratch.actions.clear();
        if par_engaged {
            let cfg = self.par.as_ref().unwrap();
            // Placeholders so every worker writes its own index-keyed
            // slot; `Sleep` carries no payload, so overwriting is a
            // trivial drop.
            self.scratch.actions.resize_with(n, || Action::Sleep);
            let actions = SendPtr(self.scratch.actions.as_mut_ptr());
            let protocols = SendPtr(self.protocols.as_mut_ptr());
            let rngs = SendPtr(self.node_rngs.as_mut_ptr());
            let model = SendPtr(std::ptr::from_ref(&self.model).cast_mut());
            cfg.pool_run(n, &|start, end| {
                // SAFETY: each index `i` is visited by exactly one
                // worker (the pool partitions `0..n` into disjoint
                // ranges), so `protocols[i]`, `node_rngs[i]`, and
                // `actions[i]` are exclusively owned here; the model
                // is only read (`CM: Sync` proven at install).
                let model = unsafe { &*model.as_const() };
                for i in start..end {
                    let c_i = model.c_of(i);
                    let ctx = NodeCtx {
                        id: NodeId(i as u32),
                        slot,
                        n,
                        c: c_i,
                        k,
                        channels: if global_labels {
                            Some(model.channels(i))
                        } else {
                            None
                        },
                    };
                    let proto = unsafe { &mut *protocols.at(i) };
                    let rng = unsafe { &mut *rngs.at(i) };
                    let action = proto.decide(&ctx, rng);
                    if let Some(ch) = action.channel() {
                        assert!(
                            ch.index() < c_i,
                            "protocol bug: node {i} chose local channel {ch} but c = {c_i}"
                        );
                    }
                    unsafe { *actions.at(i) = action };
                }
            });
        } else {
            for i in 0..n {
                let c_i = self.model.c_of(i);
                let ctx = NodeCtx {
                    id: NodeId(i as u32),
                    slot,
                    n,
                    c: c_i,
                    k,
                    channels: if global_labels {
                        Some(self.model.channels(i))
                    } else {
                        None
                    },
                };
                let action = self.protocols[i].decide(&ctx, &mut self.node_rngs[i]);
                if let Some(ch) = action.channel() {
                    assert!(
                        ch.index() < c_i,
                        "protocol bug: node {i} chose local channel {ch} but c = {c_i}"
                    );
                }
                self.scratch.actions.push(action);
            }
        }

        // Phase B: translate to global channels, show the committed
        // intents to an adaptive adversary, and apply interference.
        self.scratch.jammed_nodes.clear();
        self.scratch.jammed_nodes.resize(n, false);
        let mut sleepers = 0usize;
        let mut jammed_count = 0usize;
        self.scratch.tuned.clear();
        if self.interference.is_some() {
            // Interference is adaptive: the committed intents must be
            // shown to the adversary before jamming is applied.
            self.scratch.intents.clear();
            for (i, action) in self.scratch.actions.iter().enumerate() {
                let Some(local) = action.channel() else {
                    sleepers += 1;
                    continue;
                };
                self.scratch.intents.push(crate::interference::Intent {
                    node: NodeId(i as u32),
                    channel: self.model.channels(i)[local.index()],
                    broadcast: action.is_broadcast(),
                });
            }
            if let Some(intf) = self.interference.as_mut() {
                intf.observe_intents(slot, &self.scratch.intents);
            }
            for intent in &self.scratch.intents {
                let jammed = self
                    .interference
                    .as_ref()
                    .is_some_and(|intf| intf.is_jammed(intent.node, intent.channel));
                if jammed {
                    self.scratch.jammed_nodes[intent.node.index()] = true;
                    jammed_count += 1;
                } else {
                    self.scratch.tuned.push((
                        intent.channel,
                        intent.node.index(),
                        intent.broadcast,
                    ));
                }
            }
        } else {
            // No adversary: tune directly, skipping the intent staging.
            for (i, action) in self.scratch.actions.iter().enumerate() {
                let Some(local) = action.channel() else {
                    sleepers += 1;
                    continue;
                };
                self.scratch.tuned.push((
                    self.model.channels(i)[local.index()],
                    i,
                    action.is_broadcast(),
                ));
            }
        }

        // Phase C: the medium resolves contention. Jammed nodes are
        // pre-filled (they hear noise regardless of substrate); the
        // medium fills in every tuned participant and this slot's
        // channel records.
        self.activity.slot = slot;
        self.activity.sleepers = sleepers;
        self.activity.jammed = jammed_count;
        self.scratch.events.clear();
        self.scratch.events.resize(n, None);
        for (i, &jammed) in self.scratch.jammed_nodes.iter().enumerate() {
            if jammed {
                self.scratch.events[i] = Some(Event::Jammed);
            }
        }
        let Scratch {
            actions,
            tuned,
            events,
            ..
        } = &mut self.scratch;
        self.medium.resolve(
            &SlotInputs {
                slot,
                n,
                total_channels: self.model.total_channels(),
                actions,
                tuned,
            },
            events,
            &mut self.activity,
        );

        // Phase D: deliver observations (sleepers observe nothing),
        // fused with a doneness tally so `all_done` is O(1) in run
        // loops instead of an O(n) rescan every slot.
        let done_count = if par_engaged {
            let cfg = self.par.as_ref().unwrap();
            let events = SendPtr(self.scratch.events.as_mut_ptr());
            let protocols = SendPtr(self.protocols.as_mut_ptr());
            let model = SendPtr(std::ptr::from_ref(&self.model).cast_mut());
            let tally = &self.scratch.done_count;
            tally.store(0, Ordering::Relaxed);
            cfg.pool_run(n, &|start, end| {
                // SAFETY: disjoint index ranges, as in Phase A; events
                // are taken (moved out) by the one worker owning `i`.
                let model = unsafe { &*model.as_const() };
                let mut local_done = 0usize;
                for i in start..end {
                    let proto = unsafe { &mut *protocols.at(i) };
                    if let Some(event) = unsafe { &mut *events.at(i) }.take() {
                        let ctx = NodeCtx {
                            id: NodeId(i as u32),
                            slot,
                            n,
                            c: model.c_of(i),
                            k,
                            channels: if global_labels {
                                Some(model.channels(i))
                            } else {
                                None
                            },
                        };
                        proto.observe(&ctx, event);
                    }
                    if proto.is_done() {
                        local_done += 1;
                    }
                }
                // Relaxed suffices: the pool's barrier orders this
                // against the load below.
                tally.fetch_add(local_done, Ordering::Relaxed);
            });
            tally.load(Ordering::Relaxed)
        } else {
            let mut done = 0usize;
            for i in 0..n {
                if let Some(event) = self.scratch.events[i].take() {
                    let ctx = NodeCtx {
                        id: NodeId(i as u32),
                        slot,
                        n,
                        c: self.model.c_of(i),
                        k,
                        channels: if global_labels {
                            Some(self.model.channels(i))
                        } else {
                            None
                        },
                    };
                    self.protocols[i].observe(&ctx, event);
                }
                if self.protocols[i].is_done() {
                    done += 1;
                }
            }
            done
        };
        self.done_cache = Some(done_count);

        // With the `validate` feature, every slot is checked against the
        // Section 2 contract before being published; the first violation
        // aborts the run. Compiled out by default (the checks allocate).
        #[cfg(feature = "validate")]
        {
            let violations = self.check_conformance();
            assert!(
                violations.is_empty(),
                "model-conformance violation:\n{}",
                crate::conformance::report(&violations)
            );
        }

        self.slot += 1;
        &self.activity
    }

    /// Runs until `done` holds (checked after every slot) or the budget
    /// is exhausted.
    pub fn run(&mut self, budget: u64, mut done: impl FnMut(&Self) -> bool) -> RunOutcome {
        for _ in 0..budget {
            self.step();
            if done(self) {
                return RunOutcome::Done { slots: self.slot };
            }
        }
        RunOutcome::Timeout { budget }
    }

    /// Runs exactly `slots` slots.
    pub fn run_slots(&mut self, slots: u64) {
        for _ in 0..slots {
            self.step();
        }
    }

    /// Runs until every protocol reports done, within the budget.
    pub fn run_to_completion(&mut self, budget: u64) -> RunOutcome {
        if self.all_done() {
            return RunOutcome::Done { slots: self.slot };
        }
        self.run(budget, |net| net.all_done())
    }

    /// Consumes the network and returns its protocol instances.
    pub fn into_protocols(self) -> Vec<P> {
        self.protocols
    }

    /// Consumes the network and returns its medium (e.g. to read
    /// accumulated [`crate::PhysicalDecay`] round counters after a run).
    pub fn into_medium(self) -> Med {
        self.medium
    }

    /// Consumes the network and returns both the protocol instances and
    /// the medium.
    pub fn into_parts(self) -> (Vec<P>, Med) {
        (self.protocols, self.medium)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{full_overlap, shared_core};
    use crate::channel_model::StaticChannels;
    use crate::ids::{GlobalChannel, LocalChannel};

    /// Test protocol: a fixed script of actions; records all events.
    struct Scripted {
        script: Vec<Action<u32>>,
        events: Vec<Event<u32>>,
        at: usize,
    }

    impl Scripted {
        fn new(script: Vec<Action<u32>>) -> Self {
            Scripted {
                script,
                events: Vec::new(),
                at: 0,
            }
        }
    }

    impl Protocol<u32> for Scripted {
        fn decide(&mut self, _ctx: &NodeCtx<'_>, _rng: &mut SimRng) -> Action<u32> {
            let a = self.script[self.at % self.script.len()].clone();
            self.at += 1;
            a
        }
        fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<u32>) {
            self.events.push(event);
        }
    }

    fn one_channel_net(protos: Vec<Scripted>) -> Network<u32, Scripted, StaticChannels> {
        let model = StaticChannels::global(full_overlap(protos.len(), 1).unwrap());
        Network::new(model, protos, 1).unwrap()
    }

    #[test]
    fn lone_broadcaster_succeeds_and_is_heard() {
        let mut net = one_channel_net(vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 5)]),
            Scripted::new(vec![Action::Listen(LocalChannel(0))]),
        ]);
        net.step();
        let p = net.protocols();
        assert_eq!(p[0].events, vec![Event::Delivered]);
        assert_eq!(
            p[1].events,
            vec![Event::Received {
                from: NodeId(0),
                msg: 5
            }]
        );
    }

    #[test]
    fn collision_has_one_winner_and_losers_overhear() {
        let mut net = one_channel_net(vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 10)]),
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 20)]),
            Scripted::new(vec![Action::Listen(LocalChannel(0))]),
        ]);
        net.step();
        let p = net.protocols();
        let delivered: Vec<usize> = (0..2)
            .filter(|&i| p[i].events == vec![Event::Delivered])
            .collect();
        assert_eq!(delivered.len(), 1, "exactly one winner");
        let w = delivered[0];
        let l = 1 - w;
        let expected_msg = if w == 0 { 10 } else { 20 };
        assert_eq!(
            p[l].events,
            vec![Event::Lost {
                winner: NodeId(w as u32),
                msg: expected_msg
            }]
        );
        assert_eq!(
            p[2].events,
            vec![Event::Received {
                from: NodeId(w as u32),
                msg: expected_msg
            }]
        );
    }

    #[test]
    fn listener_on_quiet_channel_hears_silence() {
        let mut net = one_channel_net(vec![Scripted::new(vec![Action::Listen(LocalChannel(0))])]);
        net.step();
        assert_eq!(net.protocols()[0].events, vec![Event::Silence]);
    }

    #[test]
    fn sleeper_observes_nothing() {
        let mut net = one_channel_net(vec![Scripted::new(vec![Action::Sleep])]);
        net.step();
        assert!(net.protocols()[0].events.is_empty());
        assert_eq!(net.last_activity().sleepers, 1);
    }

    #[test]
    fn winner_choice_is_roughly_uniform() {
        // Two persistent broadcasters on one channel: over many slots
        // each should win about half the time.
        let mut net = one_channel_net(vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 1)]),
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 2)]),
        ]);
        net.run_slots(2000);
        let wins0 = net.protocols()[0]
            .events
            .iter()
            .filter(|e| matches!(e, Event::Delivered))
            .count();
        assert!(
            (700..=1300).contains(&wins0),
            "winner selection badly skewed: {wins0}/2000"
        );
    }

    #[test]
    fn separate_channels_do_not_interfere() {
        // shared_core(2, 2, 1): core channel g0 + one private channel each.
        let a = shared_core(2, 2, 1).unwrap();
        let model = StaticChannels::global(a);
        // Node 0 broadcasts on its private channel (local label 1);
        // node 1 listens on its own private channel (also local label 1,
        // but a *different* global channel).
        let protos = vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(1), 9)]),
            Scripted::new(vec![Action::Listen(LocalChannel(1))]),
        ];
        let mut net = Network::new(model, protos, 3).unwrap();
        net.step();
        let p = net.protocols();
        assert_eq!(p[0].events, vec![Event::Delivered]);
        assert_eq!(p[1].events, vec![Event::Silence]);
    }

    #[test]
    fn shared_core_channel_connects_nodes() {
        let a = shared_core(2, 2, 1).unwrap();
        let model = StaticChannels::global(a);
        let protos = vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 9)]),
            Scripted::new(vec![Action::Listen(LocalChannel(0))]),
        ];
        let mut net = Network::new(model, protos, 3).unwrap();
        net.step();
        assert_eq!(
            net.protocols()[1].events,
            vec![Event::Received {
                from: NodeId(0),
                msg: 9
            }]
        );
    }

    #[test]
    fn protocol_count_mismatch_rejected() {
        let model = StaticChannels::global(full_overlap(3, 1).unwrap());
        let protos = vec![Scripted::new(vec![Action::Sleep])];
        assert!(matches!(
            Network::new(model, protos, 0).err(),
            Some(SimError::ProtocolCountMismatch {
                nodes: 3,
                protocols: 1
            })
        ));
    }

    #[test]
    #[should_panic(expected = "protocol bug")]
    fn out_of_range_local_channel_panics() {
        let mut net = one_channel_net(vec![Scripted::new(vec![Action::Listen(LocalChannel(5))])]);
        net.step();
    }

    #[test]
    fn runs_are_deterministic_for_same_seed() {
        let run = |seed: u64| -> Vec<Vec<Event<u32>>> {
            let model = StaticChannels::global(full_overlap(3, 1).unwrap());
            let protos = vec![
                Scripted::new(vec![Action::Broadcast(LocalChannel(0), 1)]),
                Scripted::new(vec![Action::Broadcast(LocalChannel(0), 2)]),
                Scripted::new(vec![Action::Listen(LocalChannel(0))]),
            ];
            let mut net = Network::new(model, protos, seed).unwrap();
            net.run_slots(50);
            net.into_protocols().into_iter().map(|p| p.events).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    #[test]
    fn activity_record_matches_events() {
        let mut net = one_channel_net(vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 10)]),
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 20)]),
            Scripted::new(vec![Action::Listen(LocalChannel(0))]),
        ]);
        let act = net.step().clone();
        assert_eq!(act.transmissions(), 2);
        assert_eq!(act.deliveries(), 1);
        let ch = act.on_channel(GlobalChannel(0)).unwrap();
        assert!(ch.had_collision());
        assert_eq!(ch.listeners, vec![NodeId(2)]);
        assert!(ch.winner.is_some());
    }

    #[test]
    fn jammed_nodes_observe_jammed_and_do_not_participate() {
        use crate::interference::{Intent, Interference};

        /// Jams global channel 0 for node 1 only.
        struct JamOneForOne;
        impl Interference for JamOneForOne {
            fn advance(&mut self, _slot: u64, _rng: &mut SimRng) {}
            fn is_jammed(&self, node: NodeId, channel: GlobalChannel) -> bool {
                node == NodeId(1) && channel == GlobalChannel(0)
            }
        }

        let model = StaticChannels::global(full_overlap(3, 1).unwrap());
        let protos = vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 7)]),
            Scripted::new(vec![Action::Listen(LocalChannel(0))]),
            Scripted::new(vec![Action::Listen(LocalChannel(0))]),
        ];
        let mut net = Network::with_interference(model, protos, 1, Box::new(JamOneForOne)).unwrap();
        let activity = net.step().clone();
        assert_eq!(activity.jammed, 1);
        let p = net.into_protocols();
        assert_eq!(p[0].events, vec![Event::Delivered]);
        assert_eq!(
            p[1].events,
            vec![Event::Jammed],
            "jammed listener hears noise"
        );
        assert_eq!(
            p[2].events,
            vec![Event::Received {
                from: NodeId(0),
                msg: 7
            }],
            "unjammed listener still receives"
        );
        // The jammed node is excluded from the channel's listener list.
        let ch = activity.on_channel(GlobalChannel(0)).unwrap();
        assert_eq!(ch.listeners, vec![NodeId(2)]);

        // Adaptive hook sanity: intents carry the committed tunings.
        struct CaptureIntents(std::sync::Arc<std::sync::Mutex<Vec<Intent>>>);
        impl Interference for CaptureIntents {
            fn advance(&mut self, _slot: u64, _rng: &mut SimRng) {}
            fn observe_intents(&mut self, _slot: u64, intents: &[Intent]) {
                self.0.lock().unwrap().extend_from_slice(intents);
            }
            fn is_jammed(&self, _node: NodeId, _channel: GlobalChannel) -> bool {
                false
            }
        }
        let captured = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let model = StaticChannels::global(full_overlap(2, 1).unwrap());
        let protos = vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 1)]),
            Scripted::new(vec![Action::Listen(LocalChannel(0))]),
        ];
        let mut net = Network::with_interference(
            model,
            protos,
            2,
            Box::new(CaptureIntents(captured.clone())),
        )
        .unwrap();
        net.step();
        let intents = captured.lock().unwrap().clone();
        assert_eq!(intents.len(), 2);
        assert!(intents[0].broadcast && !intents[1].broadcast);
        assert_eq!(intents[0].channel, GlobalChannel(0));
    }

    #[test]
    fn run_returns_done_with_slot_count() {
        let mut net = one_channel_net(vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 5)]),
            Scripted::new(vec![Action::Listen(LocalChannel(0))]),
        ]);
        let outcome = net.run(10, |n| !n.protocols()[1].events.is_empty());
        assert_eq!(outcome, RunOutcome::Done { slots: 1 });
    }

    #[test]
    fn builder_matches_direct_construction() {
        let build = |via_builder: bool| -> Vec<Event<u32>> {
            let model = StaticChannels::global(full_overlap(2, 1).unwrap());
            let protos = vec![
                Scripted::new(vec![Action::Broadcast(LocalChannel(0), 5)]),
                Scripted::new(vec![Action::Listen(LocalChannel(0))]),
            ];
            let mut net = if via_builder {
                NetworkBuilder::new(model)
                    .seed(4)
                    .protocols(protos)
                    .build()
                    .unwrap()
            } else {
                Network::new(model, protos, 4).unwrap()
            };
            net.run_slots(8);
            net.into_protocols().remove(1).events
        };
        assert_eq!(build(true), build(false));
    }

    #[test]
    fn builder_rejects_wrong_protocol_count() {
        let model = StaticChannels::global(full_overlap(3, 1).unwrap());
        let result = NetworkBuilder::<u32, Scripted, _>::new(model)
            .protocol(Scripted::new(vec![Action::Sleep]))
            .build();
        assert!(matches!(
            result.err(),
            Some(SimError::ProtocolCountMismatch { .. })
        ));
    }

    #[test]
    fn builder_swaps_media() {
        use crate::medium::PhysicalDecay;
        let model = StaticChannels::global(full_overlap(2, 1).unwrap());
        let mut net = NetworkBuilder::new(model)
            .seed(4)
            .protocol(Scripted::new(vec![Action::Broadcast(LocalChannel(0), 5)]))
            .protocol(Scripted::new(vec![Action::Listen(LocalChannel(0))]))
            .medium(PhysicalDecay::new())
            .build()
            .unwrap();
        net.step();
        assert!(net.medium().physical_rounds() > 0);
        assert_eq!(
            net.protocols()[1].events,
            vec![Event::Received {
                from: NodeId(0),
                msg: 5
            }]
        );
    }

    #[test]
    fn run_times_out() {
        let mut net = one_channel_net(vec![Scripted::new(vec![Action::Sleep])]);
        let outcome = net.run(5, |_| false);
        assert_eq!(outcome, RunOutcome::Timeout { budget: 5 });
        assert_eq!(outcome.slots(), None);
        assert!(!outcome.is_done());
    }

    /// Test protocol exercising the per-node RNG lane: hops uniformly,
    /// broadcasts ~30% of slots, records every event.
    struct RandomHopper {
        events: Vec<Event<u32>>,
    }

    impl Protocol<u32> for RandomHopper {
        fn decide(&mut self, ctx: &NodeCtx<'_>, rng: &mut SimRng) -> Action<u32> {
            use rand::Rng;
            let ch = LocalChannel(rng.gen_range(0..ctx.c as u32));
            if rng.gen_bool(0.3) {
                Action::Broadcast(ch, ctx.id.0)
            } else {
                Action::Listen(ch)
            }
        }
        fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<u32>) {
            self.events.push(event);
        }
    }

    #[test]
    fn parallel_stepping_reproduces_sequential_events_exactly() {
        let run = |par: Option<ParConfig>| -> Vec<Vec<Event<u32>>> {
            let model = StaticChannels::local(shared_core(24, 6, 3).unwrap(), 5);
            let protos = (0..24)
                .map(|_| RandomHopper { events: Vec::new() })
                .collect();
            let mut net = Network::new(model, protos, 42).unwrap();
            net.set_parallelism(par);
            net.run_slots(40);
            net.into_protocols().into_iter().map(|p| p.events).collect()
        };
        let sequential = run(None);
        for workers in [1, 2, 3, 8] {
            let cfg = ParConfig::new(Arc::new(WorkerPool::new(workers))).with_threshold(1);
            assert_eq!(
                run(Some(cfg)),
                sequential,
                "parallel run diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn below_threshold_networks_step_sequentially() {
        // Same pool, threshold above n: the parallel machinery must not
        // engage, and results are (trivially) identical.
        let model = StaticChannels::local(shared_core(8, 4, 2).unwrap(), 3);
        let protos = (0..8)
            .map(|_| RandomHopper { events: Vec::new() })
            .collect();
        let mut net = Network::new(model, protos, 9).unwrap();
        let cfg = ParConfig::new(Arc::new(WorkerPool::new(4)));
        assert_eq!(cfg.threshold(), DEFAULT_PAR_THRESHOLD);
        assert!(!cfg.engaged(8));
        net.set_parallelism(Some(cfg));
        net.run_slots(10);
        assert_eq!(net.slot(), 10);
    }

    #[test]
    #[should_panic(expected = "protocol bug")]
    fn out_of_range_local_channel_panics_in_parallel_phase() {
        let model = StaticChannels::global(full_overlap(8, 1).unwrap());
        let protos = (0..8)
            .map(|_| Scripted::new(vec![Action::Listen(LocalChannel(5))]))
            .collect();
        let mut net = Network::new(model, protos, 1).unwrap();
        net.set_parallelism(Some(
            ParConfig::new(Arc::new(WorkerPool::new(2))).with_threshold(1),
        ));
        net.step();
    }

    /// Done once `decide` has been called `target` times.
    struct DoneAfter {
        target: u32,
        decides: u32,
    }

    impl Protocol<u32> for DoneAfter {
        fn decide(&mut self, _ctx: &NodeCtx<'_>, _rng: &mut SimRng) -> Action<u32> {
            self.decides += 1;
            Action::Sleep
        }
        fn observe(&mut self, _ctx: &NodeCtx<'_>, _event: Event<u32>) {}
        fn is_done(&self) -> bool {
            self.decides >= self.target
        }
    }

    #[test]
    fn all_done_cache_matches_scan_and_invalidates_on_protocols_mut() {
        let model = StaticChannels::global(full_overlap(3, 1).unwrap());
        let protos = (0..3)
            .map(|_| DoneAfter {
                target: 5,
                decides: 0,
            })
            .collect();
        let mut net = Network::new(model, protos, 0).unwrap();
        assert!(!net.all_done(), "fallback scan before any step");
        let outcome = net.run_to_completion(100);
        assert_eq!(
            outcome,
            RunOutcome::Done { slots: 5 },
            "cached count drives run loops"
        );
        // Mutating protocol state behind the engine's back must
        // invalidate the cache: if the stale count survived, the next
        // all_done would still claim done.
        for p in net.protocols_mut() {
            p.decides = 0;
        }
        assert!(
            !net.all_done(),
            "protocols_mut must invalidate the done cache"
        );
    }

    #[test]
    fn parallel_done_tally_agrees_with_scan() {
        let make = |par: Option<ParConfig>| {
            let model = StaticChannels::global(full_overlap(16, 1).unwrap());
            let protos = (0..16)
                .map(|i| DoneAfter {
                    target: 3 + (i % 4) as u32,
                    decides: 0,
                })
                .collect();
            let mut net = Network::<u32, _, _>::new(model, protos, 0).unwrap();
            net.set_parallelism(par);
            net
        };
        let cfg = ParConfig::new(Arc::new(WorkerPool::new(3))).with_threshold(1);
        let mut seq = make(None);
        let mut par = make(Some(cfg));
        for _ in 0..8 {
            seq.step();
            par.step();
            assert_eq!(seq.all_done(), par.all_done());
            let scan = par.protocols().iter().all(|p| p.is_done());
            assert_eq!(par.all_done(), scan, "cached tally must match a fresh scan");
        }
        assert!(par.all_done());
    }
}
