//! The synchronous slot engine.
//!
//! [`Network`] drives `n` protocol state machines against a
//! [`ChannelModel`], implementing the paper's Section 2 model exactly:
//!
//! 1. at the start of each slot every node picks an action (broadcast /
//!    listen / sleep) on one of its `c` channels, addressed by local
//!    label;
//! 2. the engine translates local labels to global channels;
//! 3. on each channel with at least one transmission, one transmission —
//!    chosen uniformly at random — succeeds: all listeners on the channel
//!    receive it, the winner learns it succeeded, and the losing
//!    broadcasters both learn they failed *and* receive the winning
//!    message;
//! 4. every non-sleeping node observes the outcome.
//!
//! The engine is fully deterministic given its seed: per-node protocol
//! RNGs, the contention-resolution RNG, and the interference RNG are all
//! derived from the master seed on independent streams, and channels are
//! resolved in sorted order so winner draws are reproducible.

use crate::channel_model::ChannelModel;
use crate::error::SimError;
use crate::ids::{GlobalChannel, NodeId};
use crate::interference::Interference;
use crate::proto::{Action, Event, NodeCtx, Protocol};
use crate::rng::{derive_rng, streams, SimRng};
use crate::trace::{ChannelActivity, SlotActivity};
use rand::Rng;

/// The result of [`Network::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The predicate became true after the given number of slots had
    /// executed (i.e. `slots` is the completion time in slots).
    Done {
        /// Slots executed when the predicate first held.
        slots: u64,
    },
    /// The slot budget was exhausted before the predicate held.
    Timeout {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl RunOutcome {
    /// The completion time, or `None` on timeout.
    ///
    /// ```
    /// use crn_sim::RunOutcome;
    /// assert_eq!(RunOutcome::Done { slots: 10 }.slots(), Some(10));
    /// assert_eq!(RunOutcome::Timeout { budget: 5 }.slots(), None);
    /// ```
    pub fn slots(self) -> Option<u64> {
        match self {
            RunOutcome::Done { slots } => Some(slots),
            RunOutcome::Timeout { .. } => None,
        }
    }

    /// True if the run completed within budget.
    pub fn is_done(self) -> bool {
        matches!(self, RunOutcome::Done { .. })
    }
}

/// A consuming builder for [`Network`], convenient when protocols are
/// assembled incrementally or interference is optional.
///
/// # Examples
///
/// ```
/// use crn_sim::assignment::full_overlap;
/// use crn_sim::channel_model::StaticChannels;
/// use crn_sim::engine::NetworkBuilder;
/// use crn_sim::{Action, Event, NodeCtx, Protocol};
/// use crn_sim::rng::SimRng;
///
/// struct Quiet;
/// impl Protocol<u8> for Quiet {
///     fn decide(&mut self, _: &NodeCtx<'_>, _: &mut SimRng) -> Action<u8> { Action::Sleep }
///     fn observe(&mut self, _: &NodeCtx<'_>, _: Event<u8>) {}
/// }
///
/// let model = StaticChannels::global(full_overlap(2, 1)?);
/// let mut net = NetworkBuilder::new(model)
///     .seed(9)
///     .protocol(Quiet)
///     .protocol(Quiet)
///     .build()?;
/// net.step();
/// assert_eq!(net.slot(), 1);
/// # Ok::<(), crn_sim::SimError>(())
/// ```
#[allow(missing_debug_implementations)] // protocols and interference are user types
pub struct NetworkBuilder<M, P, CM> {
    model: CM,
    protocols: Vec<P>,
    seed: u64,
    interference: Option<Box<dyn Interference>>,
    _marker: std::marker::PhantomData<M>,
}

impl<M, P, CM> NetworkBuilder<M, P, CM>
where
    M: Clone,
    P: Protocol<M>,
    CM: ChannelModel,
{
    /// Starts a builder over `model` (seed 0, no protocols, no
    /// interference).
    pub fn new(model: CM) -> Self {
        NetworkBuilder {
            model,
            protocols: Vec::new(),
            seed: 0,
            interference: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Appends one protocol instance (node ids follow insertion order).
    #[must_use]
    pub fn protocol(mut self, protocol: P) -> Self {
        self.protocols.push(protocol);
        self
    }

    /// Appends protocol instances in bulk.
    #[must_use]
    pub fn protocols(mut self, protocols: impl IntoIterator<Item = P>) -> Self {
        self.protocols.extend(protocols);
        self
    }

    /// Installs an interference model.
    #[must_use]
    pub fn interference(mut self, interference: Box<dyn Interference>) -> Self {
        self.interference = Some(interference);
        self
    }

    /// Builds the network.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProtocolCountMismatch`] if the number of
    /// protocols differs from the model's node count.
    pub fn build(self) -> Result<Network<M, P, CM>, SimError> {
        Network::build(self.model, self.protocols, self.seed, self.interference)
    }
}

/// A simulated single-hop cognitive radio network.
///
/// Generic over the message type `M`, the per-node protocol `P`, and the
/// channel model `CM`.
///
/// # Examples
///
/// ```
/// use crn_sim::assignment::full_overlap;
/// use crn_sim::channel_model::StaticChannels;
/// use crn_sim::{Action, Event, LocalChannel, Network, NodeCtx, Protocol};
/// use crn_sim::rng::SimRng;
///
/// /// Node 0 shouts; everyone else listens on the only channel.
/// struct Shout(bool);
/// impl Protocol<u32> for Shout {
///     fn decide(&mut self, ctx: &NodeCtx<'_>, _rng: &mut SimRng) -> Action<u32> {
///         if ctx.id.index() == 0 {
///             Action::Broadcast(LocalChannel(0), 42)
///         } else {
///             Action::Listen(LocalChannel(0))
///         }
///     }
///     fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<u32>) {
///         if matches!(event, Event::Received { msg: 42, .. }) {
///             self.0 = true;
///         }
///     }
///     fn is_done(&self) -> bool { self.0 }
/// }
///
/// let model = StaticChannels::global(full_overlap(3, 1)?);
/// let mut net = Network::new(model, vec![Shout(false), Shout(false), Shout(false)], 7)?;
/// net.step();
/// assert!(net.protocols()[1].is_done());
/// assert!(net.protocols()[2].is_done());
/// # Ok::<(), crn_sim::SimError>(())
/// ```
#[allow(missing_debug_implementations)] // protocols and interference are user types
pub struct Network<M, P, CM> {
    model: CM,
    protocols: Vec<P>,
    node_rngs: Vec<SimRng>,
    engine_rng: SimRng,
    jam_rng: SimRng,
    interference: Option<Box<dyn Interference>>,
    slot: u64,
    activity: SlotActivity,
    scratch: Scratch<M>,
    _marker: std::marker::PhantomData<M>,
}

/// Reusable per-slot buffers owned by [`Network`].
///
/// Every vector [`Network::step`] needs is cleared and refilled in
/// place, so after the first few slots the engine performs no heap
/// allocation in steady state (see `tests/alloc.rs`). `pool` recycles
/// the [`ChannelActivity`] records — and, crucially, the `broadcasters`
/// / `listeners` vectors inside them — that were published through
/// [`Network::last_activity`] on the previous slot.
struct Scratch<M> {
    /// Phase A: each node's chosen action this slot.
    actions: Vec<Action<M>>,
    /// Phase B: per node, whether interference suppressed it this slot.
    jammed_nodes: Vec<bool>,
    /// Phase B: committed tunings shown to adaptive interference.
    intents: Vec<crate::interference::Intent>,
    /// Phase B/C: `(channel, node, is_broadcast)`, sorted by channel.
    tuned: Vec<(GlobalChannel, usize, bool)>,
    /// Phase B: staging buffer for the grouping pass that orders `tuned`.
    tuned_unsorted: Vec<(GlobalChannel, usize, bool)>,
    /// Sparse activity index: per global channel, the epoch (slot + 1)
    /// that last touched it. A stale stamp means "inactive this slot",
    /// so no per-slot clearing of the channel space is ever needed.
    chan_epoch: Vec<u64>,
    /// Per global channel, its slot in `active` (valid only when the
    /// epoch stamp is current); reused as the running placement offset
    /// during the grouping pass.
    chan_pos: Vec<u32>,
    /// The distinct channels touched this slot, with participant counts.
    active: Vec<(GlobalChannel, u32)>,
    /// Phase C: per node, the winning node on its channel (if any).
    winners: Vec<Option<usize>>,
    /// Retired [`ChannelActivity`] records, indexed by global channel.
    ///
    /// Keying the pool by channel (rather than recycling LIFO) means
    /// each channel's broadcaster/listener vectors converge to *that
    /// channel's* high-water capacity, after which refills never
    /// reallocate. Costs `O(total_channels)` empty records of scratch
    /// memory.
    pool: Vec<ChannelActivity>,
}

fn empty_channel_record() -> ChannelActivity {
    ChannelActivity {
        channel: GlobalChannel(0),
        broadcasters: Vec::new(),
        winner: None,
        listeners: Vec::new(),
    }
}

impl<M> Default for Scratch<M> {
    fn default() -> Self {
        Scratch {
            actions: Vec::new(),
            jammed_nodes: Vec::new(),
            intents: Vec::new(),
            tuned: Vec::new(),
            tuned_unsorted: Vec::new(),
            chan_epoch: Vec::new(),
            chan_pos: Vec::new(),
            active: Vec::new(),
            winners: Vec::new(),
            pool: Vec::new(),
        }
    }
}

impl<M, P, CM> Network<M, P, CM>
where
    M: Clone,
    P: Protocol<M>,
    CM: ChannelModel,
{
    /// Creates a network with no interference.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProtocolCountMismatch`] if `protocols.len()`
    /// differs from the model's node count.
    pub fn new(model: CM, protocols: Vec<P>, seed: u64) -> Result<Self, SimError> {
        Self::build(model, protocols, seed, None)
    }

    /// Creates a network subject to an [`Interference`] model (used by
    /// the jamming experiments of Theorem 18).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ProtocolCountMismatch`] if `protocols.len()`
    /// differs from the model's node count.
    pub fn with_interference(
        model: CM,
        protocols: Vec<P>,
        seed: u64,
        interference: Box<dyn Interference>,
    ) -> Result<Self, SimError> {
        Self::build(model, protocols, seed, Some(interference))
    }

    fn build(
        model: CM,
        protocols: Vec<P>,
        seed: u64,
        interference: Option<Box<dyn Interference>>,
    ) -> Result<Self, SimError> {
        if protocols.len() != model.n() {
            return Err(SimError::ProtocolCountMismatch {
                nodes: model.n(),
                protocols: protocols.len(),
            });
        }
        let node_rngs = (0..model.n())
            .map(|i| derive_rng(seed, streams::NODE_BASE + i as u64))
            .collect();
        Ok(Network {
            model,
            protocols,
            node_rngs,
            engine_rng: derive_rng(seed, streams::ENGINE),
            jam_rng: derive_rng(seed, streams::JAMMER),
            interference,
            slot: 0,
            activity: SlotActivity::default(),
            scratch: Scratch::default(),
            _marker: std::marker::PhantomData,
        })
    }

    /// The current slot (number of slots executed so far).
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// The channel model.
    pub fn model(&self) -> &CM {
        &self.model
    }

    /// The installed interference model, if any.
    pub fn interference(&self) -> Option<&dyn Interference> {
        self.interference.as_deref()
    }

    /// Checks the most recently executed slot against the Section 2
    /// model contract (see [`crate::conformance`]); returns every
    /// violation found. Valid only after at least one [`Network::step`]
    /// — the model still holds that slot's channel sets until the next
    /// step advances it.
    pub fn check_conformance(&self) -> Vec<crate::conformance::Violation> {
        crate::conformance::check_slot(&self.model, self.interference(), &self.activity)
    }

    /// The protocol instances, indexed by node.
    pub fn protocols(&self) -> &[P] {
        &self.protocols
    }

    /// Mutable access to the protocol instances (e.g. to inject values
    /// between protocol phases in tests).
    pub fn protocols_mut(&mut self) -> &mut [P] {
        &mut self.protocols
    }

    /// The activity record of the most recently executed slot.
    pub fn last_activity(&self) -> &SlotActivity {
        &self.activity
    }

    /// True once every protocol reports [`Protocol::is_done`].
    pub fn all_done(&self) -> bool {
        self.protocols.iter().all(|p| p.is_done())
    }

    /// Executes one slot and returns its activity record.
    ///
    /// # Panics
    ///
    /// Panics if a protocol selects a local channel `>= c` — that is a
    /// protocol bug, not a recoverable condition.
    pub fn step(&mut self) -> &SlotActivity {
        let slot = self.slot;
        let n = self.model.n();
        let k = self.model.k();
        let global_labels = self.model.labels_are_global();

        self.model.advance(slot);
        if let Some(intf) = self.interference.as_mut() {
            intf.advance(slot, &mut self.jam_rng);
        }

        // Retire last slot's channel records to their per-channel pool
        // slots so each channel's vectors keep their own capacity.
        if self.scratch.pool.len() < self.model.total_channels() {
            self.scratch
                .pool
                .resize_with(self.model.total_channels(), empty_channel_record);
        }
        for act in self.activity.channels.drain(..) {
            let idx = act.channel.index();
            self.scratch.pool[idx] = act;
        }

        // Phase A: collect decisions.
        self.scratch.actions.clear();
        for i in 0..n {
            let c_i = self.model.c_of(i);
            let ctx = NodeCtx {
                id: NodeId(i as u32),
                slot,
                n,
                c: c_i,
                k,
                channels: if global_labels {
                    Some(self.model.channels(i))
                } else {
                    None
                },
            };
            let action = self.protocols[i].decide(&ctx, &mut self.node_rngs[i]);
            if let Some(ch) = action.channel() {
                assert!(
                    ch.index() < c_i,
                    "protocol bug: node {i} chose local channel {ch} but c = {c_i}"
                );
            }
            self.scratch.actions.push(action);
        }

        // Phase B: translate to global channels, show the committed
        // intents to an adaptive adversary, apply interference, and
        // group participants per channel (sorted for determinism).
        self.scratch.jammed_nodes.clear();
        self.scratch.jammed_nodes.resize(n, false);
        let mut sleepers = 0usize;
        let mut jammed_count = 0usize;
        self.scratch.tuned_unsorted.clear();
        if self.interference.is_some() {
            // Interference is adaptive: the committed intents must be
            // shown to the adversary before jamming is applied.
            self.scratch.intents.clear();
            for (i, action) in self.scratch.actions.iter().enumerate() {
                let Some(local) = action.channel() else {
                    sleepers += 1;
                    continue;
                };
                self.scratch.intents.push(crate::interference::Intent {
                    node: NodeId(i as u32),
                    channel: self.model.channels(i)[local.index()],
                    broadcast: action.is_broadcast(),
                });
            }
            if let Some(intf) = self.interference.as_mut() {
                intf.observe_intents(slot, &self.scratch.intents);
            }
            for intent in &self.scratch.intents {
                let jammed = self
                    .interference
                    .as_ref()
                    .is_some_and(|intf| intf.is_jammed(intent.node, intent.channel));
                if jammed {
                    self.scratch.jammed_nodes[intent.node.index()] = true;
                    jammed_count += 1;
                } else {
                    self.scratch.tuned_unsorted.push((
                        intent.channel,
                        intent.node.index(),
                        intent.broadcast,
                    ));
                }
            }
        } else {
            // No adversary: tune directly, skipping the intent staging.
            for (i, action) in self.scratch.actions.iter().enumerate() {
                let Some(local) = action.channel() else {
                    sleepers += 1;
                    continue;
                };
                self.scratch.tuned_unsorted.push((
                    self.model.channels(i)[local.index()],
                    i,
                    action.is_broadcast(),
                ));
            }
        }
        self.sort_tuned_by_channel();

        // Phase C: resolve contention channel by channel.
        self.activity.slot = slot;
        self.activity.sleepers = sleepers;
        self.activity.jammed = jammed_count;
        self.scratch.winners.clear();
        self.scratch.winners.resize(n, None); // per node: winning node on its channel
        let mut start = 0;
        while start < self.scratch.tuned.len() {
            let channel = self.scratch.tuned[start].0;
            let mut end = start;
            while end < self.scratch.tuned.len() && self.scratch.tuned[end].0 == channel {
                end += 1;
            }
            let mut act = std::mem::replace(
                &mut self.scratch.pool[channel.index()],
                empty_channel_record(),
            );
            act.channel = channel;
            act.broadcasters.clear();
            act.listeners.clear();
            let group = &self.scratch.tuned[start..end];
            for &(_, node, is_broadcast) in group {
                if is_broadcast {
                    act.broadcasters.push(NodeId(node as u32));
                } else {
                    act.listeners.push(NodeId(node as u32));
                }
            }
            let winner = if act.broadcasters.is_empty() {
                None
            } else {
                let pick = self.engine_rng.gen_range(0..act.broadcasters.len());
                Some(act.broadcasters[pick].index())
            };
            act.winner = winner.map(|i| NodeId(i as u32));
            for &(_, node, _) in group {
                self.scratch.winners[node] = winner;
            }
            self.activity.channels.push(act);
            start = end;
        }

        // Phase D: deliver observations.
        for i in 0..n {
            let event: Event<M> = if self.scratch.jammed_nodes[i] {
                Event::Jammed
            } else {
                match &self.scratch.actions[i] {
                    Action::Sleep => continue,
                    Action::Broadcast(..) => match self.scratch.winners[i] {
                        Some(w) if w == i => Event::Delivered,
                        Some(w) => {
                            let Action::Broadcast(_, msg) = &self.scratch.actions[w] else {
                                unreachable!("winner must have broadcast")
                            };
                            Event::Lost {
                                winner: NodeId(w as u32),
                                msg: msg.clone(),
                            }
                        }
                        None => unreachable!("a broadcaster's channel always has a winner"),
                    },
                    Action::Listen(_) => match self.scratch.winners[i] {
                        Some(w) => {
                            let Action::Broadcast(_, msg) = &self.scratch.actions[w] else {
                                unreachable!("winner must have broadcast")
                            };
                            Event::Received {
                                from: NodeId(w as u32),
                                msg: msg.clone(),
                            }
                        }
                        None => Event::Silence,
                    },
                }
            };
            let ctx = NodeCtx {
                id: NodeId(i as u32),
                slot,
                n,
                c: self.model.c_of(i),
                k,
                channels: if global_labels {
                    Some(self.model.channels(i))
                } else {
                    None
                },
            };
            self.protocols[i].observe(&ctx, event);
        }

        // With the `validate` feature, every slot is checked against the
        // Section 2 contract before being published; the first violation
        // aborts the run. Compiled out by default (the checks allocate).
        #[cfg(feature = "validate")]
        {
            let violations = self.check_conformance();
            assert!(
                violations.is_empty(),
                "model-conformance violation:\n{}",
                crate::conformance::report(&violations)
            );
        }

        self.slot += 1;
        &self.activity
    }

    /// Orders `scratch.tuned_unsorted` by global channel into
    /// `scratch.tuned`, ties broken by node id.
    ///
    /// Cost is `O(T + A log A)` for `T` tuned nodes on `A` distinct
    /// *active* channels — never proportional to the model's full
    /// channel space `C`. An epoch stamp (`slot + 1`) marks the channels
    /// touched this slot, so the per-channel arrays are neither cleared
    /// nor scanned between slots; sparse slots (the common case in
    /// COGCAST/COGCOMP and all rendezvous baselines) pay only for what
    /// they touch. The ordering is identical to sorting by
    /// `(channel, node)`: `tuned_unsorted` is filled in ascending node
    /// order and each node appears at most once, so stable placement by
    /// channel preserves node order within each group.
    fn sort_tuned_by_channel(&mut self) {
        let unsorted = &mut self.scratch.tuned_unsorted;
        let tuned = &mut self.scratch.tuned;
        tuned.clear();
        // Sized to the channel space once (amortized; see tests/alloc.rs),
        // then only the active entries are ever touched again.
        let total = self.model.total_channels();
        if self.scratch.chan_epoch.len() < total {
            self.scratch.chan_epoch.resize(total, 0);
            self.scratch.chan_pos.resize(total, 0);
        }
        let epoch = self.slot + 1; // stamps start at 0, so epoch 0 never matches
        let active = &mut self.scratch.active;
        active.clear();
        for &(ch, _, _) in unsorted.iter() {
            let ci = ch.index();
            if self.scratch.chan_epoch[ci] == epoch {
                active[self.scratch.chan_pos[ci] as usize].1 += 1;
            } else {
                self.scratch.chan_epoch[ci] = epoch;
                self.scratch.chan_pos[ci] = active.len() as u32;
                active.push((ch, 1));
            }
        }
        // Winner draws consume the engine stream in ascending channel
        // order, so the active set must be resolved sorted.
        active.sort_unstable_by_key(|&(ch, _)| ch);
        let mut offset = 0u32;
        for &(ch, count) in active.iter() {
            self.scratch.chan_pos[ch.index()] = offset;
            offset += count;
        }
        tuned.resize(unsorted.len(), (GlobalChannel(0), 0, false));
        for &entry in unsorted.iter() {
            let ci = entry.0.index();
            let at = self.scratch.chan_pos[ci];
            tuned[at as usize] = entry;
            self.scratch.chan_pos[ci] = at + 1;
        }
    }

    /// Runs until `done` holds (checked after every slot) or the budget
    /// is exhausted.
    pub fn run(&mut self, budget: u64, mut done: impl FnMut(&Self) -> bool) -> RunOutcome {
        for _ in 0..budget {
            self.step();
            if done(self) {
                return RunOutcome::Done { slots: self.slot };
            }
        }
        RunOutcome::Timeout { budget }
    }

    /// Runs exactly `slots` slots.
    pub fn run_slots(&mut self, slots: u64) {
        for _ in 0..slots {
            self.step();
        }
    }

    /// Runs until every protocol reports done, within the budget.
    pub fn run_to_completion(&mut self, budget: u64) -> RunOutcome {
        if self.all_done() {
            return RunOutcome::Done { slots: self.slot };
        }
        self.run(budget, |net| net.all_done())
    }

    /// Consumes the network and returns its protocol instances.
    pub fn into_protocols(self) -> Vec<P> {
        self.protocols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{full_overlap, shared_core};
    use crate::channel_model::StaticChannels;
    use crate::ids::LocalChannel;

    /// Test protocol: a fixed script of actions; records all events.
    struct Scripted {
        script: Vec<Action<u32>>,
        events: Vec<Event<u32>>,
        at: usize,
    }

    impl Scripted {
        fn new(script: Vec<Action<u32>>) -> Self {
            Scripted {
                script,
                events: Vec::new(),
                at: 0,
            }
        }
    }

    impl Protocol<u32> for Scripted {
        fn decide(&mut self, _ctx: &NodeCtx<'_>, _rng: &mut SimRng) -> Action<u32> {
            let a = self.script[self.at % self.script.len()].clone();
            self.at += 1;
            a
        }
        fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<u32>) {
            self.events.push(event);
        }
    }

    fn one_channel_net(protos: Vec<Scripted>) -> Network<u32, Scripted, StaticChannels> {
        let model = StaticChannels::global(full_overlap(protos.len(), 1).unwrap());
        Network::new(model, protos, 1).unwrap()
    }

    #[test]
    fn lone_broadcaster_succeeds_and_is_heard() {
        let mut net = one_channel_net(vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 5)]),
            Scripted::new(vec![Action::Listen(LocalChannel(0))]),
        ]);
        net.step();
        let p = net.protocols();
        assert_eq!(p[0].events, vec![Event::Delivered]);
        assert_eq!(
            p[1].events,
            vec![Event::Received {
                from: NodeId(0),
                msg: 5
            }]
        );
    }

    #[test]
    fn collision_has_one_winner_and_losers_overhear() {
        let mut net = one_channel_net(vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 10)]),
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 20)]),
            Scripted::new(vec![Action::Listen(LocalChannel(0))]),
        ]);
        net.step();
        let p = net.protocols();
        let delivered: Vec<usize> = (0..2)
            .filter(|&i| p[i].events == vec![Event::Delivered])
            .collect();
        assert_eq!(delivered.len(), 1, "exactly one winner");
        let w = delivered[0];
        let l = 1 - w;
        let expected_msg = if w == 0 { 10 } else { 20 };
        assert_eq!(
            p[l].events,
            vec![Event::Lost {
                winner: NodeId(w as u32),
                msg: expected_msg
            }]
        );
        assert_eq!(
            p[2].events,
            vec![Event::Received {
                from: NodeId(w as u32),
                msg: expected_msg
            }]
        );
    }

    #[test]
    fn listener_on_quiet_channel_hears_silence() {
        let mut net = one_channel_net(vec![Scripted::new(vec![Action::Listen(LocalChannel(0))])]);
        net.step();
        assert_eq!(net.protocols()[0].events, vec![Event::Silence]);
    }

    #[test]
    fn sleeper_observes_nothing() {
        let mut net = one_channel_net(vec![Scripted::new(vec![Action::Sleep])]);
        net.step();
        assert!(net.protocols()[0].events.is_empty());
        assert_eq!(net.last_activity().sleepers, 1);
    }

    #[test]
    fn winner_choice_is_roughly_uniform() {
        // Two persistent broadcasters on one channel: over many slots
        // each should win about half the time.
        let mut net = one_channel_net(vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 1)]),
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 2)]),
        ]);
        net.run_slots(2000);
        let wins0 = net.protocols()[0]
            .events
            .iter()
            .filter(|e| matches!(e, Event::Delivered))
            .count();
        assert!(
            (700..=1300).contains(&wins0),
            "winner selection badly skewed: {wins0}/2000"
        );
    }

    #[test]
    fn separate_channels_do_not_interfere() {
        // shared_core(2, 2, 1): core channel g0 + one private channel each.
        let a = shared_core(2, 2, 1).unwrap();
        let model = StaticChannels::global(a);
        // Node 0 broadcasts on its private channel (local label 1);
        // node 1 listens on its own private channel (also local label 1,
        // but a *different* global channel).
        let protos = vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(1), 9)]),
            Scripted::new(vec![Action::Listen(LocalChannel(1))]),
        ];
        let mut net = Network::new(model, protos, 3).unwrap();
        net.step();
        let p = net.protocols();
        assert_eq!(p[0].events, vec![Event::Delivered]);
        assert_eq!(p[1].events, vec![Event::Silence]);
    }

    #[test]
    fn shared_core_channel_connects_nodes() {
        let a = shared_core(2, 2, 1).unwrap();
        let model = StaticChannels::global(a);
        let protos = vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 9)]),
            Scripted::new(vec![Action::Listen(LocalChannel(0))]),
        ];
        let mut net = Network::new(model, protos, 3).unwrap();
        net.step();
        assert_eq!(
            net.protocols()[1].events,
            vec![Event::Received {
                from: NodeId(0),
                msg: 9
            }]
        );
    }

    #[test]
    fn protocol_count_mismatch_rejected() {
        let model = StaticChannels::global(full_overlap(3, 1).unwrap());
        let protos = vec![Scripted::new(vec![Action::Sleep])];
        assert!(matches!(
            Network::new(model, protos, 0).err(),
            Some(SimError::ProtocolCountMismatch {
                nodes: 3,
                protocols: 1
            })
        ));
    }

    #[test]
    #[should_panic(expected = "protocol bug")]
    fn out_of_range_local_channel_panics() {
        let mut net = one_channel_net(vec![Scripted::new(vec![Action::Listen(LocalChannel(5))])]);
        net.step();
    }

    #[test]
    fn runs_are_deterministic_for_same_seed() {
        let run = |seed: u64| -> Vec<Vec<Event<u32>>> {
            let model = StaticChannels::global(full_overlap(3, 1).unwrap());
            let protos = vec![
                Scripted::new(vec![Action::Broadcast(LocalChannel(0), 1)]),
                Scripted::new(vec![Action::Broadcast(LocalChannel(0), 2)]),
                Scripted::new(vec![Action::Listen(LocalChannel(0))]),
            ];
            let mut net = Network::new(model, protos, seed).unwrap();
            net.run_slots(50);
            net.into_protocols().into_iter().map(|p| p.events).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    #[test]
    fn activity_record_matches_events() {
        let mut net = one_channel_net(vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 10)]),
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 20)]),
            Scripted::new(vec![Action::Listen(LocalChannel(0))]),
        ]);
        let act = net.step().clone();
        assert_eq!(act.transmissions(), 2);
        assert_eq!(act.deliveries(), 1);
        let ch = act.on_channel(GlobalChannel(0)).unwrap();
        assert!(ch.had_collision());
        assert_eq!(ch.listeners, vec![NodeId(2)]);
        assert!(ch.winner.is_some());
    }

    #[test]
    fn jammed_nodes_observe_jammed_and_do_not_participate() {
        use crate::interference::{Intent, Interference};

        /// Jams global channel 0 for node 1 only.
        struct JamOneForOne;
        impl Interference for JamOneForOne {
            fn advance(&mut self, _slot: u64, _rng: &mut SimRng) {}
            fn is_jammed(&self, node: NodeId, channel: GlobalChannel) -> bool {
                node == NodeId(1) && channel == GlobalChannel(0)
            }
        }

        let model = StaticChannels::global(full_overlap(3, 1).unwrap());
        let protos = vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 7)]),
            Scripted::new(vec![Action::Listen(LocalChannel(0))]),
            Scripted::new(vec![Action::Listen(LocalChannel(0))]),
        ];
        let mut net = Network::with_interference(model, protos, 1, Box::new(JamOneForOne)).unwrap();
        let activity = net.step().clone();
        assert_eq!(activity.jammed, 1);
        let p = net.into_protocols();
        assert_eq!(p[0].events, vec![Event::Delivered]);
        assert_eq!(
            p[1].events,
            vec![Event::Jammed],
            "jammed listener hears noise"
        );
        assert_eq!(
            p[2].events,
            vec![Event::Received {
                from: NodeId(0),
                msg: 7
            }],
            "unjammed listener still receives"
        );
        // The jammed node is excluded from the channel's listener list.
        let ch = activity.on_channel(GlobalChannel(0)).unwrap();
        assert_eq!(ch.listeners, vec![NodeId(2)]);

        // Adaptive hook sanity: intents carry the committed tunings.
        struct CaptureIntents(std::sync::Arc<std::sync::Mutex<Vec<Intent>>>);
        impl Interference for CaptureIntents {
            fn advance(&mut self, _slot: u64, _rng: &mut SimRng) {}
            fn observe_intents(&mut self, _slot: u64, intents: &[Intent]) {
                self.0.lock().unwrap().extend_from_slice(intents);
            }
            fn is_jammed(&self, _node: NodeId, _channel: GlobalChannel) -> bool {
                false
            }
        }
        let captured = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let model = StaticChannels::global(full_overlap(2, 1).unwrap());
        let protos = vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 1)]),
            Scripted::new(vec![Action::Listen(LocalChannel(0))]),
        ];
        let mut net = Network::with_interference(
            model,
            protos,
            2,
            Box::new(CaptureIntents(captured.clone())),
        )
        .unwrap();
        net.step();
        let intents = captured.lock().unwrap().clone();
        assert_eq!(intents.len(), 2);
        assert!(intents[0].broadcast && !intents[1].broadcast);
        assert_eq!(intents[0].channel, GlobalChannel(0));
    }

    #[test]
    fn run_returns_done_with_slot_count() {
        let mut net = one_channel_net(vec![
            Scripted::new(vec![Action::Broadcast(LocalChannel(0), 5)]),
            Scripted::new(vec![Action::Listen(LocalChannel(0))]),
        ]);
        let outcome = net.run(10, |n| !n.protocols()[1].events.is_empty());
        assert_eq!(outcome, RunOutcome::Done { slots: 1 });
    }

    #[test]
    fn builder_matches_direct_construction() {
        let build = |via_builder: bool| -> Vec<Event<u32>> {
            let model = StaticChannels::global(full_overlap(2, 1).unwrap());
            let protos = vec![
                Scripted::new(vec![Action::Broadcast(LocalChannel(0), 5)]),
                Scripted::new(vec![Action::Listen(LocalChannel(0))]),
            ];
            let mut net = if via_builder {
                NetworkBuilder::new(model)
                    .seed(4)
                    .protocols(protos)
                    .build()
                    .unwrap()
            } else {
                Network::new(model, protos, 4).unwrap()
            };
            net.run_slots(8);
            net.into_protocols().remove(1).events
        };
        assert_eq!(build(true), build(false));
    }

    #[test]
    fn builder_rejects_wrong_protocol_count() {
        let model = StaticChannels::global(full_overlap(3, 1).unwrap());
        let result = NetworkBuilder::<u32, Scripted, _>::new(model)
            .protocol(Scripted::new(vec![Action::Sleep]))
            .build();
        assert!(matches!(
            result.err(),
            Some(SimError::ProtocolCountMismatch { .. })
        ));
    }

    #[test]
    fn run_times_out() {
        let mut net = one_channel_net(vec![Scripted::new(vec![Action::Sleep])]);
        let outcome = net.run(5, |_| false);
        assert_eq!(outcome, RunOutcome::Timeout { budget: 5 });
        assert_eq!(outcome.slots(), None);
        assert!(!outcome.is_done());
    }
}
