//! The protocol abstraction: what a node may do in a slot, and what it
//! observes afterwards.
//!
//! A protocol is a per-node state machine. In each synchronous slot the
//! engine asks it for an [`Action`] (broadcast, listen, or sleep — always
//! in terms of *local* channel labels), resolves contention according to
//! the paper's collision model, and reports the resulting [`Event`] back.

use crate::ids::{GlobalChannel, LocalChannel, NodeId};
use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// What a node chooses to do in one slot.
///
/// Channels are addressed by [`LocalChannel`] labels in `0..c`; protocols
/// in the local-label model never learn the global identity of a channel.
///
/// # Examples
///
/// ```
/// use crn_sim::{Action, LocalChannel};
/// let a: Action<&'static str> = Action::Broadcast(LocalChannel(2), "hello");
/// assert!(matches!(a, Action::Broadcast(ch, _) if ch == LocalChannel(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action<M> {
    /// Transmit `M` on the given local channel.
    Broadcast(LocalChannel, M),
    /// Tune to the given local channel and listen.
    Listen(LocalChannel),
    /// Do nothing this slot (radio off).
    Sleep,
}

impl<M> Action<M> {
    /// Returns the local channel this action tunes to, if any.
    ///
    /// ```
    /// use crn_sim::{Action, LocalChannel};
    /// let a: Action<u8> = Action::Listen(LocalChannel(1));
    /// assert_eq!(a.channel(), Some(LocalChannel(1)));
    /// let s: Action<u8> = Action::Sleep;
    /// assert_eq!(s.channel(), None);
    /// ```
    pub fn channel(&self) -> Option<LocalChannel> {
        match self {
            Action::Broadcast(ch, _) | Action::Listen(ch) => Some(*ch),
            Action::Sleep => None,
        }
    }

    /// True if this action transmits.
    pub fn is_broadcast(&self) -> bool {
        matches!(self, Action::Broadcast(..))
    }
}

/// What a node observes at the end of a slot.
///
/// This encodes the paper's collision model exactly (Section 2): when
/// several nodes transmit on one channel, a uniformly random one of them
/// succeeds; every listener on the channel receives the winning message;
/// each broadcaster learns whether it succeeded, and the losers *also*
/// receive the winning message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event<M> {
    /// The node listened and received the winning message on its channel.
    Received {
        /// The node whose transmission succeeded.
        from: NodeId,
        /// The message that was delivered.
        msg: M,
    },
    /// The node listened and nobody (successfully) transmitted on its
    /// channel.
    Silence,
    /// The node transmitted and won the channel: its message was the one
    /// received by all listeners.
    Delivered,
    /// The node transmitted but lost the contention; per the model it
    /// overhears the winning message.
    Lost {
        /// The node whose transmission succeeded instead.
        winner: NodeId,
        /// The message that won the channel.
        msg: M,
    },
    /// The node's channel was jammed for it this slot (only produced when
    /// an interference model is installed; see the `crn-jamming` crate).
    /// A jammed broadcaster's transmission is destroyed; a jammed listener
    /// hears only noise.
    Jammed,
}

impl<M> Event<M> {
    /// True if the event carries a message payload.
    pub fn has_message(&self) -> bool {
        matches!(self, Event::Received { .. } | Event::Lost { .. })
    }
}

/// Read-only facts the engine exposes to a protocol each slot.
///
/// `channels` is `Some` only in the global-label model (the special case
/// where all nodes agree on channel names); local-label protocols must not
/// rely on it, and the engine omits it when labels are local.
#[derive(Debug, Clone, Copy)]
pub struct NodeCtx<'a> {
    /// This node's identity.
    pub id: NodeId,
    /// The current slot, starting at 0.
    pub slot: u64,
    /// Total number of nodes in the network.
    pub n: usize,
    /// Number of channels available to this node.
    pub c: usize,
    /// The pairwise-overlap guarantee `k`.
    pub k: usize,
    /// In the global-label model: this node's channels, indexed by local
    /// label (i.e. `channels[l]` is the global identity of local label
    /// `l`). `None` in the local-label model.
    pub channels: Option<&'a [GlobalChannel]>,
}

impl<'a> NodeCtx<'a> {
    /// In the global-label model, returns the local label of global
    /// channel `g` if this node has it.
    ///
    /// Returns `None` when labels are local or the node lacks the channel.
    pub fn local_label_of(&self, g: GlobalChannel) -> Option<LocalChannel> {
        self.channels?
            .iter()
            .position(|&x| x == g)
            .map(|i| LocalChannel(i as u32))
    }
}

/// A per-node protocol state machine.
///
/// The engine drives each node by calling [`Protocol::decide`] at the
/// start of every slot and [`Protocol::observe`] at the end of it (except
/// for sleeping nodes, which observe nothing). The `rng` handed in is the
/// node's private, deterministic random stream.
///
/// # Examples
///
/// A protocol that always listens on channel 0:
///
/// ```
/// use crn_sim::{Action, Event, LocalChannel, NodeCtx, Protocol};
/// use crn_sim::rng::SimRng;
///
/// struct AlwaysListen;
/// impl Protocol<u8> for AlwaysListen {
///     fn decide(&mut self, _ctx: &NodeCtx<'_>, _rng: &mut SimRng) -> Action<u8> {
///         Action::Listen(LocalChannel(0))
///     }
///     fn observe(&mut self, _ctx: &NodeCtx<'_>, _event: Event<u8>) {}
/// }
/// ```
pub trait Protocol<M> {
    /// Chooses this node's action for the current slot.
    fn decide(&mut self, ctx: &NodeCtx<'_>, rng: &mut SimRng) -> Action<M>;

    /// Reports the outcome of the slot to the node.
    fn observe(&mut self, ctx: &NodeCtx<'_>, event: Event<M>);

    /// True once this node has locally terminated. The engine keeps
    /// calling `decide` regardless (a terminated node should return
    /// [`Action::Sleep`]); this is a convenience for run-loop predicates.
    fn is_done(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_channel_accessor() {
        let b: Action<u8> = Action::Broadcast(LocalChannel(3), 9);
        assert_eq!(b.channel(), Some(LocalChannel(3)));
        assert!(b.is_broadcast());
        let l: Action<u8> = Action::Listen(LocalChannel(1));
        assert!(!l.is_broadcast());
        assert_eq!(l.channel(), Some(LocalChannel(1)));
        assert_eq!(Action::<u8>::Sleep.channel(), None);
    }

    #[test]
    fn event_has_message() {
        assert!(Event::Received {
            from: NodeId(0),
            msg: 1u8
        }
        .has_message());
        assert!(Event::Lost {
            winner: NodeId(0),
            msg: 1u8
        }
        .has_message());
        assert!(!Event::<u8>::Silence.has_message());
        assert!(!Event::<u8>::Delivered.has_message());
        assert!(!Event::<u8>::Jammed.has_message());
    }

    #[test]
    fn ctx_local_label_of() {
        let chans = [GlobalChannel(10), GlobalChannel(4), GlobalChannel(7)];
        let ctx = NodeCtx {
            id: NodeId(0),
            slot: 0,
            n: 1,
            c: 3,
            k: 1,
            channels: Some(&chans),
        };
        assert_eq!(ctx.local_label_of(GlobalChannel(4)), Some(LocalChannel(1)));
        assert_eq!(ctx.local_label_of(GlobalChannel(99)), None);

        let local_ctx = NodeCtx {
            channels: None,
            ..ctx
        };
        assert_eq!(local_ctx.local_label_of(GlobalChannel(4)), None);
    }
}
