//! The medium layer: pluggable slot-resolution substrates.
//!
//! The paper defines one synchronous slot model (Section 2) that this
//! repo realizes three ways: the abstract collision oracle, its
//! multi-hop generalization, and the footnote-4 decay-backoff stack.
//! A [`Medium`] is the part of the engine that differs between them —
//! given every node's committed tuning and action for the slot, it
//! decides who hears what and records the physical-layer activity. The
//! engine ([`crate::Network`]) keeps everything that is substrate
//! independent: protocol driving, local→global label translation,
//! interference/jamming, fault wrappers, tracing, and the `validate`
//! conformance hook.
//!
//! Three implementations ship here:
//!
//! - [`OracleSingleHop`] — the paper's Section 2 oracle: one uniformly
//!   random winner per contended channel, success feedback, losers
//!   overhear the winner. This is the exact allocation-free hot path
//!   the engine always had; its winner draws consume the `ENGINE` RNG
//!   stream in ascending channel order, so golden traces are
//!   byte-identical to the pre-medium engine.
//! - [`OracleMultihop`] — receiver-centric resolution over a
//!   [`Topology`]: each listener independently hears one uniformly
//!   random transmitting *neighbor* on its channel. On a complete
//!   topology it delegates to [`OracleSingleHop`] outright, making
//!   "multi-hop on a complete graph" literally the single-hop engine.
//! - [`PhysicalDecay`] — no oracle anywhere: every abstract slot
//!   expands into one fixed-length exponential-decay backoff episode
//!   per channel (footnote 4), on the dedicated `PHYSICAL` RNG stream.
//!   Physical-round counts and failed episodes are exposed as medium
//!   metadata.

use crate::ids::{GlobalChannel, NodeId};
use crate::proto::{Action, Event};
use crate::rng::{derive_rng, streams, SimRng};
use crate::topology::Topology;
use crate::trace::{ChannelActivity, SlotActivity};
use rand::Rng;

/// Static facts about a medium that the conformance layer needs in
/// order to know which Section 2 clauses apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediumProfile {
    /// Every channel with at least one broadcaster records a winner.
    /// True for the oracle; false for media where an episode can fail
    /// ([`PhysicalDecay`]) or where winners are per-receiver
    /// ([`OracleMultihop`] on an incomplete topology).
    pub guaranteed_winner: bool,
    /// Recorded winners are reproducible by replaying the `ENGINE`
    /// stream — one uniform draw per contended channel, ascending
    /// channel order (see [`crate::conformance::replay_winners`]).
    pub engine_stream_winners: bool,
}

impl MediumProfile {
    /// The profile of the Section 2 collision oracle.
    pub fn oracle() -> Self {
        MediumProfile {
            guaranteed_winner: true,
            engine_stream_winners: true,
        }
    }
}

/// Everything the engine hands a medium for one slot.
///
/// `tuned` lists each non-sleeping, non-jammed node exactly once as
/// `(global_channel, node, is_broadcast)`, in ascending node order —
/// local labels already translated, interference already applied.
#[derive(Debug)]
pub struct SlotInputs<'a, M> {
    /// The slot being resolved.
    pub slot: u64,
    /// Total node count.
    pub n: usize,
    /// Size of the global channel space.
    pub total_channels: usize,
    /// Each node's committed action (indexed by node; jammed nodes'
    /// actions are present but must be ignored — they are not tuned).
    pub actions: &'a [Action<M>],
    /// The participating `(channel, node, is_broadcast)` triples, in
    /// ascending node order.
    pub tuned: &'a [(GlobalChannel, usize, bool)],
}

/// A slot-resolution substrate.
///
/// Given the committed per-node tunings, a medium fills in one
/// [`Event`] per participating node and the slot's [`ChannelActivity`]
/// records, drawing any randomness from its own dedicated RNG stream.
///
/// Contract:
///
/// - `events` arrives with `None` for every sleeper and participant
///   and `Some(Event::Jammed)` for jammed nodes; the medium must set
///   `events[i]` for exactly the nodes in `inputs.tuned`.
/// - `activity` arrives with `slot`, `sleepers` and `jammed` already
///   set and `channels` still holding the previous slot's records (for
///   buffer recycling); the medium replaces them with this slot's
///   records, sorted ascending by channel.
/// - All randomness comes from the medium's own stream, reseeded via
///   [`Medium::reseed`] when the network is built — never from the
///   per-node or jammer streams.
pub trait Medium<M: Clone> {
    /// Re-derives the medium's RNG stream(s) from the master seed.
    fn reseed(&mut self, master: u64);

    /// Resolves one slot.
    fn resolve(
        &mut self,
        inputs: &SlotInputs<'_, M>,
        events: &mut [Option<Event<M>>],
        activity: &mut SlotActivity,
    );

    /// Which contract clauses this medium satisfies.
    fn profile(&self) -> MediumProfile;
}

fn empty_channel_record() -> ChannelActivity {
    ChannelActivity {
        channel: GlobalChannel(0),
        broadcasters: Vec::new(),
        winner: None,
        listeners: Vec::new(),
    }
}

/// The paper's Section 2 collision oracle — the default medium.
///
/// One uniformly random broadcaster per contended channel wins; all
/// listeners on the channel receive its message; the winner gets
/// success feedback and the losers overhear the winning message. The
/// resolution path is allocation-free in steady state (see
/// `crn-sim/tests/alloc.rs`): channel grouping uses an epoch-stamped
/// sparse counting sort over only the *active* channels, and the
/// published [`ChannelActivity`] records are recycled through a
/// channel-keyed pool.
#[derive(Debug)]
pub struct OracleSingleHop {
    engine_rng: SimRng,
    /// `(channel, node, is_broadcast)`, sorted by channel.
    tuned: Vec<(GlobalChannel, usize, bool)>,
    /// Sparse activity index: per global channel, the epoch (slot + 1)
    /// that last touched it. A stale stamp means "inactive this slot",
    /// so no per-slot clearing of the channel space is ever needed.
    chan_epoch: Vec<u64>,
    /// Per global channel, its slot in `active` (valid only when the
    /// epoch stamp is current); reused as the running placement offset
    /// during the grouping pass.
    chan_pos: Vec<u32>,
    /// The distinct channels touched this slot, with participant counts.
    active: Vec<(GlobalChannel, u32)>,
    /// Per node, the winning node on its channel (if any).
    winners: Vec<Option<usize>>,
    /// Retired [`ChannelActivity`] records, indexed by global channel.
    ///
    /// Keying the pool by channel (rather than recycling LIFO) means
    /// each channel's broadcaster/listener vectors converge to *that
    /// channel's* high-water capacity, after which refills never
    /// reallocate. Costs `O(total_channels)` empty records of scratch
    /// memory.
    pool: Vec<ChannelActivity>,
}

impl Default for OracleSingleHop {
    fn default() -> Self {
        OracleSingleHop {
            engine_rng: derive_rng(0, streams::ENGINE),
            tuned: Vec::new(),
            chan_epoch: Vec::new(),
            chan_pos: Vec::new(),
            active: Vec::new(),
            winners: Vec::new(),
            pool: Vec::new(),
        }
    }
}

impl OracleSingleHop {
    /// A fresh oracle (the RNG is re-derived when the network seeds it).
    pub fn new() -> Self {
        OracleSingleHop::default()
    }

    /// Orders `unsorted` by global channel into `self.tuned`, ties
    /// broken by node id.
    ///
    /// Cost is `O(T + A log A)` for `T` tuned nodes on `A` distinct
    /// *active* channels — never proportional to the model's full
    /// channel space `C`. An epoch stamp (`slot + 1`) marks the
    /// channels touched this slot, so the per-channel arrays are
    /// neither cleared nor scanned between slots; sparse slots (the
    /// common case in COGCAST/COGCOMP and all rendezvous baselines)
    /// pay only for what they touch. The ordering is identical to
    /// sorting by `(channel, node)`: the input is in ascending node
    /// order and each node appears at most once, so stable placement
    /// by channel preserves node order within each group.
    fn sort_tuned_by_channel(
        &mut self,
        slot: u64,
        total_channels: usize,
        unsorted: &[(GlobalChannel, usize, bool)],
    ) {
        let tuned = &mut self.tuned;
        tuned.clear();
        // Sized to the channel space once (amortized; see tests/alloc.rs),
        // then only the active entries are ever touched again.
        if self.chan_epoch.len() < total_channels {
            self.chan_epoch.resize(total_channels, 0);
            self.chan_pos.resize(total_channels, 0);
        }
        let epoch = slot + 1; // stamps start at 0, so epoch 0 never matches
        let active = &mut self.active;
        active.clear();
        for &(ch, _, _) in unsorted.iter() {
            let ci = ch.index();
            if self.chan_epoch[ci] == epoch {
                active[self.chan_pos[ci] as usize].1 += 1;
            } else {
                self.chan_epoch[ci] = epoch;
                self.chan_pos[ci] = active.len() as u32;
                active.push((ch, 1));
            }
        }
        // Winner draws consume the engine stream in ascending channel
        // order, so the active set must be resolved sorted.
        active.sort_unstable_by_key(|&(ch, _)| ch);
        let mut offset = 0u32;
        for &(ch, count) in active.iter() {
            self.chan_pos[ch.index()] = offset;
            offset += count;
        }
        tuned.resize(unsorted.len(), (GlobalChannel(0), 0, false));
        for &entry in unsorted.iter() {
            let ci = entry.0.index();
            let at = self.chan_pos[ci];
            tuned[at as usize] = entry;
            self.chan_pos[ci] = at + 1;
        }
    }
}

impl<M: Clone> Medium<M> for OracleSingleHop {
    fn reseed(&mut self, master: u64) {
        self.engine_rng = derive_rng(master, streams::ENGINE);
    }

    fn resolve(
        &mut self,
        inputs: &SlotInputs<'_, M>,
        events: &mut [Option<Event<M>>],
        activity: &mut SlotActivity,
    ) {
        // Retire last slot's channel records to their per-channel pool
        // slots so each channel's vectors keep their own capacity.
        if self.pool.len() < inputs.total_channels {
            self.pool
                .resize_with(inputs.total_channels, empty_channel_record);
        }
        for act in activity.channels.drain(..) {
            let idx = act.channel.index();
            self.pool[idx] = act;
        }

        self.sort_tuned_by_channel(inputs.slot, inputs.total_channels, inputs.tuned);

        // Resolve contention channel by channel, consuming the ENGINE
        // stream in ascending channel order.
        self.winners.clear();
        self.winners.resize(inputs.n, None); // per node: winning node on its channel
        let mut start = 0;
        while start < self.tuned.len() {
            let channel = self.tuned[start].0;
            let mut end = start;
            while end < self.tuned.len() && self.tuned[end].0 == channel {
                end += 1;
            }
            let mut act =
                std::mem::replace(&mut self.pool[channel.index()], empty_channel_record());
            act.channel = channel;
            act.broadcasters.clear();
            act.listeners.clear();
            let group = &self.tuned[start..end];
            for &(_, node, is_broadcast) in group {
                if is_broadcast {
                    act.broadcasters.push(NodeId(node as u32));
                } else {
                    act.listeners.push(NodeId(node as u32));
                }
            }
            let winner = if act.broadcasters.is_empty() {
                None
            } else {
                let pick = self.engine_rng.gen_range(0..act.broadcasters.len());
                Some(act.broadcasters[pick].index())
            };
            act.winner = winner.map(|i| NodeId(i as u32));
            for &(_, node, _) in group {
                self.winners[node] = winner;
            }
            activity.channels.push(act);
            start = end;
        }

        // Translate winners into per-node events (ascending node order,
        // so message clones happen in the same order as the pre-medium
        // engine's Phase D).
        for &(_, i, is_broadcast) in inputs.tuned {
            events[i] = Some(if is_broadcast {
                match self.winners[i] {
                    Some(w) if w == i => Event::Delivered,
                    Some(w) => {
                        let Action::Broadcast(_, msg) = &inputs.actions[w] else {
                            unreachable!("winner must have broadcast")
                        };
                        Event::Lost {
                            winner: NodeId(w as u32),
                            msg: msg.clone(),
                        }
                    }
                    None => unreachable!("a broadcaster's channel always has a winner"),
                }
            } else {
                match self.winners[i] {
                    Some(w) => {
                        let Action::Broadcast(_, msg) = &inputs.actions[w] else {
                            unreachable!("winner must have broadcast")
                        };
                        Event::Received {
                            from: NodeId(w as u32),
                            msg: msg.clone(),
                        }
                    }
                    None => Event::Silence,
                }
            });
        }
    }

    fn profile(&self) -> MediumProfile {
        MediumProfile::oracle()
    }
}

/// Receiver-centric resolution over a connectivity [`Topology`].
///
/// A transmission on channel `q` reaches only *neighbors* tuned to
/// `q`. For each listener, one of its transmitting neighbors on the
/// channel — uniformly random, independent per listener — gets
/// through, which is the natural multi-hop reading of the paper's
/// backoff abstraction. Transmitter-side feedback does not survive the
/// generalization (a node cannot know which of its neighbors heard
/// it), so transmitters always observe [`Event::Delivered`].
///
/// On a **complete** topology the medium delegates wholesale to
/// [`OracleSingleHop`]: the single-hop oracle *is* the complete-graph
/// special case, so traces (and golden digests) match the single-hop
/// engine exactly.
#[derive(Debug)]
pub struct OracleMultihop {
    topology: Topology,
    is_complete: bool,
    inner: OracleSingleHop,
    rng: SimRng,
    /// Per node: `(channel, is_broadcast)` if tuned this slot.
    node_tuned: Vec<Option<(GlobalChannel, bool)>>,
    /// Scratch: `tuned` re-sorted by `(channel, node)` for the
    /// activity records.
    by_channel: Vec<(GlobalChannel, usize, bool)>,
    /// Scratch: a listener's transmitting neighbors on its channel.
    senders: Vec<usize>,
}

impl OracleMultihop {
    /// A multi-hop oracle over `topology` (the RNG is re-derived when
    /// the network seeds it).
    pub fn new(topology: Topology) -> Self {
        let is_complete = topology.is_complete();
        OracleMultihop {
            topology,
            is_complete,
            inner: OracleSingleHop::new(),
            rng: derive_rng(0, streams::ENGINE),
            node_tuned: Vec::new(),
            by_channel: Vec::new(),
            senders: Vec::new(),
        }
    }

    /// The connectivity topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

impl<M: Clone> Medium<M> for OracleMultihop {
    fn reseed(&mut self, master: u64) {
        Medium::<M>::reseed(&mut self.inner, master);
        self.rng = derive_rng(master, streams::ENGINE);
    }

    fn resolve(
        &mut self,
        inputs: &SlotInputs<'_, M>,
        events: &mut [Option<Event<M>>],
        activity: &mut SlotActivity,
    ) {
        if self.is_complete {
            // The single-hop oracle is the complete-graph special case.
            return self.inner.resolve(inputs, events, activity);
        }

        self.node_tuned.clear();
        self.node_tuned.resize(inputs.n, None);
        for &(ch, node, is_broadcast) in inputs.tuned {
            self.node_tuned[node] = Some((ch, is_broadcast));
        }

        // Per-receiver winner draws, ascending node order (the draw
        // order the standalone multi-hop engine always used).
        for &(my_channel, i, is_broadcast) in inputs.tuned {
            events[i] = Some(if is_broadcast {
                Event::Delivered
            } else {
                self.senders.clear();
                self.senders.extend(
                    self.topology
                        .neighbors(i)
                        .iter()
                        .copied()
                        .filter(|&j| self.node_tuned[j] == Some((my_channel, true))),
                );
                if self.senders.is_empty() {
                    Event::Silence
                } else {
                    let w = self.senders[self.rng.gen_range(0..self.senders.len())];
                    let Action::Broadcast(_, msg) = &inputs.actions[w] else {
                        unreachable!("sender filter guarantees a broadcast")
                    };
                    Event::Received {
                        from: NodeId(w as u32),
                        msg: msg.clone(),
                    }
                }
            });
        }

        // Physical-layer record: who was tuned where. Winners are
        // per-receiver in this medium, so channel records carry none
        // (`guaranteed_winner: false`).
        activity.channels.clear();
        self.by_channel.clear();
        self.by_channel.extend_from_slice(inputs.tuned);
        self.by_channel
            .sort_unstable_by_key(|&(ch, node, _)| (ch, node));
        let mut start = 0;
        while start < self.by_channel.len() {
            let channel = self.by_channel[start].0;
            let mut end = start;
            while end < self.by_channel.len() && self.by_channel[end].0 == channel {
                end += 1;
            }
            let mut act = empty_channel_record();
            act.channel = channel;
            for &(_, node, is_broadcast) in &self.by_channel[start..end] {
                if is_broadcast {
                    act.broadcasters.push(NodeId(node as u32));
                } else {
                    act.listeners.push(NodeId(node as u32));
                }
            }
            activity.channels.push(act);
            start = end;
        }
    }

    fn profile(&self) -> MediumProfile {
        if self.is_complete {
            MediumProfile::oracle()
        } else {
            MediumProfile {
                guaranteed_winner: false,
                engine_stream_winners: false,
            }
        }
    }
}

/// Number of rounds per decay epoch for a population bound `n_max`
/// (footnote 4): `⌈log₂ n_max⌉ + 1`.
///
/// The canonical home of the decay-backoff arithmetic;
/// `crn_backoff::decay` re-exports it.
///
/// # Examples
///
/// ```
/// use crn_sim::medium::epoch_len;
/// assert_eq!(epoch_len(1), 1);
/// assert_eq!(epoch_len(8), 4);
/// assert_eq!(epoch_len(9), 5);
/// ```
pub fn epoch_len(n_max: usize) -> u32 {
    (n_max.max(1) as f64).log2().ceil() as u32 + 1
}

/// A recommended round budget that succeeds w.h.p.: `8·epoch_len² + 8`
/// (constant-probability success per epoch × `O(log n)` epochs for
/// high probability).
pub fn recommended_rounds(n_max: usize) -> u64 {
    let e = epoch_len(n_max) as u64;
    8 * e * e + 8
}

/// The footnote-4 physical realization: no collision oracle anywhere.
///
/// Every abstract slot expands into one fixed-length exponential-decay
/// backoff episode per channel, all channels in parallel: in round `j`
/// of an epoch every still-active broadcaster transmits with
/// probability `2^{-j}`; the first *lone* transmission wins — its
/// message is received by every listener and every losing broadcaster
/// on the channel (who abort), and the winner, having heard nothing,
/// knows it succeeded. The episode length is fixed at
/// [`recommended_rounds`]`(n)` rounds so channels stay synchronized (a
/// node cannot observe when *other* channels finish).
///
/// An episode can **fail** — no lone transmission within the budget —
/// which is the abstract model's "with high probability" caveat made
/// concrete: nobody on the channel hears anything, so listeners
/// observe [`Event::Silence`] and every broadcaster observes
/// [`Event::Delivered`] (a false positive — hearing nothing is exactly
/// what winning feels like on this radio). The channel records no
/// winner and [`PhysicalDecay::failed_episodes`] increments.
///
/// All randomness comes from the dedicated `PHYSICAL` stream
/// (docs/RNG_STREAMS.md), never from the oracle's `ENGINE` stream.
#[derive(Debug)]
pub struct PhysicalDecay {
    rng: SimRng,
    physical_rounds: u64,
    failed_episodes: u64,
    rounds_per_slot: u64,
    /// Scratch: `tuned` re-sorted by `(channel, node)`.
    by_channel: Vec<(GlobalChannel, usize, bool)>,
    /// Scratch: per-broadcaster transmit flags within an episode.
    tx: Vec<bool>,
    /// Scratch: per node, the winning node on its channel (if any).
    winners: Vec<Option<usize>>,
    /// Scratch: per node, whether its channel's episode failed.
    failed: Vec<bool>,
}

impl Default for PhysicalDecay {
    fn default() -> Self {
        PhysicalDecay {
            rng: derive_rng(0, streams::PHYSICAL),
            physical_rounds: 0,
            failed_episodes: 0,
            rounds_per_slot: 0,
            by_channel: Vec::new(),
            tx: Vec::new(),
            winners: Vec::new(),
            failed: Vec::new(),
        }
    }
}

impl PhysicalDecay {
    /// A fresh physical medium (the RNG is re-derived when the network
    /// seeds it).
    pub fn new() -> Self {
        PhysicalDecay::default()
    }

    /// Physical rounds consumed so far (`slots × rounds_per_slot`).
    pub fn physical_rounds(&self) -> u64 {
        self.physical_rounds
    }

    /// Channel-episodes that ended without a lone transmission.
    pub fn failed_episodes(&self) -> u64 {
        self.failed_episodes
    }

    /// Rounds in one abstract slot (the fixed episode length `R`),
    /// as of the most recent slot; 0 before the first slot.
    pub fn rounds_per_slot(&self) -> u64 {
        self.rounds_per_slot
    }
}

impl<M: Clone> Medium<M> for PhysicalDecay {
    fn reseed(&mut self, master: u64) {
        self.rng = derive_rng(master, streams::PHYSICAL);
        self.physical_rounds = 0;
        self.failed_episodes = 0;
    }

    fn resolve(
        &mut self,
        inputs: &SlotInputs<'_, M>,
        events: &mut [Option<Event<M>>],
        activity: &mut SlotActivity,
    ) {
        // Fixed-length episodes keep the channels synchronized: every
        // abstract slot costs R physical rounds no matter how early
        // any one channel's episode succeeds.
        self.rounds_per_slot = recommended_rounds(inputs.n);
        self.physical_rounds += self.rounds_per_slot;
        let epoch = epoch_len(inputs.n) as u64;

        self.by_channel.clear();
        self.by_channel.extend_from_slice(inputs.tuned);
        self.by_channel
            .sort_unstable_by_key(|&(ch, node, _)| (ch, node));
        self.winners.clear();
        self.winners.resize(inputs.n, None);
        self.failed.clear();
        self.failed.resize(inputs.n, false);

        activity.channels.clear();
        let mut start = 0;
        while start < self.by_channel.len() {
            let channel = self.by_channel[start].0;
            let mut end = start;
            while end < self.by_channel.len() && self.by_channel[end].0 == channel {
                end += 1;
            }
            let group = &self.by_channel[start..end];
            let mut act = empty_channel_record();
            act.channel = channel;
            for &(_, node, is_broadcast) in group {
                if is_broadcast {
                    act.broadcasters.push(NodeId(node as u32));
                } else {
                    act.listeners.push(NodeId(node as u32));
                }
            }
            // One decay episode among this channel's broadcasters.
            let winner = if act.broadcasters.is_empty() {
                None
            } else {
                let m = act.broadcasters.len();
                self.tx.clear();
                self.tx.resize(m, false);
                let mut won = None;
                for round in 0..self.rounds_per_slot {
                    let j = (round % epoch) as i32;
                    let p = 0.5f64.powi(j).min(1.0);
                    for t in self.tx.iter_mut() {
                        *t = self.rng.gen_bool(p);
                    }
                    // A lone transmission ends the episode: everyone
                    // else received it and aborts.
                    let mut lone = None;
                    let mut count = 0;
                    for (i, &t) in self.tx.iter().enumerate() {
                        if t {
                            count += 1;
                            lone = Some(i);
                        }
                    }
                    if count == 1 {
                        won = lone;
                        break;
                    }
                }
                if won.is_none() {
                    self.failed_episodes += 1;
                    for &(_, node, _) in group {
                        self.failed[node] = true;
                    }
                }
                won.map(|i| act.broadcasters[i].index())
            };
            act.winner = winner.map(|i| NodeId(i as u32));
            for &(_, node, _) in group {
                self.winners[node] = winner;
            }
            activity.channels.push(act);
            start = end;
        }

        // Events, ascending node order.
        for &(_, i, is_broadcast) in inputs.tuned {
            events[i] = Some(if is_broadcast {
                match self.winners[i] {
                    Some(w) if w == i => Event::Delivered,
                    Some(w) => {
                        let Action::Broadcast(_, msg) = &inputs.actions[w] else {
                            unreachable!("winner must have broadcast")
                        };
                        Event::Lost {
                            winner: NodeId(w as u32),
                            msg: msg.clone(),
                        }
                    }
                    // Failed episode: this broadcaster heard nothing
                    // all episode, which is indistinguishable from
                    // winning on this radio.
                    None => Event::Delivered,
                }
            } else {
                match self.winners[i] {
                    Some(w) => {
                        let Action::Broadcast(_, msg) = &inputs.actions[w] else {
                            unreachable!("winner must have broadcast")
                        };
                        Event::Received {
                            from: NodeId(w as u32),
                            msg: msg.clone(),
                        }
                    }
                    None => Event::Silence,
                }
            });
        }
    }

    fn profile(&self) -> MediumProfile {
        MediumProfile {
            guaranteed_winner: false,
            engine_stream_winners: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::full_overlap;
    use crate::channel_model::StaticChannels;
    use crate::ids::LocalChannel;
    use crate::proto::{NodeCtx, Protocol};
    use crate::Network;

    struct Fixed {
        action: Action<u8>,
        heard: Vec<Event<u8>>,
    }

    impl Protocol<u8> for Fixed {
        fn decide(&mut self, _ctx: &NodeCtx<'_>, _rng: &mut SimRng) -> Action<u8> {
            self.action.clone()
        }
        fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<u8>) {
            self.heard.push(event);
        }
    }

    fn fixed(action: Action<u8>) -> Fixed {
        Fixed {
            action,
            heard: Vec::new(),
        }
    }

    #[test]
    fn epoch_len_is_log2_plus_one() {
        assert_eq!(epoch_len(0), 1);
        assert_eq!(epoch_len(2), 2);
        assert_eq!(epoch_len(1024), 11);
    }

    #[test]
    fn physical_decay_delivers_lone_broadcast() {
        let model = StaticChannels::global(full_overlap(3, 1).unwrap());
        let protos = vec![
            fixed(Action::Broadcast(LocalChannel(0), 9)),
            fixed(Action::Listen(LocalChannel(0))),
            fixed(Action::Listen(LocalChannel(0))),
        ];
        let mut net = Network::with_medium(model, protos, 5, PhysicalDecay::new()).unwrap();
        net.step();
        assert_eq!(
            net.medium().physical_rounds(),
            net.medium().rounds_per_slot()
        );
        let p = net.into_protocols();
        assert_eq!(p[0].heard, vec![Event::Delivered]);
        assert_eq!(
            p[1].heard,
            vec![Event::Received {
                from: NodeId(0),
                msg: 9
            }]
        );
    }

    #[test]
    fn physical_decay_charges_fixed_rounds_per_slot() {
        let model = StaticChannels::global(full_overlap(4, 2).unwrap());
        let protos = (0..4)
            .map(|_| fixed(Action::Broadcast(LocalChannel(0), 1)))
            .collect();
        let mut net = Network::with_medium(model, protos, 9, PhysicalDecay::new()).unwrap();
        for _ in 0..10 {
            net.step();
        }
        let med = net.medium();
        assert_eq!(med.physical_rounds(), 10 * med.rounds_per_slot());
        assert_eq!(med.rounds_per_slot(), recommended_rounds(4));
    }

    #[test]
    fn physical_decay_winner_is_roughly_uniform() {
        // Two persistent contenders: decay symmetry should give each
        // about half the wins — the property that justifies the
        // oracle's uniform pick.
        let model = StaticChannels::global(full_overlap(2, 1).unwrap());
        let protos = vec![
            fixed(Action::Broadcast(LocalChannel(0), 1)),
            fixed(Action::Broadcast(LocalChannel(0), 2)),
        ];
        let mut net = Network::with_medium(model, protos, 31, PhysicalDecay::new()).unwrap();
        for _ in 0..2000 {
            net.step();
        }
        let p = net.into_protocols();
        let wins0 = p[0]
            .heard
            .iter()
            .filter(|e| matches!(e, Event::Delivered))
            .count();
        assert!(
            (700..=1300).contains(&wins0),
            "physical winner badly skewed: {wins0}/2000"
        );
    }

    #[test]
    fn multihop_complete_matches_single_hop_trace() {
        use crate::trace::TraceDigest;
        let run = |multihop: bool| -> u64 {
            let model = StaticChannels::global(full_overlap(4, 2).unwrap());
            let protos = vec![
                fixed(Action::Broadcast(LocalChannel(0), 1)),
                fixed(Action::Broadcast(LocalChannel(0), 2)),
                fixed(Action::Listen(LocalChannel(0))),
                fixed(Action::Listen(LocalChannel(1))),
            ];
            let mut digest = TraceDigest::new();
            if multihop {
                let med = OracleMultihop::new(Topology::complete(4));
                let mut net = Network::with_medium(model, protos, 7, med).unwrap();
                for _ in 0..64 {
                    digest.record(net.step());
                }
            } else {
                let mut net = Network::new(model, protos, 7).unwrap();
                for _ in 0..64 {
                    digest.record(net.step());
                }
            }
            digest.finish()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn multihop_respects_line_topology() {
        let model = StaticChannels::global(full_overlap(3, 1).unwrap());
        let protos = vec![
            fixed(Action::Broadcast(LocalChannel(0), 9)),
            fixed(Action::Listen(LocalChannel(0))),
            fixed(Action::Listen(LocalChannel(0))),
        ];
        let med = OracleMultihop::new(Topology::line(3));
        let mut net = Network::with_medium(model, protos, 1, med).unwrap();
        net.step();
        let p = net.into_protocols();
        assert_eq!(
            p[1].heard,
            vec![Event::Received {
                from: NodeId(0),
                msg: 9
            }]
        );
        assert_eq!(p[2].heard, vec![Event::Silence]);
    }

    #[test]
    fn profiles_reflect_guarantees() {
        let oracle = OracleSingleHop::new();
        assert!(Medium::<u8>::profile(&oracle).guaranteed_winner);
        let complete = OracleMultihop::new(Topology::complete(4));
        assert!(Medium::<u8>::profile(&complete).engine_stream_winners);
        let line = OracleMultihop::new(Topology::line(4));
        assert!(!Medium::<u8>::profile(&line).guaranteed_winner);
        let phys = PhysicalDecay::new();
        assert!(!Medium::<u8>::profile(&phys).guaranteed_winner);
    }
}
