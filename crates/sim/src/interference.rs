//! External interference (jamming) hooks for the engine.
//!
//! The base model has no adversary; Theorem 18 of the paper relates
//! broadcast in cognitive radio networks to broadcast against an
//! *n-uniform jamming adversary* in a multi-channel network. The engine
//! supports that setting through this trait: before resolving a slot it
//! asks the interference model, per `(node, channel)`, whether the
//! channel is jammed *for that node*. A jammed broadcaster's transmission
//! is destroyed and a jammed listener hears only noise (both observe
//! [`crate::Event::Jammed`]).

use crate::ids::{GlobalChannel, NodeId};
use crate::rng::SimRng;

/// A node's committed tuning for the current slot, as visible to an
/// *adaptive* adversary just before resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Intent {
    /// The tuned node.
    pub node: NodeId,
    /// The physical channel it tuned to.
    pub channel: GlobalChannel,
    /// True if it is transmitting (false: listening).
    pub broadcast: bool,
}

/// A per-slot, per-node interference decision.
///
/// Implementations live in the `crn-jamming` crate; the simulator only
/// defines the interface and the trivial [`NoInterference`] model.
///
/// The default adversary is *oblivious*: it sees only the slot number.
/// Overriding [`Interference::observe_intents`] yields an *adaptive*
/// adversary that sees every node's committed channel choice before
/// deciding what to jam — the strongest model, used to exhibit the
/// Theorem 17 impossibility intuition (an adaptive channel adversary
/// can starve communication indefinitely).
pub trait Interference {
    /// Advances the adversary to `slot` (e.g. drawing this slot's jam
    /// sets). Called once per slot before any `is_jammed` query.
    fn advance(&mut self, slot: u64, rng: &mut SimRng);

    /// Adaptive hook: called after every node has committed its action
    /// for `slot` (and after [`Interference::advance`]), before any
    /// `is_jammed` query. Default: ignore (oblivious adversary).
    fn observe_intents(&mut self, slot: u64, intents: &[Intent]) {
        let _ = (slot, intents);
    }

    /// Whether `channel` is jammed for `node` in the current slot.
    fn is_jammed(&self, node: NodeId, channel: GlobalChannel) -> bool;

    /// The adversary's declared per-node, per-slot jam budget, if it
    /// commits to one: at most this many of each node's channels are
    /// jammed in any slot (Theorem 18's `k`). `None` (the default)
    /// means unbudgeted — the conformance validator then skips the
    /// budget and effective-overlap clauses for this adversary.
    fn jam_budget(&self) -> Option<usize> {
        None
    }
}

/// The absence of interference: nothing is ever jammed.
///
/// # Examples
///
/// ```
/// use crn_sim::interference::{Interference, NoInterference};
/// use crn_sim::{GlobalChannel, NodeId};
/// let m = NoInterference;
/// assert!(!m.is_jammed(NodeId(0), GlobalChannel(0)));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoInterference;

impl Interference for NoInterference {
    fn advance(&mut self, _slot: u64, _rng: &mut SimRng) {}
    fn is_jammed(&self, _node: NodeId, _channel: GlobalChannel) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn no_interference_never_jams() {
        let mut m = NoInterference;
        let mut rng = SimRng::seed_from_u64(0);
        for slot in 0..5 {
            m.advance(slot, &mut rng);
            for node in 0..4 {
                for ch in 0..4 {
                    assert!(!m.is_jammed(NodeId(node), GlobalChannel(ch)));
                }
            }
        }
    }
}
