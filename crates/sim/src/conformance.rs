//! Slot-level model-conformance validation (the Section 2 contract).
//!
//! Every number the experiment harness records rests on the engine
//! faithfully implementing the paper's Section 2 model. This module
//! re-checks that contract *from the outside*, against the public
//! [`SlotActivity`] record and the [`ChannelModel`] / [`Interference`]
//! state, with none of the engine's internal shortcuts:
//!
//! - **Winner legitimacy** (footnote 4): a channel has a winner iff it
//!   has a broadcaster, and the winner is one of that channel's
//!   (non-jammed) broadcasters.
//! - **Single tuning** (§2): a node participates on at most one channel
//!   per slot, and every node is accounted for exactly once —
//!   participant, sleeper, or jammed.
//! - **Channel membership** (§2): a node only ever appears on a channel
//!   that its current assignment actually contains (this covers the
//!   local-label → global-channel translation, including dynamic
//!   reassignment).
//! - **Jammed exclusion** (Theorem 18): no participant's `(node,
//!   channel)` pair is jammed — jammed pairs never send or receive.
//! - **Pairwise overlap** (§2): every pair of nodes shares at least `k`
//!   channels in every slot, churned assignments included.
//! - **Jam budget / effective overlap** (Theorem 18): an adversary that
//!   declares a per-node budget `b` jams at most `b` channels inside
//!   each node's set, leaving every pair at least `overlap − 2b`
//!   unjammed shared channels (`c − 2k` in the paper's fully-shared
//!   setting).
//! - **RNG stream discipline** (docs/RNG_STREAMS.md): the recorded
//!   winners are exactly what an independent replay of the `ENGINE`
//!   stream produces — one uniform draw per contended channel, in
//!   ascending channel order ([`replay_winners`]).
//!
//! The checks are pure: they never consume an RNG stream and never
//! mutate the network, so running them cannot perturb a golden trace.
//! [`check_slot`] is always available (tests and the `conformance`
//! differential suite call it explicitly); compiling `crn-sim` with the
//! `validate` feature additionally makes [`crate::Network::step`] run
//! it after every slot and panic on the first violation. The feature is
//! off by default, so the release hot path stays allocation-free and
//! benchmark-neutral.

use crate::channel_model::ChannelModel;
use crate::ids::NodeId;
use crate::interference::Interference;
use crate::medium::MediumProfile;
use crate::rng::{derive_rng, streams};
use crate::trace::SlotActivity;
use rand::Rng;
use std::fmt;

/// Which contract clause a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Channel records must be strictly ascending by global channel id
    /// (the order in which winner draws consume the `ENGINE` stream).
    ChannelOrder,
    /// A winner exists iff broadcasters exist, and is one of them.
    WinnerLegitimacy,
    /// A node appears on at most one channel, in at most one role.
    SingleTuning,
    /// Participants + sleepers + jammed must account for all `n` nodes.
    NodeAccounting,
    /// A participant's channel must be in its current channel set.
    ChannelMembership,
    /// No recorded participant may be jammed on its channel.
    JammedExclusion,
    /// Every node pair must share at least `k` channels this slot.
    PairwiseOverlap,
    /// A budgeted jammer may jam at most its budget per node, and must
    /// leave each pair `overlap − 2·budget` unjammed shared channels.
    JamBudget,
    /// Recorded winners must match an independent `ENGINE`-stream
    /// replay (see [`replay_winners`]).
    RngStreamDiscipline,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::ChannelOrder => "channel-order",
            Rule::WinnerLegitimacy => "winner-legitimacy",
            Rule::SingleTuning => "single-tuning",
            Rule::NodeAccounting => "node-accounting",
            Rule::ChannelMembership => "channel-membership",
            Rule::JammedExclusion => "jammed-exclusion",
            Rule::PairwiseOverlap => "pairwise-overlap",
            Rule::JamBudget => "jam-budget",
            Rule::RngStreamDiscipline => "rng-stream-discipline",
        };
        f.write_str(s)
    }
}

/// One detected breach of the Section 2 contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The slot the violating record describes.
    pub slot: u64,
    /// The contract clause that was broken.
    pub rule: Rule,
    /// Human-readable specifics (node, channel, counts).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {}: [{}] {}", self.slot, self.rule, self.detail)
    }
}

/// Checks one slot's [`SlotActivity`] record against the model
/// contract; returns every violation found (empty means conformant).
///
/// Call it right after [`crate::Network::step`], while the model still
/// holds that slot's channel sets (the engine advances the model at the
/// *start* of the next step, so `net.check_conformance()` after a step
/// always sees matching state). `interference` should be the network's
/// interference model, if any.
///
/// The check is read-only and RNG-free.
///
/// # Examples
///
/// ```
/// use crn_sim::assignment::shared_core;
/// use crn_sim::channel_model::StaticChannels;
/// use crn_sim::conformance::check_slot;
/// use crn_sim::{GlobalChannel, NodeId, SlotActivity, ChannelActivity};
///
/// let model = StaticChannels::global(shared_core(2, 2, 1)?);
/// let ok = SlotActivity {
///     slot: 0,
///     channels: vec![ChannelActivity {
///         channel: GlobalChannel(0),
///         broadcasters: vec![NodeId(0)],
///         winner: Some(NodeId(0)),
///         listeners: vec![NodeId(1)],
///     }],
///     sleepers: 0,
///     jammed: 0,
/// };
/// assert!(check_slot(&model, None, &ok).is_empty());
///
/// let mut bad = ok.clone();
/// bad.channels[0].winner = Some(NodeId(1)); // a listener "won"
/// assert!(!check_slot(&model, None, &bad).is_empty());
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn check_slot<CM: ChannelModel + ?Sized>(
    model: &CM,
    interference: Option<&dyn Interference>,
    activity: &SlotActivity,
) -> Vec<Violation> {
    check_slot_for(model, interference, activity, MediumProfile::oracle())
}

/// [`check_slot`] parameterized by the medium's [`MediumProfile`].
///
/// Most clauses are substrate-independent; the ones that are not are
/// gated on the profile:
///
/// - the "broadcasters but no winner" half of winner legitimacy applies
///   only when `profile.guaranteed_winner` holds (a [`PhysicalDecay`]
///   episode can fail, and [`OracleMultihop`] winners are per-receiver);
/// - [`replay_winners`] (a whole-run check, not part of this function)
///   is meaningful only when `profile.engine_stream_winners` holds.
///
/// [`PhysicalDecay`]: crate::medium::PhysicalDecay
/// [`OracleMultihop`]: crate::medium::OracleMultihop
pub fn check_slot_for<CM: ChannelModel + ?Sized>(
    model: &CM,
    interference: Option<&dyn Interference>,
    activity: &SlotActivity,
    profile: MediumProfile,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let slot = activity.slot;
    let n = model.n();
    let mut violate = |rule: Rule, detail: String| {
        out.push(Violation { slot, rule, detail });
    };

    // Channel records strictly ascending (winner-draw order).
    for w in activity.channels.windows(2) {
        if w[0].channel >= w[1].channel {
            violate(
                Rule::ChannelOrder,
                format!(
                    "channel records out of order: {} then {}",
                    w[0].channel, w[1].channel
                ),
            );
        }
    }

    // Per-channel checks + per-node role accounting.
    let mut seen = vec![false; n];
    let mut participants = 0usize;
    for ch in &activity.channels {
        match ch.winner {
            Some(w) if !ch.broadcasters.contains(&w) => violate(
                Rule::WinnerLegitimacy,
                format!("{}: winner {w} is not among its broadcasters", ch.channel),
            ),
            Some(_) => {}
            None if profile.guaranteed_winner && !ch.broadcasters.is_empty() => violate(
                Rule::WinnerLegitimacy,
                format!(
                    "{}: {} broadcasters but no winner",
                    ch.channel,
                    ch.broadcasters.len()
                ),
            ),
            None => {}
        }
        for (role, nodes) in [
            ("broadcaster", &ch.broadcasters),
            ("listener", &ch.listeners),
        ] {
            for &node in nodes {
                let i = node.index();
                if i >= n {
                    violate(
                        Rule::SingleTuning,
                        format!("{}: unknown node {node} as {role}", ch.channel),
                    );
                    continue;
                }
                if std::mem::replace(&mut seen[i], true) {
                    violate(
                        Rule::SingleTuning,
                        format!(
                            "{node} appears more than once (as {role} on {})",
                            ch.channel
                        ),
                    );
                }
                participants += 1;
                if !model.channels(i).contains(&ch.channel) {
                    violate(
                        Rule::ChannelMembership,
                        format!("{node} recorded on {} outside its channel set", ch.channel),
                    );
                }
                if let Some(intf) = interference {
                    if intf.is_jammed(node, ch.channel) {
                        violate(
                            Rule::JammedExclusion,
                            format!("{node} recorded as {role} on jammed {}", ch.channel),
                        );
                    }
                }
            }
        }
    }

    if participants + activity.sleepers + activity.jammed != n {
        violate(
            Rule::NodeAccounting,
            format!(
                "{participants} participants + {} sleepers + {} jammed != n = {n}",
                activity.sleepers, activity.jammed
            ),
        );
    }

    check_overlap(model, interference, slot, &mut out);
    out
}

/// The pairwise-overlap and jam-budget clauses, factored out so the
/// quadratic scan reads on its own.
fn check_overlap<CM: ChannelModel + ?Sized>(
    model: &CM,
    interference: Option<&dyn Interference>,
    slot: u64,
    out: &mut Vec<Violation>,
) {
    let n = model.n();
    let k = model.k();
    let budget = interference.and_then(|i| i.jam_budget());

    // Per-node jam budget first: it is what makes the effective-overlap
    // clause meaningful.
    if let (Some(b), Some(intf)) = (budget, interference) {
        for u in 0..n {
            let jammed_in_set = model
                .channels(u)
                .iter()
                .filter(|&&q| intf.is_jammed(NodeId(u as u32), q))
                .count();
            if jammed_in_set > b {
                out.push(Violation {
                    slot,
                    rule: Rule::JamBudget,
                    detail: format!(
                        "node {u}: {jammed_in_set} of its channels jammed, budget is {b}"
                    ),
                });
            }
        }
    }

    // Membership masks over the global channel space make each pair's
    // intersection a linear scan of one node's set.
    let total = model.total_channels();
    let mut mask = vec![false; total];
    for u in 0..n {
        for &q in model.channels(u) {
            mask[q.index()] = true;
        }
        for v in (u + 1)..n {
            let mut overlap = 0usize;
            let mut unjammed = 0usize;
            for &q in model.channels(v) {
                if !mask[q.index()] {
                    continue;
                }
                overlap += 1;
                if let Some(intf) = interference {
                    if !intf.is_jammed(NodeId(u as u32), q) && !intf.is_jammed(NodeId(v as u32), q)
                    {
                        unjammed += 1;
                    }
                }
            }
            if overlap < k {
                out.push(Violation {
                    slot,
                    rule: Rule::PairwiseOverlap,
                    detail: format!("pair ({u},{v}) overlaps on {overlap} < k = {k} channels"),
                });
            }
            if let Some(b) = budget {
                // Theorem 18: each side loses at most `b` channels, so
                // the unjammed intersection keeps `overlap − 2b`.
                let floor = overlap.saturating_sub(2 * b);
                if unjammed < floor {
                    out.push(Violation {
                        slot,
                        rule: Rule::JamBudget,
                        detail: format!(
                            "pair ({u},{v}): {unjammed} unjammed shared channels < overlap - 2*budget = {floor}"
                        ),
                    });
                }
            }
        }
        for &q in model.channels(u) {
            mask[q.index()] = false;
        }
    }
}

/// Verifies RNG stream discipline: replays the `ENGINE` stream for
/// `master_seed` against a complete run's slot records and checks that
/// every recorded winner is exactly the replay's uniform draw.
///
/// The engine contract (docs/RNG_STREAMS.md) is one
/// `gen_range(0..broadcasters)` per contended channel, ascending
/// channel order within each slot, consuming nothing else from the
/// stream. `activities` must cover *every* slot from slot 0 of a
/// network seeded with `master_seed` — a gap desynchronizes the replay.
///
/// # Examples
///
/// ```
/// use crn_sim::assignment::full_overlap;
/// use crn_sim::channel_model::StaticChannels;
/// use crn_sim::conformance::replay_winners;
/// use crn_sim::rng::SimRng;
/// use crn_sim::{Action, Event, LocalChannel, Network, NodeCtx, Protocol};
///
/// struct Shout;
/// impl Protocol<u8> for Shout {
///     fn decide(&mut self, _: &NodeCtx<'_>, _: &mut SimRng) -> Action<u8> {
///         Action::Broadcast(LocalChannel(0), 1)
///     }
///     fn observe(&mut self, _: &NodeCtx<'_>, _: Event<u8>) {}
/// }
///
/// let model = StaticChannels::global(full_overlap(3, 1)?);
/// let mut net = Network::new(model, vec![Shout, Shout, Shout], 7)?;
/// let trace: Vec<_> = (0..20).map(|_| net.step().clone()).collect();
/// assert!(replay_winners(7, &trace).is_empty());
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn replay_winners(master_seed: u64, activities: &[SlotActivity]) -> Vec<Violation> {
    let mut engine = derive_rng(master_seed, streams::ENGINE);
    let mut out = Vec::new();
    for activity in activities {
        for ch in &activity.channels {
            if ch.broadcasters.is_empty() {
                continue;
            }
            let pick = engine.gen_range(0..ch.broadcasters.len());
            let expected = ch.broadcasters[pick];
            if ch.winner != Some(expected) {
                out.push(Violation {
                    slot: activity.slot,
                    rule: Rule::RngStreamDiscipline,
                    detail: format!(
                        "{}: recorded winner {:?}, ENGINE-stream replay draws {expected}",
                        ch.channel, ch.winner
                    ),
                });
            }
        }
    }
    out
}

/// Renders violations as one panic-ready report line per violation.
pub fn report(violations: &[Violation]) -> String {
    violations
        .iter()
        .map(Violation::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{full_overlap, shared_core};
    use crate::channel_model::StaticChannels;
    use crate::ids::GlobalChannel;
    use crate::trace::ChannelActivity;

    fn model() -> StaticChannels {
        StaticChannels::global(shared_core(4, 3, 2).expect("valid"))
    }

    fn clean_activity() -> SlotActivity {
        // shared_core(4, 3, 2): channels {0, 1} shared, one private each.
        SlotActivity {
            slot: 5,
            channels: vec![
                ChannelActivity {
                    channel: GlobalChannel(0),
                    broadcasters: vec![NodeId(0), NodeId(1)],
                    winner: Some(NodeId(1)),
                    listeners: vec![NodeId(2)],
                },
                ChannelActivity {
                    channel: GlobalChannel(1),
                    broadcasters: vec![],
                    winner: None,
                    listeners: vec![NodeId(3)],
                },
            ],
            sleepers: 0,
            jammed: 0,
        }
    }

    #[test]
    fn clean_record_has_no_violations() {
        assert_eq!(check_slot(&model(), None, &clean_activity()), vec![]);
    }

    #[test]
    fn corrupted_winner_is_caught() {
        let mut a = clean_activity();
        a.channels[0].winner = Some(NodeId(2)); // the listener
        let v = check_slot(&model(), None, &a);
        assert!(v.iter().any(|v| v.rule == Rule::WinnerLegitimacy), "{v:?}");
    }

    #[test]
    fn missing_winner_is_caught() {
        let mut a = clean_activity();
        a.channels[0].winner = None;
        let v = check_slot(&model(), None, &a);
        assert!(v.iter().any(|v| v.rule == Rule::WinnerLegitimacy), "{v:?}");
    }

    #[test]
    fn double_tuning_is_caught() {
        let mut a = clean_activity();
        a.channels[1].listeners = vec![NodeId(2)]; // already on channel 0
        let v = check_slot(&model(), None, &a);
        assert!(v.iter().any(|v| v.rule == Rule::SingleTuning), "{v:?}");
    }

    #[test]
    fn accounting_mismatch_is_caught() {
        let mut a = clean_activity();
        a.sleepers = 3;
        let v = check_slot(&model(), None, &a);
        assert!(v.iter().any(|v| v.rule == Rule::NodeAccounting), "{v:?}");
    }

    #[test]
    fn channel_outside_set_is_caught() {
        let mut a = clean_activity();
        // Channel 3 is node 1's private channel; node 3 does not hold it.
        a.channels[1].channel = GlobalChannel(3);
        let v = check_slot(&model(), None, &a);
        assert!(v.iter().any(|v| v.rule == Rule::ChannelMembership), "{v:?}");
    }

    #[test]
    fn out_of_order_channels_are_caught() {
        let mut a = clean_activity();
        a.channels.swap(0, 1);
        let v = check_slot(&model(), None, &a);
        assert!(v.iter().any(|v| v.rule == Rule::ChannelOrder), "{v:?}");
    }

    #[test]
    fn jammed_participant_is_caught() {
        struct JamAll;
        impl Interference for JamAll {
            fn advance(&mut self, _: u64, _: &mut crate::rng::SimRng) {}
            fn is_jammed(&self, _: NodeId, _: GlobalChannel) -> bool {
                true
            }
        }
        let v = check_slot(&model(), Some(&JamAll), &clean_activity());
        assert!(v.iter().any(|v| v.rule == Rule::JammedExclusion), "{v:?}");
    }

    #[test]
    fn overlap_violation_is_caught() {
        // Disjoint sets dressed up with a claimed k = 1: the model lies,
        // the validator notices.
        use crate::assignment::ChannelAssignment;
        let a = ChannelAssignment::from_sets(
            vec![
                vec![GlobalChannel(0)],
                vec![GlobalChannel(0)],
                vec![GlobalChannel(1)],
            ],
            2,
            1,
        );
        // from_sets validates, so build the disjoint case via a model
        // whose k is claimed after the fact: full_overlap then a custom
        // wrapper is overkill — instead check the clause through a
        // passing and a failing shape.
        assert!(a.is_err(), "from_sets itself must reject k violations");

        struct DisjointModel;
        impl ChannelModel for DisjointModel {
            fn n(&self) -> usize {
                2
            }
            fn c(&self) -> usize {
                1
            }
            fn k(&self) -> usize {
                1
            }
            fn total_channels(&self) -> usize {
                2
            }
            fn labels_are_global(&self) -> bool {
                true
            }
            fn advance(&mut self, _: u64) {}
            fn channels(&self, node: usize) -> &[GlobalChannel] {
                const SETS: [[GlobalChannel; 1]; 2] = [[GlobalChannel(0)], [GlobalChannel(1)]];
                &SETS[node]
            }
        }
        let empty = SlotActivity {
            slot: 0,
            channels: vec![],
            sleepers: 2,
            jammed: 0,
        };
        let v = check_slot(&DisjointModel, None, &empty);
        assert!(v.iter().any(|v| v.rule == Rule::PairwiseOverlap), "{v:?}");
    }

    #[test]
    fn jam_budget_breach_is_caught() {
        // Claims a budget of 1 but jams both shared channels of node 0.
        struct LyingJammer;
        impl Interference for LyingJammer {
            fn advance(&mut self, _: u64, _: &mut crate::rng::SimRng) {}
            fn is_jammed(&self, node: NodeId, channel: GlobalChannel) -> bool {
                node == NodeId(0) && channel.index() < 2
            }
            fn jam_budget(&self) -> Option<usize> {
                Some(1)
            }
        }
        let empty = SlotActivity {
            slot: 0,
            channels: vec![],
            sleepers: 4,
            jammed: 0,
        };
        let v = check_slot(&model(), Some(&LyingJammer), &empty);
        assert!(v.iter().any(|v| v.rule == Rule::JamBudget), "{v:?}");
    }

    #[test]
    fn replay_flags_a_corrupted_winner() {
        use crate::proto::{Action, Event, NodeCtx, Protocol};
        struct Shout;
        impl Protocol<u8> for Shout {
            fn decide(&mut self, _: &NodeCtx<'_>, _: &mut crate::rng::SimRng) -> Action<u8> {
                Action::Broadcast(crate::ids::LocalChannel(0), 1)
            }
            fn observe(&mut self, _: &NodeCtx<'_>, _: Event<u8>) {}
        }
        let m = StaticChannels::global(full_overlap(3, 1).expect("valid"));
        let mut net = crate::Network::new(m, vec![Shout, Shout, Shout], 11).expect("construct");
        let mut trace: Vec<SlotActivity> = (0..50).map(|_| net.step().clone()).collect();
        assert_eq!(replay_winners(11, &trace), vec![]);
        // Flip one winner to a different legitimate broadcaster: the
        // slot-level check passes but the stream replay must not.
        let w = trace[20].channels[0].winner.expect("contended");
        let other = trace[20].channels[0]
            .broadcasters
            .iter()
            .copied()
            .find(|&b| b != w)
            .expect("two broadcasters");
        trace[20].channels[0].winner = Some(other);
        let v = replay_winners(11, &trace);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::RngStreamDiscipline);
        assert_eq!(v[0].slot, 20);
    }

    #[test]
    fn report_formats_one_line_per_violation() {
        let mut a = clean_activity();
        a.channels[0].winner = Some(NodeId(2));
        a.sleepers = 9;
        let v = check_slot(&model(), None, &a);
        let r = report(&v);
        assert_eq!(r.lines().count(), v.len());
        assert!(r.contains("winner-legitimacy"), "{r}");
    }
}
