//! Error types for network construction and validation.

use std::error::Error;
use std::fmt;

/// Error raised when a simulator configuration violates the paper's model.
///
/// # Examples
///
/// ```
/// use crn_sim::SimError;
/// let err = SimError::InvalidParams {
///     reason: "k must satisfy 1 <= k <= c".into(),
/// };
/// assert!(err.to_string().contains("k must satisfy"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The `(n, c, k, C)` parameters are inconsistent (e.g. `k > c` or
    /// `c > C`).
    InvalidParams {
        /// Human-readable explanation of the violated constraint.
        reason: String,
    },
    /// A concrete channel assignment violates the pairwise-overlap
    /// invariant: some pair of nodes shares fewer than `k` channels.
    OverlapViolation {
        /// First node of the offending pair.
        a: u32,
        /// Second node of the offending pair.
        b: u32,
        /// The overlap that was actually observed.
        observed: usize,
        /// The overlap the model requires.
        required: usize,
    },
    /// The number of protocol instances handed to the engine does not
    /// match the number of nodes in the channel model.
    ProtocolCountMismatch {
        /// Number of nodes in the channel model.
        nodes: usize,
        /// Number of protocol instances supplied.
        protocols: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParams { reason } => {
                write!(f, "invalid model parameters: {reason}")
            }
            SimError::OverlapViolation {
                a,
                b,
                observed,
                required,
            } => write!(
                f,
                "nodes n{a} and n{b} overlap on {observed} channels, model requires {required}"
            ),
            SimError::ProtocolCountMismatch { nodes, protocols } => write!(
                f,
                "channel model has {nodes} nodes but {protocols} protocol instances were supplied"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_params() {
        let e = SimError::InvalidParams {
            reason: "c exceeds C".into(),
        };
        assert_eq!(e.to_string(), "invalid model parameters: c exceeds C");
    }

    #[test]
    fn display_overlap_violation() {
        let e = SimError::OverlapViolation {
            a: 1,
            b: 2,
            observed: 0,
            required: 3,
        };
        let s = e.to_string();
        assert!(s.contains("n1"), "{s}");
        assert!(s.contains("n2"), "{s}");
        assert!(s.contains('0'), "{s}");
        assert!(s.contains('3'), "{s}");
    }

    #[test]
    fn display_protocol_mismatch() {
        let e = SimError::ProtocolCountMismatch {
            nodes: 4,
            protocols: 3,
        };
        assert!(e.to_string().contains("4"));
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(SimError::InvalidParams { reason: "x".into() });
    }
}
