//! Channel models: who can use which channels, per slot.
//!
//! The paper's base model fixes a static channel assignment, but the
//! Section 7 discussion points out that COGCAST needs only the *per-slot*
//! guarantee that each pair of nodes currently shares `k` channels. The
//! [`ChannelModel`] trait captures exactly that: a (possibly mutable)
//! mapping from `(node, slot)` to a channel set, advanced once per slot.

use crate::assignment::ChannelAssignment;
use crate::error::SimError;
use crate::ids::GlobalChannel;
use crate::rng::SimRng;
use crate::rng::{derive_rng, streams};
use rand::seq::SliceRandom;
use rand::Rng;

/// The per-slot channel availability model the engine runs against.
///
/// `channels(node)` returns the node's channels **in local-label order**:
/// index `l` of the slice is the global channel behind the node's local
/// label `l`. Dynamic models may change sets (and labels) between slots
/// inside [`ChannelModel::advance`].
pub trait ChannelModel {
    /// Number of nodes.
    fn n(&self) -> usize;
    /// Channels per node (constant across slots, per the model). For
    /// heterogeneous assignments (the generalized model of the
    /// rendezvous literature, where `c_u ≠ c_v`) this is the maximum;
    /// see [`ChannelModel::c_of`].
    fn c(&self) -> usize;
    /// Channels available to `node` specifically. Defaults to the
    /// uniform [`ChannelModel::c`]; heterogeneous models override it,
    /// and the engine hands each node its own count via
    /// [`crate::NodeCtx::c`].
    fn c_of(&self, node: usize) -> usize {
        let _ = node;
        self.c()
    }
    /// The pairwise-overlap guarantee `k`.
    fn k(&self) -> usize;
    /// Total number of global channels `C`.
    fn total_channels(&self) -> usize;
    /// Whether all nodes agree on channel labels (global-label model).
    /// When true the engine exposes the channel slice to protocols.
    fn labels_are_global(&self) -> bool;
    /// Advances the model to `slot`. Called once at the start of every
    /// slot, before any `channels` query for that slot.
    fn advance(&mut self, slot: u64);
    /// The channels of `node` for the current slot, in local-label order.
    fn channels(&self, node: usize) -> &[GlobalChannel];
}

/// A static assignment with either global (sorted, shared) or local
/// (per-node shuffled) channel labels.
///
/// # Examples
///
/// ```
/// use crn_sim::assignment::shared_core;
/// use crn_sim::channel_model::{ChannelModel, StaticChannels};
///
/// let a = shared_core(4, 5, 2).unwrap();
/// let global = StaticChannels::global(a.clone());
/// assert!(global.labels_are_global());
///
/// let local = StaticChannels::local(a, 42);
/// assert!(!local.labels_are_global());
/// assert_eq!(local.c(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct StaticChannels {
    assignment: ChannelAssignment,
    /// Per node, channels in local-label order (a permutation of the
    /// node's sorted set).
    local_order: Vec<Vec<GlobalChannel>>,
    global_labels: bool,
}

impl StaticChannels {
    /// Global-label model: every node's local order is the sorted global
    /// order, so label `l` means the same physical channel everywhere the
    /// channel is shared.
    pub fn global(assignment: ChannelAssignment) -> Self {
        let local_order = (0..assignment.n())
            .map(|i| assignment.channels_of(i).to_vec())
            .collect();
        StaticChannels {
            assignment,
            local_order,
            global_labels: true,
        }
    }

    /// Local-label model: each node's labels are an arbitrary (seeded)
    /// permutation of its channel set, independent across nodes — the
    /// assumption under which the paper's upper bounds are proved.
    pub fn local(assignment: ChannelAssignment, seed: u64) -> Self {
        let mut rng = derive_rng(seed, streams::LABELS);
        let local_order = (0..assignment.n())
            .map(|i| {
                let mut v = assignment.channels_of(i).to_vec();
                v.shuffle(&mut rng);
                v
            })
            .collect();
        StaticChannels {
            assignment,
            local_order,
            global_labels: false,
        }
    }

    /// The underlying assignment.
    pub fn assignment(&self) -> &ChannelAssignment {
        &self.assignment
    }
}

impl ChannelModel for StaticChannels {
    fn n(&self) -> usize {
        self.assignment.n()
    }
    fn c(&self) -> usize {
        self.assignment.c()
    }
    fn c_of(&self, node: usize) -> usize {
        self.assignment.c_of(node)
    }
    fn k(&self) -> usize {
        self.assignment.k()
    }
    fn total_channels(&self) -> usize {
        self.assignment.total_channels()
    }
    fn labels_are_global(&self) -> bool {
        self.global_labels
    }
    fn advance(&mut self, _slot: u64) {}
    fn channels(&self, node: usize) -> &[GlobalChannel] {
        &self.local_order[node]
    }
}

/// A dynamic channel model: a fixed core of `k` channels shared by all
/// nodes, plus `c - k` private channels per node that are re-drawn from a
/// shared pool with probability `churn` per node per slot.
///
/// Every slot, every pair of nodes still overlaps on at least the `k`
/// core channels, so the per-slot model guarantee holds despite the
/// churn; this is the setting of the Section 7 discussion (and of
/// experiment F8). Labels are local: each redraw also re-permutes the
/// node's label order, so a node's label `l` may denote different
/// physical channels in different slots.
///
/// # Examples
///
/// ```
/// use crn_sim::channel_model::{ChannelModel, DynamicSharedCore};
/// let mut m = DynamicSharedCore::new(4, 6, 2, 40, 0.5, 7).unwrap();
/// m.advance(0);
/// assert_eq!(m.channels(0).len(), 6);
/// assert!(!m.labels_are_global());
/// ```
#[derive(Debug)]
pub struct DynamicSharedCore {
    n: usize,
    c: usize,
    k: usize,
    pool: usize,
    churn: f64,
    rng: SimRng,
    current: Vec<Vec<GlobalChannel>>,
}

impl DynamicSharedCore {
    /// Creates the model with `pool` non-core channels (`C = k + pool`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParams`] if `k > c`, `k == 0`,
    /// `pool < c - k`, or `churn` is not in `[0, 1]`.
    pub fn new(
        n: usize,
        c: usize,
        k: usize,
        pool: usize,
        churn: f64,
        seed: u64,
    ) -> Result<Self, SimError> {
        if n == 0 || c == 0 || k == 0 || k > c {
            return Err(SimError::InvalidParams {
                reason: format!("need n,c >= 1 and 1 <= k <= c (n={n}, c={c}, k={k})"),
            });
        }
        if pool < c - k {
            return Err(SimError::InvalidParams {
                reason: format!("pool ({pool}) must be at least c - k ({})", c - k),
            });
        }
        if !(0.0..=1.0).contains(&churn) {
            return Err(SimError::InvalidParams {
                reason: format!("churn ({churn}) must be in [0, 1]"),
            });
        }
        let rng = derive_rng(seed, streams::DYNAMIC);
        let mut model = DynamicSharedCore {
            n,
            c,
            k,
            pool,
            churn,
            current: Vec::new(),
            rng,
        };
        model.current = (0..n).map(|_| Vec::new()).collect();
        // rng was moved into the struct; redraw all nodes for slot 0.
        for i in 0..n {
            model.redraw(i);
        }
        Ok(model)
    }

    fn redraw(&mut self, node: usize) {
        let private = self.c - self.k;
        let pool_ids: Vec<u32> = (self.k as u32..(self.k + self.pool) as u32).collect();
        let mut v: Vec<GlobalChannel> = (0..self.k as u32).map(GlobalChannel).collect();
        v.extend(
            pool_ids
                .choose_multiple(&mut self.rng, private)
                .map(|&g| GlobalChannel(g)),
        );
        v.shuffle(&mut self.rng);
        self.current[node] = v;
    }
}

impl ChannelModel for DynamicSharedCore {
    fn n(&self) -> usize {
        self.n
    }
    fn c(&self) -> usize {
        self.c
    }
    fn k(&self) -> usize {
        self.k
    }
    fn total_channels(&self) -> usize {
        self.k + self.pool
    }
    fn labels_are_global(&self) -> bool {
        false
    }
    fn advance(&mut self, _slot: u64) {
        for i in 0..self.n {
            if self.churn > 0.0 && self.rng.gen_bool(self.churn) {
                self.redraw(i);
            }
        }
    }
    fn channels(&self, node: usize) -> &[GlobalChannel] {
        &self.current[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{full_overlap, shared_core};
    use std::collections::HashSet;

    #[test]
    fn global_labels_preserve_sorted_order() {
        let a = shared_core(3, 4, 2).unwrap();
        let m = StaticChannels::global(a);
        for i in 0..3 {
            let ch = m.channels(i);
            for w in ch.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn local_labels_are_permutations() {
        let a = shared_core(6, 8, 3).unwrap();
        let m = StaticChannels::local(a.clone(), 99);
        for i in 0..6 {
            let mut got: Vec<_> = m.channels(i).to_vec();
            got.sort_unstable();
            assert_eq!(got.as_slice(), a.channels_of(i));
        }
    }

    #[test]
    fn local_labels_differ_between_nodes_with_same_set() {
        // With a shared set of 16 channels, 4 independent shuffles are
        // essentially never all identical.
        let a = full_overlap(4, 16).unwrap();
        let m = StaticChannels::local(a, 1);
        let orders: HashSet<Vec<GlobalChannel>> = (0..4).map(|i| m.channels(i).to_vec()).collect();
        assert!(orders.len() > 1);
    }

    #[test]
    fn static_model_is_stable_across_advance() {
        let a = shared_core(3, 4, 2).unwrap();
        let mut m = StaticChannels::local(a, 7);
        let before: Vec<Vec<GlobalChannel>> = (0..3).map(|i| m.channels(i).to_vec()).collect();
        m.advance(0);
        m.advance(1);
        let after: Vec<Vec<GlobalChannel>> = (0..3).map(|i| m.channels(i).to_vec()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn dynamic_keeps_core_every_slot() {
        let mut m = DynamicSharedCore::new(5, 6, 3, 30, 1.0, 11).unwrap();
        for slot in 0..50 {
            m.advance(slot);
            for i in 0..5 {
                let set: HashSet<_> = m.channels(i).iter().copied().collect();
                assert_eq!(set.len(), 6, "distinct channels");
                for core in 0..3u32 {
                    assert!(set.contains(&GlobalChannel(core)), "core channel missing");
                }
            }
        }
    }

    #[test]
    fn dynamic_zero_churn_is_static() {
        let mut m = DynamicSharedCore::new(3, 5, 2, 20, 0.0, 1).unwrap();
        let before: Vec<Vec<GlobalChannel>> = (0..3).map(|i| m.channels(i).to_vec()).collect();
        for slot in 0..10 {
            m.advance(slot);
        }
        let after: Vec<Vec<GlobalChannel>> = (0..3).map(|i| m.channels(i).to_vec()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn dynamic_full_churn_changes_sets() {
        let mut m = DynamicSharedCore::new(2, 8, 2, 200, 1.0, 3).unwrap();
        let before: Vec<GlobalChannel> = m.channels(0).to_vec();
        m.advance(0);
        let after: Vec<GlobalChannel> = m.channels(0).to_vec();
        // With 200 pool channels and 6 private picks, a redraw virtually
        // always changes the set (and the shuffle changes order anyway).
        assert_ne!(before, after);
    }

    #[test]
    fn dynamic_rejects_bad_params() {
        assert!(DynamicSharedCore::new(0, 5, 2, 20, 0.1, 1).is_err());
        assert!(DynamicSharedCore::new(3, 5, 0, 20, 0.1, 1).is_err());
        assert!(DynamicSharedCore::new(3, 5, 6, 20, 0.1, 1).is_err());
        assert!(DynamicSharedCore::new(3, 5, 2, 2, 0.1, 1).is_err());
        assert!(DynamicSharedCore::new(3, 5, 2, 20, 1.5, 1).is_err());
    }

    #[test]
    fn dynamic_pairwise_overlap_at_least_k_every_slot() {
        let mut m = DynamicSharedCore::new(4, 6, 2, 12, 0.7, 5).unwrap();
        for slot in 0..30 {
            m.advance(slot);
            for a in 0..4 {
                for b in (a + 1)..4 {
                    let sa: HashSet<_> = m.channels(a).iter().collect();
                    let overlap = m.channels(b).iter().filter(|g| sa.contains(g)).count();
                    assert!(overlap >= 2, "slot {slot} pair ({a},{b}): {overlap}");
                }
            }
        }
    }
}
