//! Deterministic seed derivation.
//!
//! Every run of the simulator is fully determined by a single `u64` master
//! seed. Per-node, per-trial and per-subsystem RNGs are derived from the
//! master seed with a SplitMix64-style mix so that streams are independent
//! and *stable*: adding a node or a trial never perturbs the randomness of
//! the others.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixes a master seed with a stream index into a new 64-bit seed.
///
/// Implements the SplitMix64 finalizer, which is a bijection on `u64` with
/// good avalanche behavior — two adjacent `(seed, stream)` pairs yield
/// uncorrelated outputs.
///
/// # Examples
///
/// ```
/// use crn_sim::rng::mix_seed;
/// let a = mix_seed(42, 0);
/// let b = mix_seed(42, 1);
/// assert_ne!(a, b);
/// // Deterministic:
/// assert_eq!(a, mix_seed(42, 0));
/// ```
#[inline]
pub fn mix_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a [`StdRng`] for the given `(master, stream)` pair.
///
/// # Examples
///
/// ```
/// use crn_sim::rng::derive_rng;
/// use rand::Rng;
/// let mut r1 = derive_rng(7, 0);
/// let mut r2 = derive_rng(7, 0);
/// assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
/// ```
pub fn derive_rng(master: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(mix_seed(master, stream))
}

/// Well-known stream indices so subsystems never collide.
pub mod streams {
    /// Stream used by the engine itself (contention winner selection).
    pub const ENGINE: u64 = 0xE46;
    /// Stream used by channel-assignment generators.
    pub const ASSIGNMENT: u64 = 0xA55;
    /// Stream used for local-label shuffles.
    pub const LABELS: u64 = 0x1AB;
    /// Stream used by dynamic channel models.
    pub const DYNAMIC: u64 = 0xD1C;
    /// Stream used by interference/jamming models.
    pub const JAMMER: u64 = 0x1A3;
    /// Base stream for per-node protocol RNGs; node `i` uses `NODE_BASE + i`.
    pub const NODE_BASE: u64 = 0x4000_0000;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn mix_is_deterministic() {
        for s in 0..32 {
            assert_eq!(mix_seed(123, s), mix_seed(123, s));
        }
    }

    #[test]
    fn adjacent_streams_differ() {
        let mut seen = HashSet::new();
        for s in 0..1000 {
            assert!(seen.insert(mix_seed(99, s)), "collision at stream {s}");
        }
    }

    #[test]
    fn different_masters_differ() {
        let mut seen = HashSet::new();
        for m in 0..1000 {
            assert!(seen.insert(mix_seed(m, 0)), "collision at master {m}");
        }
    }

    #[test]
    fn derived_rngs_reproduce() {
        let a: Vec<u64> = {
            let mut r = derive_rng(5, streams::ENGINE);
            (0..16).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = derive_rng(5, streams::ENGINE);
            (0..16).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn derived_rngs_for_nodes_are_independent_of_node_count() {
        // Node 3's stream must not change when more nodes exist.
        let mut r_small = derive_rng(5, streams::NODE_BASE + 3);
        let mut r_large = derive_rng(5, streams::NODE_BASE + 3);
        assert_eq!(r_small.gen::<u64>(), r_large.gen::<u64>());
    }
}
