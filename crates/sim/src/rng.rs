//! Deterministic seed derivation and the simulator's own fast RNG.
//!
//! Every run of the simulator is fully determined by a single `u64` master
//! seed. Per-node, per-trial and per-subsystem RNGs are derived from the
//! master seed with a SplitMix64-style mix so that streams are independent
//! and *stable*: adding a node or a trial never perturbs the randomness of
//! the others. See `docs/RNG_STREAMS.md` for the full stream map and the
//! seed-stability contract.
//!
//! The generator itself, [`SimRng`], is a fully-owned xoshiro256++
//! implementation: the engine's hot paths (every `decide()` call, every
//! contention-winner draw) go through it, so `crn-sim` must control its
//! exact state layout and inlining rather than depend on whatever the
//! `rand` dependency's `StdRng` happens to be (upstream it is ChaCha12,
//! an order of magnitude slower per draw than xoshiro256++). The stream
//! for a given `(master, stream)` pair is pinned by the known-answer
//! tests below and by the golden-trace digest test in `crn-core`.

use rand::{RngCore, SeedableRng};

/// Mixes a master seed with a stream index into a new 64-bit seed.
///
/// Implements the SplitMix64 finalizer, which is a bijection on `u64` with
/// good avalanche behavior — two adjacent `(seed, stream)` pairs yield
/// uncorrelated outputs.
///
/// # Examples
///
/// ```
/// use crn_sim::rng::mix_seed;
/// let a = mix_seed(42, 0);
/// let b = mix_seed(42, 1);
/// assert_ne!(a, b);
/// // Deterministic:
/// assert_eq!(a, mix_seed(42, 0));
/// ```
#[inline]
pub fn mix_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The simulator's generator: xoshiro256++ (Blackman & Vigna), seeded by
/// SplitMix64 expansion of a 64-bit seed.
///
/// 4×`u64` of state, one rotate-add-xor round per draw, and a period of
/// 2²⁵⁶ − 1 — statistically strong for Monte Carlo use and an order of
/// magnitude cheaper per `u64` than a cryptographic stream cipher. All
/// engine randomness (per-node protocol streams, the contention-winner
/// stream, the jammer stream) flows through this type via [`derive_rng`].
///
/// The raw 64-bit output stream for a fixed seed is pinned: recorded
/// experiment artifacts and the golden-trace digest test depend on it.
///
/// # Examples
///
/// ```
/// use crn_sim::rng::Xoshiro256PlusPlus;
/// use rand::{Rng, SeedableRng};
/// let mut r = Xoshiro256PlusPlus::seed_from_u64(1);
/// let x = r.gen_range(0..10u32);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// The next 64 random bits.
    ///
    /// Inherent (as well as via [`RngCore`]) so hot paths need no trait
    /// dispatch or imports.
    #[inline(always)]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    /// Expands `state` into the four state words with SplitMix64, so
    /// nearby seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        // xoshiro's all-zero state is a fixed point; SplitMix64 cannot
        // produce four zero words from any input, but guard anyway.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256PlusPlus { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline(always)]
    fn next_u64(&mut self) -> u64 {
        Xoshiro256PlusPlus::next_u64(self)
    }
}

/// The concrete RNG type handed to protocols, interference models and the
/// engine itself.
///
/// An alias so call sites name the *role* (simulator randomness) rather
/// than the algorithm; swapping the generator is a one-line change here
/// plus a reviewed golden-digest update.
pub type SimRng = Xoshiro256PlusPlus;

/// Creates a [`SimRng`] for the given `(master, stream)` pair.
///
/// # Examples
///
/// ```
/// use crn_sim::rng::derive_rng;
/// use rand::Rng;
/// let mut r1 = derive_rng(7, 0);
/// let mut r2 = derive_rng(7, 0);
/// assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
/// ```
pub fn derive_rng(master: u64, stream: u64) -> SimRng {
    SimRng::seed_from_u64(mix_seed(master, stream))
}

/// Well-known stream indices so subsystems never collide.
///
/// The seed-stability contract: every stream is derived from
/// `(master, stream_index)` only — never from how many nodes, trials or
/// subsystems exist — so adding a node or a trial never perturbs the
/// randomness of the others. `docs/RNG_STREAMS.md` documents each index.
pub mod streams {
    /// Stream used by the engine itself (contention winner selection).
    pub const ENGINE: u64 = 0xE46;
    /// Stream used by channel-assignment generators.
    pub const ASSIGNMENT: u64 = 0xA55;
    /// Stream used for local-label shuffles.
    pub const LABELS: u64 = 0x1AB;
    /// Stream used by dynamic channel models.
    pub const DYNAMIC: u64 = 0xD1C;
    /// Stream used by interference/jamming models.
    pub const JAMMER: u64 = 0x1A3;
    /// Stream used by the conformance suite's workload generator.
    pub const WORKLOAD: u64 = 0x3C0F;
    /// Stream used by the physical decay-backoff medium (per-round
    /// transmit coin flips).
    pub const PHYSICAL: u64 = 0xDECA;
    /// Base stream for per-node protocol RNGs; node `i` uses `NODE_BASE + i`.
    pub const NODE_BASE: u64 = 0x4000_0000;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn mix_is_deterministic() {
        for s in 0..32 {
            assert_eq!(mix_seed(123, s), mix_seed(123, s));
        }
    }

    #[test]
    fn adjacent_streams_differ() {
        let mut seen = HashSet::new();
        for s in 0..1000 {
            assert!(seen.insert(mix_seed(99, s)), "collision at stream {s}");
        }
    }

    #[test]
    fn different_masters_differ() {
        let mut seen = HashSet::new();
        for m in 0..1000 {
            assert!(seen.insert(mix_seed(m, 0)), "collision at master {m}");
        }
    }

    #[test]
    fn derived_rngs_reproduce() {
        let a: Vec<u64> = {
            let mut r = derive_rng(5, streams::ENGINE);
            (0..16).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = derive_rng(5, streams::ENGINE);
            (0..16).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn derived_rngs_for_nodes_are_independent_of_node_count() {
        // Node 3's stream must not change when more nodes exist.
        let mut r_small = derive_rng(5, streams::NODE_BASE + 3);
        let mut r_large = derive_rng(5, streams::NODE_BASE + 3);
        assert_eq!(r_small.gen::<u64>(), r_large.gen::<u64>());
    }

    #[test]
    fn sim_rng_matches_vendored_std_rng_streams() {
        // The switch from the previous `rand::rngs::StdRng`-based
        // derivation to the owned SimRng was made stream-preserving:
        // identical algorithm (xoshiro256++) and identical SplitMix64
        // seed expansion, so every recorded artifact and pinned
        // regression stays byte-identical. This test keeps the two
        // implementations locked together for as long as the vendored
        // stub remains xoshiro-based.
        use rand::rngs::StdRng;
        for seed in [0u64, 1, 42, u64::MAX] {
            let mut ours = SimRng::seed_from_u64(seed);
            let mut theirs = StdRng::seed_from_u64(seed);
            for _ in 0..64 {
                assert_eq!(ours.next_u64(), rand::RngCore::next_u64(&mut theirs));
            }
        }
    }

    #[test]
    fn sim_rng_known_answer() {
        // Pin the exact output stream: the golden-trace digest and every
        // recorded experiment artifact depend on this sequence. Changing
        // the generator means updating these constants *and* the digest
        // in crn-core's golden_trace test, as a reviewed decision.
        let mut r = SimRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                0x53175d61490b23df,
                0x61da6f3dc380d507,
                0x5c0fdf91ec9a7bfc,
                0x02eebf8c3bbe5e1a,
            ]
        );
    }

    #[test]
    fn physical_stream_known_answer() {
        // Pin the PHYSICAL stream (decay-backoff transmit coin flips):
        // the physical-medium experiment columns and crn-backoff's
        // recorded runs depend on this derivation staying put.
        let mut r = derive_rng(42, streams::PHYSICAL);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                0xf8ff09e05506a319,
                0x08406c610724739e,
                0xd4df37ce295a958a,
                0x1f56af9b125f4ee6,
            ]
        );
    }

    #[test]
    fn sim_rng_gen_range_is_unbiased_smoke() {
        let mut r = derive_rng(9, streams::ENGINE);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[r.gen_range(0..7usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (9000..=11000).contains(&c),
                "bucket {i} badly skewed: {c}/70000"
            );
        }
    }
}
