//! A persistent scoped worker pool for intra-trial parallelism.
//!
//! [`WorkerPool`] owns a fixed set of parked OS threads (spawned once,
//! reused across every slot of every trial — no per-slot spawns) and
//! exposes one operation: [`WorkerPool::run`], which fans an
//! index-range job `f(start, end)` across the pool via atomic chunk
//! claiming and blocks until every worker has quiesced (barrier
//! handoff). The caller participates as one worker, so a pool of `w`
//! workers spawns only `w - 1` threads and `w == 1` spawns none and
//! runs jobs inline with zero synchronization.
//!
//! Design constraints (see DESIGN.md "Threading model"):
//!
//! - **Determinism is the engine's job, not the pool's.** The pool
//!   guarantees only that every index in `0..total` is processed
//!   exactly once, by exactly one worker. [`crate::Network::step`]
//!   keeps digests bit-identical at any worker count because the
//!   phases it parallelizes are order-free (each node touches only its
//!   own RNG lane and its own index-keyed slots).
//! - **Allocation-free steady state.** Submitting a job publishes a
//!   raw fat pointer under a mutex and bumps an epoch; nothing is
//!   boxed or queued, so `run` performs no heap allocation (enforced
//!   by `crates/sim/tests/alloc.rs`).
//! - **Nesting never oversubscribes.** A `run` issued from inside a
//!   pool worker (parallel trials × parallel slots) or while another
//!   job is in flight executes inline on the calling thread, so the
//!   process shares one core budget.
//!
//! The process-wide pool ([`global`]) is sized by the strictly
//! validated `CRN_THREADS` environment variable (or `--threads` via
//! [`init_global`]), defaulting to
//! [`std::thread::available_parallelism`].

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// The environment variable that overrides the global pool width.
pub const THREADS_ENV: &str = "CRN_THREADS";

/// Upper bound accepted by [`parse_threads`] — far above any real
/// machine, low enough to catch obvious typos (`--threads 40960`).
pub const MAX_THREADS: usize = 1024;

thread_local! {
    /// True on threads owned by any [`WorkerPool`]; used to run nested
    /// submissions inline instead of deadlocking or oversubscribing.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// How a [`WorkerPool::run`] call was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// The job was fanned across the pool's workers.
    Parallel,
    /// The job ran inline on the calling thread (single-worker pool,
    /// empty job, nested submission, or another job already in
    /// flight).
    Inline,
}

/// A lifetime-erased job descriptor published to the workers.
///
/// The fat pointer is only dereferenced between the epoch bump that
/// publishes it and the barrier that ends the same epoch, during which
/// the submitting `run` frame (and therefore the referent) is alive.
#[derive(Clone, Copy)]
struct ErasedJob {
    f: *const (dyn Fn(usize, usize) + Sync),
    total: usize,
    chunk: usize,
}

// SAFETY: the pointer is only sent to pool threads while the `run`
// call that created it is blocked waiting for them (see `ErasedJob`).
unsafe impl Send for ErasedJob {}

struct JobState {
    /// Bumped once per published job; workers process each epoch
    /// exactly once, in lockstep (the submitter waits for all of them
    /// before the next bump).
    epoch: u64,
    shutdown: bool,
    job: Option<ErasedJob>,
}

struct Shared {
    state: Mutex<JobState>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The submitter parks here waiting for the barrier.
    done_cv: Condvar,
    /// Next unclaimed index of the current job.
    next: AtomicUsize,
    /// Spawned workers that have finished their claim loop this epoch.
    finished: AtomicUsize,
    /// Items claimed per worker in the latest job (`[0]` = submitter).
    loads: Vec<AtomicUsize>,
    /// First panic payload caught from any chunk, rethrown by `run`.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Shared {
    /// Claims and executes chunks until the job is exhausted; returns
    /// the number of items this thread processed. Panics are caught
    /// per-chunk, recorded once, and the loop keeps draining so every
    /// index is still processed exactly once.
    fn claim(&self, job: ErasedJob) -> usize {
        // SAFETY: `run` keeps the referent alive until the barrier.
        let f = unsafe { &*job.f };
        let mut claimed = 0;
        loop {
            // Relaxed: this counter only partitions indices; the data
            // the chunks touch is synchronized by the barrier mutex.
            let start = self.next.fetch_add(job.chunk, Ordering::Relaxed);
            if start >= job.total {
                return claimed;
            }
            let end = (start + job.chunk).min(job.total);
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(start, end))) {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            claimed += end - start;
        }
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize, spawned: usize) {
    IN_POOL_WORKER.with(|w| w.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    break state.job;
                }
                state = shared.work_cv.wait(state).unwrap();
            }
        };
        let claimed = job.map_or(0, |job| shared.claim(job));
        shared.loads[me].store(claimed, Ordering::Relaxed);
        // Check in under the state mutex so the submitter's
        // check-then-wait on `done_cv` cannot miss the last wakeup.
        let state = shared.state.lock().unwrap();
        if shared.finished.fetch_add(1, Ordering::Relaxed) + 1 == spawned {
            shared.done_cv.notify_all();
        }
        drop(state);
    }
}

/// A fixed-width pool of parked OS threads; see the module docs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    /// Serializes jobs: one in flight at a time; contenders run inline.
    submit: Mutex<()>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool of `workers` total workers (the submitting thread
    /// counts as one, so this spawns `workers - 1` threads; `0` is
    /// treated as `1`).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(JobState {
                epoch: 0,
                shutdown: false,
                job: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            loads: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
            panic: Mutex::new(None),
        });
        let spawned = workers - 1;
        let handles = (1..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("crn-pool-{me}"))
                    .spawn(move || worker_loop(shared, me, spawned))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
            submit: Mutex::new(()),
        }
    }

    /// Total worker count, including the submitting thread.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Partitions `0..total` into chunks of (at most) `chunk` indices
    /// and executes `f(start, end)` on each, fanned across the pool;
    /// returns once every index has been processed and every worker
    /// has quiesced.
    ///
    /// Falls back to a plain inline `f(0, total)` (returning
    /// [`RunMode::Inline`]) when the pool has one worker, `total` is
    /// zero, the calling thread is itself a pool worker, or another
    /// job is already in flight — so nested submissions share one core
    /// budget instead of oversubscribing or deadlocking.
    ///
    /// # Panics
    ///
    /// If any chunk panics the job still drains fully, and the first
    /// panic payload is rethrown on the calling thread.
    pub fn run(&self, total: usize, chunk: usize, f: &(dyn Fn(usize, usize) + Sync)) -> RunMode {
        if total == 0 {
            return RunMode::Inline;
        }
        if self.workers == 1 || IN_POOL_WORKER.with(|w| w.get()) {
            f(0, total);
            return RunMode::Inline;
        }
        let Ok(_submit) = self.submit.try_lock() else {
            f(0, total);
            return RunMode::Inline;
        };
        // SAFETY (lifetime erasure): the pointer outlives its use —
        // this frame does not return until every worker has checked
        // in for this epoch, and workers only read the job pointer
        // during the epoch that published it.
        let f: *const (dyn Fn(usize, usize) + Sync) =
            unsafe { std::mem::transmute(f as *const (dyn Fn(usize, usize) + Sync + '_)) };
        let job = ErasedJob {
            f,
            total,
            chunk: chunk.max(1),
        };
        let spawned = self.workers - 1;
        self.shared.next.store(0, Ordering::Relaxed);
        self.shared.finished.store(0, Ordering::Relaxed);
        {
            let mut state = self.shared.state.lock().unwrap();
            state.epoch += 1;
            state.job = Some(job);
            self.shared.work_cv.notify_all();
        }
        // Participate as worker 0.
        let claimed = self.shared.claim(job);
        self.shared.loads[0].store(claimed, Ordering::Relaxed);
        // Barrier: wait for every spawned worker to finish its claim
        // loop, so no laggard can touch `next` (or the erased pointer)
        // after we return.
        {
            let mut state = self.shared.state.lock().unwrap();
            while self.shared.finished.load(Ordering::Relaxed) < spawned {
                state = self.shared.done_cv.wait(state).unwrap();
            }
            // Drop the erased pointer so nothing dangling is retained.
            state.job = None;
        }
        if let Some(payload) = self.shared.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        RunMode::Parallel
    }

    /// Items processed per worker in the most recent [`RunMode::Parallel`]
    /// job (index 0 is the submitting thread). Allocates; intended for
    /// tests and load-balance diagnostics, not the hot path.
    pub fn last_loads(&self) -> Vec<usize> {
        self.shared
            .loads
            .iter()
            .map(|l| l.load(Ordering::Relaxed))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Strictly parses a thread count: an integer in `1..=`[`MAX_THREADS`].
///
/// Rejects `0`, non-numeric input, and absurd widths — mirroring the
/// CLI's strict flag validation, a bad value is an error, never a
/// silent default.
///
/// # Errors
///
/// Returns a human-readable message naming the offending value.
pub fn parse_threads(s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(v) if (1..=MAX_THREADS).contains(&v) => Ok(v),
        Ok(v) => Err(format!(
            "thread count must be between 1 and {MAX_THREADS}, got {v}"
        )),
        Err(_) => Err(format!(
            "invalid thread count {s:?} (expected an integer between 1 and {MAX_THREADS})"
        )),
    }
}

/// Reads and validates the [`THREADS_ENV`] override.
///
/// `Ok(None)` means the variable is unset (use the default).
///
/// # Errors
///
/// Returns an error if the variable is set to anything that fails
/// [`parse_threads`] (including non-UTF-8).
pub fn threads_from_env() -> Result<Option<usize>, String> {
    match std::env::var(THREADS_ENV) {
        Ok(v) => parse_threads(&v)
            .map(Some)
            .map_err(|e| format!("invalid {THREADS_ENV}: {e}")),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err(format!("invalid {THREADS_ENV}: not valid UTF-8"))
        }
    }
}

/// The machine's available parallelism (1 if it cannot be queried).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The worker count the global pool will use: the [`THREADS_ENV`]
/// override if set, else [`default_workers`].
///
/// # Errors
///
/// Returns an error if the environment override is set but invalid —
/// binaries should call this early and report the message instead of
/// panicking inside [`global`].
pub fn configured_workers() -> Result<usize, String> {
    Ok(threads_from_env()?.unwrap_or_else(default_workers))
}

static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();

/// Initializes the process-wide pool with an explicit width (the
/// `--threads` CLI flag). Idempotent for the same width.
///
/// # Errors
///
/// Returns an error if the global pool was already initialized (or
/// first used) with a different width — the pool is process-wide state
/// and cannot be resized.
pub fn init_global(workers: usize) -> Result<(), String> {
    let workers = workers.max(1);
    let pool = GLOBAL.get_or_init(|| Arc::new(WorkerPool::new(workers)));
    if pool.workers() != workers {
        return Err(format!(
            "global worker pool already initialized with {} workers; cannot reinitialize with {workers}",
            pool.workers()
        ));
    }
    Ok(())
}

/// Bootstraps the global pool from a `--threads` flag value (which
/// wins) or, absent one, the [`THREADS_ENV`] override. With neither,
/// does nothing: the pool sizes itself lazily from the machine's
/// available parallelism on first use.
///
/// Binaries call this once at startup so a bad width is a graceful
/// error instead of a panic inside [`global`].
///
/// # Errors
///
/// Returns an error for a value failing [`parse_threads`] or a width
/// conflicting with an already-initialized pool.
pub fn init_from_flag(flag: Option<&str>) -> Result<(), String> {
    let workers = match flag {
        Some(v) => parse_threads(v).map_err(|e| format!("--threads: {e}"))?,
        None => match threads_from_env()? {
            Some(w) => w,
            None => return Ok(()),
        },
    };
    init_global(workers)
}

/// The process-wide shared pool, created on first use and sized by
/// [`configured_workers`]. Shared by the engine's parallel slot phases
/// and `par_trials`, so nested use draws from one core budget.
///
/// # Panics
///
/// Panics if [`THREADS_ENV`] is set to an invalid value; binaries
/// should validate via [`configured_workers`] (or [`init_global`])
/// first to fail gracefully.
pub fn global() -> Arc<WorkerPool> {
    Arc::clone(GLOBAL.get_or_init(|| {
        let workers = configured_workers().unwrap_or_else(|e| panic!("{e}"));
        Arc::new(WorkerPool::new(workers))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn sum_indices(pool: &WorkerPool, total: usize, chunk: usize) -> (u64, RunMode) {
        let sum = AtomicU64::new(0);
        let mode = pool.run(total, chunk, &|start, end| {
            let mut local = 0u64;
            for i in start..end {
                local += i as u64;
            }
            sum.fetch_add(local, Ordering::Relaxed);
        });
        (sum.load(Ordering::Relaxed), mode)
    }

    fn expected_sum(total: usize) -> u64 {
        (0..total as u64).sum()
    }

    #[test]
    fn every_index_processed_exactly_once() {
        let pool = WorkerPool::new(4);
        for &total in &[1usize, 7, 64, 1000] {
            for &chunk in &[1usize, 3, 16, 2000] {
                let counts: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
                pool.run(total, chunk, &|start, end| {
                    for count in &counts[start..end] {
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                    "total={total} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn pool_threads_are_reused_across_jobs() {
        let pool = WorkerPool::new(3);
        for _ in 0..50 {
            let (sum, _) = sum_indices(&pool, 100, 4);
            assert_eq!(sum, expected_sum(100));
        }
        // Still only the originally spawned threads.
        assert_eq!(pool.handles.len(), 2);
    }

    #[test]
    fn single_worker_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let (sum, mode) = sum_indices(&pool, 100, 8);
        assert_eq!(sum, expected_sum(100));
        assert_eq!(mode, RunMode::Inline);
        assert!(pool.handles.is_empty(), "workers == 1 must spawn nothing");
    }

    #[test]
    fn empty_job_is_a_no_op() {
        let pool = WorkerPool::new(4);
        let (sum, mode) = sum_indices(&pool, 0, 8);
        assert_eq!(sum, 0);
        assert_eq!(mode, RunMode::Inline);
    }

    #[test]
    fn nested_submission_runs_inline_without_deadlock() {
        let pool = Arc::new(WorkerPool::new(3));
        let inner_modes = Mutex::new(Vec::new());
        let p2 = Arc::clone(&pool);
        pool.run(8, 1, &|start, end| {
            for _ in start..end {
                let (sum, mode) = sum_indices(&p2, 10, 2);
                assert_eq!(sum, expected_sum(10));
                inner_modes.lock().unwrap().push(mode);
            }
        });
        // Every nested call must have run inline: either issued from a
        // pool worker thread, or from the submitter while its own job
        // held the submit lock.
        let modes = inner_modes.lock().unwrap();
        assert_eq!(modes.len(), 8);
        assert!(modes.iter().all(|&m| m == RunMode::Inline));
    }

    #[test]
    fn loads_cover_all_items() {
        let pool = WorkerPool::new(4);
        let (sum, mode) = sum_indices(&pool, 1000, 1);
        assert_eq!(sum, expected_sum(1000));
        if mode == RunMode::Parallel {
            let loads = pool.last_loads();
            assert_eq!(loads.len(), 4);
            assert_eq!(loads.iter().sum::<usize>(), 1000);
        }
    }

    #[test]
    fn chunk_panic_propagates_to_submitter() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, 1, &|start, _end| {
                if start == 7 {
                    panic!("chunk 7 exploded");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "chunk 7 exploded");
        // The pool survives the panic and accepts further jobs.
        let (sum, _) = sum_indices(&pool, 50, 4);
        assert_eq!(sum, expected_sum(50));
    }

    #[test]
    fn concurrent_submitters_both_complete() {
        let pool = Arc::new(WorkerPool::new(4));
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for _ in 0..25 {
                        let (sum, _) = sum_indices(&pool, 200, 4);
                        assert_eq!(sum, expected_sum(200));
                    }
                });
            }
        });
    }

    #[test]
    fn parse_threads_accepts_sane_values() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads("8"), Ok(8));
        assert_eq!(parse_threads("1024"), Ok(1024));
    }

    #[test]
    fn parse_threads_rejects_bad_values() {
        for bad in [
            "0",
            "-1",
            "1.5",
            "four",
            "",
            " 3",
            "3 ",
            "1025",
            "99999999999999999999",
        ] {
            assert!(parse_threads(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn default_workers_is_at_least_one() {
        assert!(default_workers() >= 1);
    }
}
