//! # crn-sim — a single-hop cognitive radio network simulator
//!
//! This crate implements the system model of *Efficient Communication in
//! Cognitive Radio Networks* (Gilbert, Kuhn, Newport, Zheng; PODC 2015),
//! Section 2, as an executable substrate:
//!
//! - `n` nodes with unique identities, `C` global channels, synchronous
//!   slots, simultaneous activation;
//! - each node holds `c` channels, every pair overlaps on ≥ `k`;
//! - per-node **local channel labels** (the engine translates; protocols
//!   never see global identities unless the model is explicitly
//!   global-label);
//! - the randomized collision model: one uniformly-chosen transmission
//!   per contended channel succeeds, everyone listening receives it,
//!   broadcasters get success feedback, and losers overhear the winner;
//! - static *and* dynamic channel assignments, plus an interference hook
//!   for the jamming setting of Theorem 18.
//!
//! Protocols implement [`Protocol`]; the engine is [`Network`].
//!
//! ## Quick example
//!
//! ```
//! use crn_sim::assignment::shared_core;
//! use crn_sim::channel_model::StaticChannels;
//! use crn_sim::{Action, Event, LocalChannel, Network, NodeCtx, Protocol};
//! use crn_sim::rng::SimRng;
//! use rand::Rng;
//!
//! /// Every node hops uniformly; node 0 transmits, others listen.
//! struct Hop {
//!     heard: bool,
//! }
//! impl Protocol<u8> for Hop {
//!     fn decide(&mut self, ctx: &NodeCtx<'_>, rng: &mut SimRng) -> Action<u8> {
//!         let ch = LocalChannel(rng.gen_range(0..ctx.c as u32));
//!         if ctx.id.index() == 0 {
//!             Action::Broadcast(ch, 1)
//!         } else {
//!             Action::Listen(ch)
//!         }
//!     }
//!     fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<u8>) {
//!         if matches!(event, Event::Received { .. }) {
//!             self.heard = true;
//!         }
//!     }
//!     fn is_done(&self) -> bool {
//!         self.heard
//!     }
//! }
//!
//! let assignment = shared_core(4, 3, 2)?;
//! let model = StaticChannels::local(assignment, 7);
//! let protos = (0..4).map(|i| Hop { heard: i == 0 }).collect();
//! let mut net = Network::new(model, protos, 7)?;
//! let outcome = net.run_to_completion(10_000);
//! assert!(outcome.is_done());
//! # Ok::<(), crn_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assignment;
pub mod channel_model;
pub mod conformance;
pub mod engine;
pub mod error;
pub mod faults;
pub mod ids;
pub mod interference;
pub mod medium;
pub mod pool;
pub mod proto;
pub mod rng;
pub mod sensing;
pub mod topology;
pub mod trace;

pub use assignment::{ChannelAssignment, OverlapPattern};
pub use channel_model::{ChannelModel, DynamicSharedCore, StaticChannels};
pub use conformance::{check_slot, check_slot_for, replay_winners, Rule, Violation};
pub use engine::{Network, NetworkBuilder, ParConfig, RunOutcome, DEFAULT_PAR_THRESHOLD};
pub use error::SimError;
pub use faults::{FaultSchedule, Flaky};
pub use ids::{GlobalChannel, LocalChannel, NodeId};
pub use interference::{Intent, Interference, NoInterference};
pub use medium::{
    Medium, MediumProfile, OracleMultihop, OracleSingleHop, PhysicalDecay, SlotInputs,
};
pub use pool::WorkerPool;
pub use proto::{Action, Event, NodeCtx, Protocol};
pub use rng::{derive_rng, mix_seed, SimRng};
pub use sensing::{sense_assignment, SensingReport, SpectrumConfig};
pub use topology::Topology;
pub use trace::{ChannelActivity, SlotActivity, TraceDigest, TraceLog};
