//! Synthetic spectrum sensing: from a primary-user band occupancy to
//! per-node channel sets.
//!
//! The paper's introduction motivates the model with secondary users
//! scavenging leftover spectrum in licensed bands (TV white space): a
//! cognitive radio surveys the band, identifies free fragments, and
//! presents them as abstract channels. Different nodes see different
//! conditions, hence different channel sets — but a small set of
//! database-backed *anchor* channels (in the white-space world, the
//! geolocation database every device must consult) is known-free to
//! everyone, which is what realizes the model's pairwise `k`-overlap
//! guarantee.
//!
//! [`sense_assignment`] generates exactly that workload: a random
//! primary occupancy over `bands` bands, `k` anchors guaranteed free,
//! per-node noisy sensing of the rest, and per-node channel sets of
//! size `c` built from each node's sensed-free bands.

use crate::assignment::ChannelAssignment;
use crate::error::SimError;
use crate::ids::GlobalChannel;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic spectrum environment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectrumConfig {
    /// Total candidate bands `C` (anchors included).
    pub bands: usize,
    /// Probability that a non-anchor band is occupied by a primary
    /// user.
    pub primary_density: f64,
    /// Per-node, per-band probability of a sensing error (a flipped
    /// busy/free reading).
    pub sensing_noise: f64,
}

impl SpectrumConfig {
    /// A TV-white-space flavoured default: 60 bands, 40% primary
    /// occupancy, 5% sensing noise.
    pub fn tv_white_space() -> Self {
        SpectrumConfig {
            bands: 60,
            primary_density: 0.4,
            sensing_noise: 0.05,
        }
    }
}

/// What the sensing pass produced, alongside the assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensingReport {
    /// Ground-truth occupancy per band (anchors always free).
    pub occupied: Vec<bool>,
    /// Bands every node treats as known-free (the database anchors).
    pub anchors: Vec<GlobalChannel>,
    /// Sensing errors per node (false-free + false-busy readings).
    pub sensing_errors: Vec<usize>,
    /// Per node, how many of its selected channels are actually
    /// occupied by a primary (false-free picks — real deployments pay
    /// interference for these).
    pub interfering_picks: Vec<usize>,
}

/// Builds a `(n, c, k)` channel assignment from a synthetic sensing
/// pass over `cfg`'s spectrum.
///
/// The `k` anchor bands are chosen uniformly among the `bands` and are
/// free and correctly known to all nodes; each node fills its
/// remaining `c − k` channels from the bands it *senses* free
/// (preferring them in random order), falling back to sensed-busy
/// bands only if its free list runs short.
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] if `bands < c`, the usual
/// `1 ≤ k ≤ c` constraint fails, or probabilities are outside
/// `[0, 1]`.
///
/// # Examples
///
/// ```
/// use crn_sim::sensing::{sense_assignment, SpectrumConfig};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let (a, report) = sense_assignment(8, 6, 2, SpectrumConfig::tv_white_space(), &mut rng)?;
/// assert_eq!(a.n(), 8);
/// assert!(a.min_pairwise_overlap() >= 2);
/// assert_eq!(report.anchors.len(), 2);
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn sense_assignment(
    n: usize,
    c: usize,
    k: usize,
    cfg: SpectrumConfig,
    rng: &mut impl Rng,
) -> Result<(ChannelAssignment, SensingReport), SimError> {
    if n == 0 || c == 0 || k == 0 || k > c {
        return Err(SimError::InvalidParams {
            reason: format!("need n,c >= 1 and 1 <= k <= c (n={n}, c={c}, k={k})"),
        });
    }
    if cfg.bands < c {
        return Err(SimError::InvalidParams {
            reason: format!("bands ({}) must be at least c ({c})", cfg.bands),
        });
    }
    for (name, p) in [
        ("primary_density", cfg.primary_density),
        ("sensing_noise", cfg.sensing_noise),
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(SimError::InvalidParams {
                reason: format!("{name} ({p}) must be in [0, 1]"),
            });
        }
    }

    // Anchors: k database-backed, guaranteed-free bands.
    let mut band_ids: Vec<u32> = (0..cfg.bands as u32).collect();
    band_ids.shuffle(rng);
    let anchors: Vec<GlobalChannel> = band_ids[..k].iter().map(|&b| GlobalChannel(b)).collect();

    // Ground truth: primaries occupy non-anchor bands.
    let mut occupied = vec![false; cfg.bands];
    for &b in &band_ids[k..] {
        occupied[b as usize] = rng.gen_bool(cfg.primary_density);
    }

    let mut sets = Vec::with_capacity(n);
    let mut sensing_errors = vec![0usize; n];
    let mut interfering_picks = vec![0usize; n];
    for node in 0..n {
        // Sense every non-anchor band, with noise.
        let mut sensed_free: Vec<u32> = Vec::new();
        let mut sensed_busy: Vec<u32> = Vec::new();
        for &b in &band_ids[k..] {
            let truth_busy = occupied[b as usize];
            let flip = cfg.sensing_noise > 0.0 && rng.gen_bool(cfg.sensing_noise);
            if flip {
                sensing_errors[node] += 1;
            }
            if truth_busy != flip {
                sensed_busy.push(b);
            } else {
                sensed_free.push(b);
            }
        }
        sensed_free.shuffle(rng);
        sensed_busy.shuffle(rng);
        let mut set: Vec<GlobalChannel> = anchors.clone();
        for &b in sensed_free.iter().chain(sensed_busy.iter()) {
            if set.len() == c {
                break;
            }
            set.push(GlobalChannel(b));
        }
        interfering_picks[node] = set.iter().filter(|g| occupied[g.index()]).count();
        sets.push(set);
    }

    let assignment = ChannelAssignment::from_sets(sets, cfg.bands, k)?;
    Ok((
        assignment,
        SensingReport {
            occupied,
            anchors,
            sensing_errors,
            interfering_picks,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(bands: usize, density: f64, noise: f64) -> SpectrumConfig {
        SpectrumConfig {
            bands,
            primary_density: density,
            sensing_noise: noise,
        }
    }

    #[test]
    fn produces_valid_assignment() {
        let mut rng = StdRng::seed_from_u64(3);
        let (a, r) = sense_assignment(10, 8, 3, cfg(50, 0.5, 0.1), &mut rng).unwrap();
        assert_eq!(a.n(), 10);
        assert_eq!(a.c(), 8);
        assert!(a.min_pairwise_overlap() >= 3);
        assert_eq!(r.anchors.len(), 3);
        assert_eq!(r.occupied.len(), 50);
    }

    #[test]
    fn anchors_are_free_and_in_every_set() {
        let mut rng = StdRng::seed_from_u64(5);
        let (a, r) = sense_assignment(6, 5, 2, cfg(40, 0.8, 0.2), &mut rng).unwrap();
        for anchor in &r.anchors {
            assert!(!r.occupied[anchor.index()], "anchors are never occupied");
            for node in 0..6 {
                assert!(a.channels_of(node).contains(anchor));
            }
        }
    }

    #[test]
    fn zero_noise_zero_density_picks_only_free_bands() {
        let mut rng = StdRng::seed_from_u64(7);
        let (_, r) = sense_assignment(5, 6, 2, cfg(30, 0.0, 0.0), &mut rng).unwrap();
        assert!(r.sensing_errors.iter().all(|&e| e == 0));
        assert!(r.interfering_picks.iter().all(|&i| i == 0));
    }

    #[test]
    fn perfect_sensing_avoids_primaries_when_spectrum_suffices() {
        let mut rng = StdRng::seed_from_u64(9);
        // 30% density over 60 bands leaves ~40 free ones; with c = 6
        // and no noise, nobody should pick an occupied band.
        let (_, r) = sense_assignment(8, 6, 2, cfg(60, 0.3, 0.0), &mut rng).unwrap();
        assert!(
            r.interfering_picks.iter().all(|&i| i == 0),
            "{:?}",
            r.interfering_picks
        );
    }

    #[test]
    fn noise_induces_interfering_picks() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut total = 0usize;
        for _ in 0..20 {
            let (_, r) = sense_assignment(8, 6, 1, cfg(40, 0.6, 0.4), &mut rng).unwrap();
            total += r.interfering_picks.iter().sum::<usize>();
            assert!(r.sensing_errors.iter().sum::<usize>() > 0);
        }
        assert!(total > 0, "40% sensing noise must cause some bad picks");
    }

    #[test]
    fn crowded_spectrum_still_meets_the_invariant() {
        let mut rng = StdRng::seed_from_u64(13);
        // Almost everything occupied: nodes must fall back to busy
        // bands, but the k-overlap (anchors) still holds.
        let (a, _) = sense_assignment(12, 10, 2, cfg(20, 0.95, 0.0), &mut rng).unwrap();
        assert!(a.validate().is_ok());
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sense_assignment(0, 4, 2, cfg(10, 0.1, 0.1), &mut rng).is_err());
        assert!(sense_assignment(3, 4, 0, cfg(10, 0.1, 0.1), &mut rng).is_err());
        assert!(sense_assignment(3, 4, 5, cfg(10, 0.1, 0.1), &mut rng).is_err());
        assert!(sense_assignment(3, 12, 2, cfg(10, 0.1, 0.1), &mut rng).is_err());
        assert!(sense_assignment(3, 4, 2, cfg(10, 1.5, 0.1), &mut rng).is_err());
        assert!(sense_assignment(3, 4, 2, cfg(10, 0.1, -0.1), &mut rng).is_err());
    }

    proptest! {
        #[test]
        fn prop_sensed_assignments_valid(
            n in 1usize..12,
            c in 1usize..8,
            k_off in 0usize..8,
            density in 0.0f64..1.0,
            noise in 0.0f64..0.5,
            seed in 0u64..200,
        ) {
            let k = 1 + k_off % c;
            let mut rng = StdRng::seed_from_u64(seed);
            let bands = c * 4 + 8;
            let (a, r) = sense_assignment(n, c, k, cfg(bands, density, noise), &mut rng).unwrap();
            prop_assert!(a.validate().is_ok());
            prop_assert!(a.min_pairwise_overlap() >= k);
            prop_assert_eq!(r.anchors.len(), k);
            prop_assert_eq!(r.interfering_picks.len(), n);
        }
    }
}
