//! The rendezvous-based local-broadcast baseline.
//!
//! The "straightforward solution" from the paper's introduction: every
//! node runs randomized rendezvous with the source — the source
//! transmits its message on a uniformly random channel every slot, and
//! each uninformed node listens on a uniformly random channel until it
//! hears the message. Informed non-source nodes go quiet: unlike
//! COGCAST there is **no epidemic relay**, which is exactly why this
//! baseline needs `O((c²/k)·lg n)` slots instead of COGCAST's
//! `O((c/k)·max{1, c/n}·lg n)`.

use crn_sim::rng::SimRng;
use crn_sim::{Action, ChannelModel, Event, LocalChannel, Network, NodeCtx, Protocol, SimError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A node of the rendezvous-broadcast baseline.
#[derive(Debug, Clone)]
pub struct RendezvousBroadcast<M> {
    message: Option<M>,
    is_source: bool,
}

impl<M: Clone> RendezvousBroadcast<M> {
    /// The source, which transmits `message` every slot.
    pub fn source(message: M) -> Self {
        RendezvousBroadcast {
            message: Some(message),
            is_source: true,
        }
    }

    /// An initially-uninformed receiver.
    pub fn node() -> Self {
        RendezvousBroadcast {
            message: None,
            is_source: false,
        }
    }

    /// True once this node knows the message.
    pub fn is_informed(&self) -> bool {
        self.message.is_some()
    }

    /// The message, if known.
    pub fn message(&self) -> Option<&M> {
        self.message.as_ref()
    }
}

impl<M: Clone + std::fmt::Debug> Protocol<M> for RendezvousBroadcast<M> {
    fn decide(&mut self, ctx: &NodeCtx<'_>, rng: &mut SimRng) -> Action<M> {
        let ch = LocalChannel(rng.gen_range(0..ctx.c as u32));
        if self.is_source {
            Action::Broadcast(ch, self.message.clone().expect("source always informed"))
        } else if self.message.is_none() {
            Action::Listen(ch)
        } else {
            // Informed, but this baseline never relays.
            Action::Sleep
        }
    }

    fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<M>) {
        if let Event::Received { msg, .. } = event {
            if self.message.is_none() {
                self.message = Some(msg);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.is_informed()
    }
}

/// Statistics of one baseline-broadcast run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineBroadcastRun {
    /// Slots until everyone was informed, or `None` on timeout.
    pub slots: Option<u64>,
    /// The slot budget allowed.
    pub budget: u64,
    /// Informed count after each slot.
    pub informed_per_slot: Vec<usize>,
}

impl BaselineBroadcastRun {
    /// True if broadcast completed within the budget.
    pub fn completed(&self) -> bool {
        self.slots.is_some()
    }
}

/// Runs the rendezvous-broadcast baseline (node 0 is the source).
///
/// # Errors
///
/// Propagates [`SimError`] from network construction.
///
/// # Examples
///
/// ```
/// use crn_rendezvous::broadcast::run_baseline_broadcast;
/// use crn_sim::{assignment::shared_core, channel_model::StaticChannels};
///
/// let model = StaticChannels::local(shared_core(8, 3, 2)?, 2);
/// let run = run_baseline_broadcast(model, 2, 100_000)?;
/// assert!(run.completed());
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn run_baseline_broadcast<CM: ChannelModel>(
    model: CM,
    seed: u64,
    budget: u64,
) -> Result<BaselineBroadcastRun, SimError> {
    let n = model.n();
    let mut protos = Vec::with_capacity(n);
    protos.push(RendezvousBroadcast::source(()));
    protos.extend((1..n).map(|_| RendezvousBroadcast::node()));
    let mut net = Network::new(model, protos, seed)?;

    let mut informed_per_slot = Vec::new();
    let mut slots = None;
    for s in 0..budget {
        net.step();
        let informed = net.protocols().iter().filter(|p| p.is_informed()).count();
        informed_per_slot.push(informed);
        if informed == n {
            slots = Some(s + 1);
            break;
        }
    }
    Ok(BaselineBroadcastRun {
        slots,
        budget,
        informed_per_slot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_core::cogcast::run_broadcast;
    use crn_sim::assignment::{full_overlap, shared_core};
    use crn_sim::channel_model::StaticChannels;

    #[test]
    fn completes_on_single_channel() {
        let model = StaticChannels::local(full_overlap(6, 1).unwrap(), 0);
        let run = run_baseline_broadcast(model, 0, 100).unwrap();
        assert_eq!(run.slots, Some(1), "one channel informs everyone at once");
    }

    #[test]
    fn completes_with_partial_overlap() {
        for seed in 0..5 {
            let model = StaticChannels::local(shared_core(10, 4, 2).unwrap(), seed);
            let run = run_baseline_broadcast(model, seed, 100_000).unwrap();
            assert!(run.completed(), "seed {seed}");
        }
    }

    #[test]
    fn informed_curve_is_monotone() {
        let model = StaticChannels::local(shared_core(12, 4, 2).unwrap(), 3);
        let run = run_baseline_broadcast(model, 3, 100_000).unwrap();
        for w in run.informed_per_slot.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn cogcast_beats_baseline_for_large_c() {
        // The paper's headline: epidemic spread wins by roughly a factor
        // of c once n is large enough. Compare mean completion times.
        let (n, c, k) = (48, 12, 2);
        let trials = 8;
        let mut base_total = 0u64;
        let mut cog_total = 0u64;
        for seed in 0..trials {
            let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
            let base = run_baseline_broadcast(model, seed, 5_000_000).unwrap();
            base_total += base.slots.expect("baseline must finish");
            let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed + 1000);
            let cog = run_broadcast(model, seed + 1000, 5_000_000).unwrap();
            cog_total += cog.slots.expect("cogcast must finish");
        }
        assert!(
            base_total > cog_total * 2,
            "baseline {base_total} should lose clearly to COGCAST {cog_total}"
        );
    }
}
