//! # crn-rendezvous — the baseline protocols COGCAST/COGCOMP beat
//!
//! The paper's introduction measures COGCAST and COGCOMP against the
//! "straightforward solutions" built from randomized rendezvous; its
//! Section 6 discussion also exhibits a global-label algorithm that
//! beats COGCAST when `c ≫ n`. This crate implements all of them:
//!
//! - [`pairwise`] — the two-node randomized-rendezvous primitive
//!   (`O(c²/k)` expected meeting time);
//! - [`broadcast`] — rendezvous-based local broadcast, `O((c²/k)·lg n)`
//!   (no epidemic relay: the factor-`c` gap to COGCAST);
//! - [`aggregate`] — rendezvous-based aggregation, `O(c²·n/k)`;
//! - [`hop_together`] — the global-label sequential scan that completes
//!   in `O(C/k)` expected slots, the separation witness between the
//!   local-label (Theorem 15) and global-label (Theorem 16) bounds.
//!
//! ```
//! use crn_rendezvous::broadcast::run_baseline_broadcast;
//! use crn_sim::{assignment::shared_core, channel_model::StaticChannels};
//!
//! let model = StaticChannels::local(shared_core(10, 4, 2)?, 9);
//! let run = run_baseline_broadcast(model, 9, 1_000_000)?;
//! assert!(run.completed());
//! # Ok::<(), crn_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod acquainted;
pub mod aggregate;
pub mod broadcast;
pub mod deterministic;
pub mod hop_together;
pub mod msg;
pub mod pairwise;

pub use acquainted::{run_acquainted, AcqMsg, Acquainted, AcquaintedRun};
pub use aggregate::{run_baseline_aggregation, BaselineAggregationRun, RendezvousAggregation};
pub use broadcast::{run_baseline_broadcast, BaselineBroadcastRun, RendezvousBroadcast};
pub use deterministic::{jump_stay_rendezvous_slots, JumpStay, JumpStaySchedule, SlotPlan};
pub use hop_together::{run_hop_together, HopTogether, HopTogetherRun};
pub use msg::BaselineMsg;
pub use pairwise::{rendezvous_slots, RandomHop};
