//! The rendezvous-based data-aggregation baseline.
//!
//! The introduction's "straightforward solution": each non-source node
//! repeatedly tries to rendezvous with the source and hand over its
//! value; the source listens and acknowledges one sender at a time.
//! With fair contention this costs `O(c²·n/k)` slots — COGCOMP's
//! advantage (experiment T2/F6) is that it pays the rendezvous price
//! once to build a tree, then pipelines the `n` hand-offs.
//!
//! Concretely the baseline runs in 2-slot steps:
//!
//! 1. every undelivered sender broadcasts `⟨id, value⟩` on a uniformly
//!    random channel while the source listens on a uniformly random
//!    channel;
//! 2. if the source heard a value, it acknowledges the sender's id on
//!    the same channel; senders listen where they transmitted, and a
//!    sender that hears its own id stops.

use crate::msg::BaselineMsg;
use crn_core::aggregate::Aggregate;
use crn_sim::rng::SimRng;
use crn_sim::{
    Action, ChannelModel, Event, LocalChannel, Network, NodeCtx, NodeId, Protocol, SimError,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A node of the rendezvous-aggregation baseline.
#[derive(Debug, Clone)]
pub struct RendezvousAggregation<V> {
    value: V,
    is_source: bool,
    expected: usize,
    collected: BTreeSet<NodeId>,
    delivered: bool,
    current_channel: LocalChannel,
    pending_ack: Option<NodeId>,
}

impl<V: Aggregate> RendezvousAggregation<V> {
    /// The source, expecting values from `n − 1` senders.
    pub fn source(value: V, n: usize) -> Self {
        RendezvousAggregation {
            value,
            is_source: true,
            expected: n.saturating_sub(1),
            collected: BTreeSet::new(),
            delivered: true,
            current_channel: LocalChannel(0),
            pending_ack: None,
        }
    }

    /// A sender holding `value`.
    pub fn node(value: V) -> Self {
        RendezvousAggregation {
            value,
            is_source: false,
            expected: 0,
            collected: BTreeSet::new(),
            delivered: false,
            current_channel: LocalChannel(0),
            pending_ack: None,
        }
    }

    /// The aggregate accumulated so far (the final result on the source
    /// once done).
    pub fn aggregate(&self) -> &V {
        &self.value
    }

    /// Number of distinct senders the source has collected.
    pub fn collected(&self) -> usize {
        self.collected.len()
    }
}

impl<V: Aggregate> Protocol<BaselineMsg<V>> for RendezvousAggregation<V> {
    fn decide(&mut self, ctx: &NodeCtx<'_>, rng: &mut SimRng) -> Action<BaselineMsg<V>> {
        let meeting_slot = ctx.slot.is_multiple_of(2);
        if meeting_slot {
            self.current_channel = LocalChannel(rng.gen_range(0..ctx.c as u32));
            if self.is_source {
                if self.collected.len() >= self.expected {
                    return Action::Sleep;
                }
                Action::Listen(self.current_channel)
            } else if self.delivered {
                Action::Sleep
            } else {
                Action::Broadcast(
                    self.current_channel,
                    BaselineMsg::Value {
                        id: ctx.id,
                        v: self.value.clone(),
                    },
                )
            }
        } else {
            // Acknowledgement slot, on the meeting channel.
            if self.is_source {
                match self.pending_ack.take() {
                    Some(id) => Action::Broadcast(self.current_channel, BaselineMsg::Ack { id }),
                    None => Action::Sleep,
                }
            } else if self.delivered {
                Action::Sleep
            } else {
                Action::Listen(self.current_channel)
            }
        }
    }

    fn observe(&mut self, ctx: &NodeCtx<'_>, event: Event<BaselineMsg<V>>) {
        let meeting_slot = ctx.slot.is_multiple_of(2);
        if meeting_slot {
            if self.is_source {
                if let Event::Received {
                    msg: BaselineMsg::Value { id, v },
                    ..
                } = event
                {
                    if self.collected.insert(id) {
                        self.value.merge(&v);
                    }
                    self.pending_ack = Some(id);
                }
            }
        } else if !self.is_source {
            if let Event::Received {
                msg: BaselineMsg::Ack { id },
                ..
            } = event
            {
                if id == ctx.id {
                    self.delivered = true;
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        if self.is_source {
            self.collected.len() >= self.expected
        } else {
            self.delivered
        }
    }
}

/// Statistics of one baseline-aggregation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineAggregationRun<V> {
    /// The aggregate at the source, if the run completed.
    pub result: Option<V>,
    /// Slots until the source collected everything, or `None` on
    /// timeout.
    pub slots: Option<u64>,
    /// The slot budget allowed.
    pub budget: u64,
}

impl<V> BaselineAggregationRun<V> {
    /// True if the run completed within budget.
    pub fn completed(&self) -> bool {
        self.slots.is_some()
    }
}

/// Runs the rendezvous-aggregation baseline (node 0 is the source).
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] if `values.len()` differs from
/// the model's node count, and propagates construction errors.
///
/// # Examples
///
/// ```
/// use crn_core::aggregate::Sum;
/// use crn_rendezvous::aggregate::run_baseline_aggregation;
/// use crn_sim::{assignment::shared_core, channel_model::StaticChannels};
///
/// let model = StaticChannels::local(shared_core(6, 3, 2)?, 4);
/// let values: Vec<Sum> = (0..6).map(Sum).collect();
/// let run = run_baseline_aggregation(model, values, 4, 1_000_000)?;
/// assert_eq!(run.result, Some(Sum(15)));
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn run_baseline_aggregation<CM: ChannelModel, V: Aggregate>(
    model: CM,
    values: Vec<V>,
    seed: u64,
    budget: u64,
) -> Result<BaselineAggregationRun<V>, SimError> {
    let n = model.n();
    if values.len() != n {
        return Err(SimError::InvalidParams {
            reason: format!("{} values supplied for {n} nodes", values.len()),
        });
    }
    let mut values = values.into_iter();
    let source_value = values.next().expect("n >= 1");
    let mut protos = Vec::with_capacity(n);
    protos.push(RendezvousAggregation::source(source_value, n));
    protos.extend(values.map(RendezvousAggregation::node));
    let mut net = Network::new(model, protos, seed)?;
    let outcome = net.run_to_completion(budget);
    let slots = outcome.slots();
    let protos = net.into_protocols();
    let result = slots.map(|_| protos[0].aggregate().clone());
    Ok(BaselineAggregationRun {
        result,
        slots,
        budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_core::aggregate::{Collect, Sum};
    use crn_sim::assignment::{full_overlap, shared_core};
    use crn_sim::channel_model::StaticChannels;

    #[test]
    fn aggregates_correctly_single_channel() {
        let n = 8;
        let model = StaticChannels::local(full_overlap(n, 1).unwrap(), 0);
        let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
        let run = run_baseline_aggregation(model, values, 0, 100_000).unwrap();
        assert!(run.completed());
        assert_eq!(run.result, Some(Sum(28)));
    }

    #[test]
    fn aggregates_correctly_partial_overlap() {
        for seed in 0..5 {
            let n = 10;
            let model = StaticChannels::local(shared_core(n, 4, 2).unwrap(), seed);
            let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
            let run = run_baseline_aggregation(model, values, seed, 1_000_000).unwrap();
            assert!(run.completed(), "seed {seed}");
            assert_eq!(run.result, Some(Sum(45)), "seed {seed}");
        }
    }

    #[test]
    fn every_value_counted_exactly_once() {
        let n = 9;
        let model = StaticChannels::local(shared_core(n, 3, 1).unwrap(), 7);
        let values: Vec<Collect> = (0..n as u64).map(Collect::of).collect();
        let run = run_baseline_aggregation(model, values, 7, 1_000_000).unwrap();
        let expect: Vec<u64> = (0..n as u64).collect();
        assert_eq!(run.result.unwrap().values(), expect.as_slice());
    }

    #[test]
    fn single_node_is_instant() {
        let model = StaticChannels::local(full_overlap(1, 2).unwrap(), 0);
        let run = run_baseline_aggregation(model, vec![Sum(9)], 0, 10).unwrap();
        assert_eq!(run.result, Some(Sum(9)));
        assert_eq!(run.slots, Some(0), "source with nothing to collect");
    }

    #[test]
    fn value_count_mismatch_rejected() {
        let model = StaticChannels::local(full_overlap(3, 2).unwrap(), 0);
        assert!(run_baseline_aggregation(model, vec![Sum(1)], 0, 10).is_err());
    }

    #[test]
    fn cost_grows_linearly_in_n() {
        // O(c²·n/k): doubling n should roughly double the time.
        let mean = |n: usize| -> f64 {
            let trials = 6;
            let mut total = 0u64;
            for seed in 0..trials {
                let model = StaticChannels::local(shared_core(n, 4, 2).unwrap(), seed);
                let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
                let run = run_baseline_aggregation(model, values, seed, 10_000_000).unwrap();
                total += run.slots.unwrap();
            }
            total as f64 / trials as f64
        };
        let t20 = mean(20);
        let t80 = mean(80);
        let ratio = t80 / t20;
        assert!(
            (2.0..10.0).contains(&ratio),
            "expected ~4x for 4x nodes, got {ratio} ({t20} vs {t80})"
        );
    }
}
