//! The pairwise randomized-rendezvous primitive.
//!
//! Two nodes each hop to a uniformly random channel among their `c`
//! channels every slot; they *meet* in the first slot both land on a
//! shared channel. With an overlap of `k` channels the per-slot meeting
//! probability is at least `k/c²`, so the expected meeting time is
//! `O(c²/k)` — the baseline figure the paper's introduction quotes for
//! rendezvous-based protocols.

use crn_sim::rng::SimRng;
use crn_sim::{Action, ChannelModel, Event, LocalChannel, Network, NodeCtx, Protocol, SimError};
use rand::Rng;

/// A node running uniform random channel hopping. Node 0 beacons; node 1
/// listens; the pair has met once node 1 receives the beacon.
#[derive(Debug, Clone)]
pub struct RandomHop {
    beaconer: bool,
    met: bool,
}

impl RandomHop {
    /// The transmitting side of the pair.
    pub fn beaconer() -> Self {
        RandomHop {
            beaconer: true,
            met: false,
        }
    }

    /// The listening side of the pair.
    pub fn listener() -> Self {
        RandomHop {
            beaconer: false,
            met: false,
        }
    }

    /// True once the pair has met (observable on the listener).
    pub fn has_met(&self) -> bool {
        self.met
    }
}

impl Protocol<u8> for RandomHop {
    fn decide(&mut self, ctx: &NodeCtx<'_>, rng: &mut SimRng) -> Action<u8> {
        let ch = LocalChannel(rng.gen_range(0..ctx.c as u32));
        if self.beaconer {
            Action::Broadcast(ch, 1)
        } else {
            Action::Listen(ch)
        }
    }

    fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<u8>) {
        if matches!(event, Event::Received { .. }) {
            self.met = true;
        }
    }

    fn is_done(&self) -> bool {
        self.beaconer || self.met
    }
}

/// Runs randomized rendezvous between the two nodes of `model` and
/// returns the number of slots until they meet (or `None` if the budget
/// runs out).
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] if the model does not have
/// exactly two nodes.
///
/// # Examples
///
/// ```
/// use crn_rendezvous::pairwise::rendezvous_slots;
/// use crn_sim::{assignment::shared_core, channel_model::StaticChannels};
///
/// let model = StaticChannels::local(shared_core(2, 4, 2)?, 3);
/// let slots = rendezvous_slots(model, 3, 10_000)?;
/// assert!(slots.is_some());
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn rendezvous_slots<CM: ChannelModel>(
    model: CM,
    seed: u64,
    budget: u64,
) -> Result<Option<u64>, SimError> {
    if model.n() != 2 {
        return Err(SimError::InvalidParams {
            reason: format!(
                "pairwise rendezvous needs exactly 2 nodes, got {}",
                model.n()
            ),
        });
    }
    let protos = vec![RandomHop::beaconer(), RandomHop::listener()];
    let mut net = Network::new(model, protos, seed)?;
    Ok(net.run(budget, |n| n.all_done()).slots())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_sim::assignment::{full_overlap, shared_core};
    use crn_sim::channel_model::StaticChannels;

    #[test]
    fn meets_immediately_on_single_channel() {
        let model = StaticChannels::local(full_overlap(2, 1).unwrap(), 0);
        assert_eq!(rendezvous_slots(model, 0, 10).unwrap(), Some(1));
    }

    #[test]
    fn meets_within_budget_with_partial_overlap() {
        for seed in 0..10 {
            let model = StaticChannels::local(shared_core(2, 6, 2).unwrap(), seed);
            let slots = rendezvous_slots(model, seed, 100_000).unwrap();
            assert!(slots.is_some(), "seed {seed}");
        }
    }

    #[test]
    fn mean_meeting_time_scales_like_c_squared_over_k() {
        // E[T] ≈ c²/k for the shared-core pattern (overlap exactly k).
        let mean = |c: usize, k: usize| -> f64 {
            let trials = 300;
            let mut total = 0u64;
            for seed in 0..trials {
                let model = StaticChannels::local(shared_core(2, c, k).unwrap(), seed);
                total += rendezvous_slots(model, seed, 1_000_000)
                    .unwrap()
                    .expect("must meet");
            }
            total as f64 / trials as f64
        };
        let t_8_2 = mean(8, 2); // c²/k = 32
        let t_4_2 = mean(4, 2); // c²/k = 8
        let ratio = t_8_2 / t_4_2;
        assert!(
            (2.0..8.0).contains(&ratio),
            "expected ~4x scaling, got {ratio} ({t_8_2} vs {t_4_2})"
        );
    }

    #[test]
    fn rejects_non_pair_models() {
        let model = StaticChannels::local(shared_core(3, 4, 2).unwrap(), 0);
        assert!(rendezvous_slots(model, 0, 10).is_err());
    }

    #[test]
    fn times_out_gracefully() {
        let model = StaticChannels::local(shared_core(2, 16, 1).unwrap(), 1);
        // With expected meeting time 256, one slot essentially never
        // suffices.
        let r = rendezvous_slots(model, 1, 1).unwrap();
        assert!(r.is_none() || r == Some(1));
    }
}
