//! The "hop together" global-label algorithm from the paper's Section 6
//! discussion.
//!
//! With *global* channel labels, all nodes can scan the `C` channels in
//! the same predefined order (`g = slot mod C`): whenever the scan hits
//! a channel that everyone shares, the whole network meets there at
//! once. In the discussion's setup (`C = k + n(c−k)` shared-core,
//! `c = n²`, `k = c − 1`) this completes local broadcast in `O(C/k)` =
//! `O(1)` expected slots, while COGCAST needs `Θ((c²/(nk))·lg n)` —
//! proving the global-label lower bound of `Ω(c/k)` cannot be raised to
//! match COGCAST when `c ≫ n`. This algorithm is *impossible* under
//! local labels, which is the gap between Theorems 15 and 16.

use crn_sim::rng::SimRng;
use crn_sim::{Action, ChannelModel, Event, GlobalChannel, Network, NodeCtx, Protocol, SimError};
use serde::{Deserialize, Serialize};

/// A node of the hop-together broadcast. Requires the global-label
/// model ([`crn_sim::StaticChannels::global`]); panics otherwise.
#[derive(Debug, Clone)]
pub struct HopTogether<M> {
    message: Option<M>,
    is_source: bool,
    total_channels: usize,
}

impl<M: Clone> HopTogether<M> {
    /// The source for a network of `total_channels` global channels.
    pub fn source(message: M, total_channels: usize) -> Self {
        HopTogether {
            message: Some(message),
            is_source: true,
            total_channels,
        }
    }

    /// An uninformed receiver for a network of `total_channels` global
    /// channels.
    pub fn node(total_channels: usize) -> Self {
        HopTogether {
            message: None,
            is_source: false,
            total_channels,
        }
    }

    /// True once this node knows the message.
    pub fn is_informed(&self) -> bool {
        self.message.is_some()
    }
}

impl<M: Clone + std::fmt::Debug> Protocol<M> for HopTogether<M> {
    fn decide(&mut self, ctx: &NodeCtx<'_>, _rng: &mut SimRng) -> Action<M> {
        let channels = ctx
            .channels
            .expect("HopTogether requires the global-label model");
        let scan = GlobalChannel((ctx.slot % self.total_channels as u64) as u32);
        let Some(local) = ctx.local_label_of(scan) else {
            // The scan is on a channel this node lacks; skip the slot.
            return Action::Sleep;
        };
        debug_assert!(channels.contains(&scan));
        if self.is_source {
            Action::Broadcast(local, self.message.clone().expect("source is informed"))
        } else if self.message.is_none() {
            Action::Listen(local)
        } else {
            // Informed nodes relay, epidemic-style, to finish faster.
            Action::Broadcast(local, self.message.clone().expect("checked above"))
        }
    }

    fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<M>) {
        if let Event::Received { msg, .. } = event {
            if self.message.is_none() {
                self.message = Some(msg);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.is_informed()
    }
}

/// Statistics of one hop-together run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopTogetherRun {
    /// Slots until everyone was informed, or `None` on timeout.
    pub slots: Option<u64>,
    /// The slot budget allowed.
    pub budget: u64,
}

/// Runs hop-together broadcast (node 0 the source) on a **global-label**
/// model.
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] if the model has local labels,
/// and propagates construction errors.
///
/// # Examples
///
/// ```
/// use crn_rendezvous::hop_together::run_hop_together;
/// use crn_sim::{assignment::shared_core, channel_model::StaticChannels};
///
/// let model = StaticChannels::global(shared_core(4, 3, 2)?);
/// let run = run_hop_together(model, 1, 1_000)?;
/// assert!(run.slots.is_some());
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn run_hop_together<CM: ChannelModel + Sync>(
    model: CM,
    seed: u64,
    budget: u64,
) -> Result<HopTogetherRun, SimError> {
    run_hop_together_on(model, seed, budget, crn_sim::OracleSingleHop::new()).map(|(run, _)| run)
}

/// Runs hop-together broadcast over an arbitrary [`crn_sim::Medium`] —
/// the collision oracle or the decay-backoff physical layer — and
/// returns the medium alongside the run so medium-side metadata (e.g.
/// [`crn_sim::PhysicalDecay::physical_rounds`]) can be read back.
///
/// The scan schedule is deterministic, so the only difference between
/// media is *which* concurrent broadcaster gets through — the algorithm
/// is unchanged.
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] if the model has local labels,
/// and propagates construction errors.
pub fn run_hop_together_on<CM, Med>(
    model: CM,
    seed: u64,
    budget: u64,
    medium: Med,
) -> Result<(HopTogetherRun, Med), SimError>
where
    CM: ChannelModel + Sync,
    Med: crn_sim::Medium<()>,
{
    if !model.labels_are_global() {
        return Err(SimError::InvalidParams {
            reason: "hop-together requires the global-label model".into(),
        });
    }
    let n = model.n();
    let total = model.total_channels();
    let mut protos = Vec::with_capacity(n);
    protos.push(HopTogether::source((), total));
    protos.extend((1..n).map(|_| HopTogether::node(total)));
    let mut net = Network::with_medium(model, protos, seed, medium)?;
    // Digest-identical at any worker count; `all_done` is O(1) here
    // thanks to the engine's fused doneness tally.
    net.set_parallelism(crn_sim::ParConfig::auto());
    let slots = net.run(budget, |net| net.all_done()).slots();
    Ok((HopTogetherRun { slots, budget }, net.into_medium()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_sim::assignment::{full_overlap, shared_core};
    use crn_sim::channel_model::StaticChannels;

    #[test]
    fn completes_in_at_most_c_over_k_scans() {
        // Shared-core: the first k scan positions are the core, so
        // broadcast completes within the first k slots of the scan —
        // in fact in slot 1, because channel 0 is shared.
        let model = StaticChannels::global(shared_core(6, 4, 2).unwrap());
        let run = run_hop_together(model, 0, 100).unwrap();
        assert_eq!(run.slots, Some(1));
    }

    #[test]
    fn completes_on_full_overlap() {
        let model = StaticChannels::global(full_overlap(5, 3).unwrap());
        let run = run_hop_together(model, 0, 10).unwrap();
        assert_eq!(run.slots, Some(1));
    }

    #[test]
    fn rejects_local_label_model() {
        let model = StaticChannels::local(shared_core(4, 3, 2).unwrap(), 1);
        assert!(run_hop_together(model, 1, 10).is_err());
    }

    #[test]
    fn discussion_example_is_constant_time() {
        // The Section 6 example: c = n², k = c − 1 (here scaled down:
        // n = 4, c = 16, k = 15). C = k + n(c−k) = 15 + 4 = 19;
        // expected completion O(C/k) = O(1) slots.
        let (n, c) = (4usize, 16usize);
        let k = c - 1;
        let model = StaticChannels::global(shared_core(n, c, k).unwrap());
        let run = run_hop_together(model, 3, 100).unwrap();
        assert!(run.slots.unwrap() <= 4, "got {:?}", run.slots);
    }
}
