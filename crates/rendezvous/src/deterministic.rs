//! Deterministic (jump-stay flavoured) rendezvous.
//!
//! The rendezvous literature the paper builds on ([6, 11, 15] in its
//! bibliography) constructs deterministic channel-hopping sequences
//! with guaranteed meeting times polynomial in the channel count. The
//! paper's footnote 1 observes that plain *randomized* hopping already
//! achieves `O(c²/k)` — improving on determinism whenever `k` is
//! non-constant. Experiment T6 measures that claim with this module as
//! the deterministic side.
//!
//! The scheme here adapts the jump-stay idea to the synchronous,
//! simultaneous-start, global-label model. Plain symmetric sequences
//! deadlock under symmetry (two nodes can chase each other forever),
//! so roles are derived from node identifiers, as the deterministic
//! literature does:
//!
//! - time is split into *rounds* of `2P` slots, `P` = smallest prime
//!   ≥ `C`;
//! - in round `rd`, a node is a **jumper** if `(salt + rd)` is even
//!   and a **stayer** otherwise — any two nodes with salts of opposite
//!   parity hold opposite roles in *every* round;
//! - a jumper walks `x_t = (salt + t·r) mod P` with the step
//!   `r = (rd mod (P−1)) + 1`; since `P` is prime the walk visits
//!   every residue — in particular every channel in its own set —
//!   within the round;
//! - a stayer parks on its `⌊rd/2⌋ mod c`-th channel for the whole
//!   round, cycling through its channel set across rounds.
//!
//! **Guarantee:** within `2c` rounds the stayer has parked on one of
//! the ≥ `k` channels shared with its partner while holding the stayer
//! role, and in that round the jumper's walk tunes that exact global
//! channel — so any opposite-parity pair meets within `4cP =
//! O(c·C)` slots. (The bound is verified by an exhaustive test.)

use crn_sim::rng::SimRng;
use crn_sim::{
    Action, ChannelModel, Event, GlobalChannel, LocalChannel, Network, NodeCtx, Protocol, SimError,
};
use serde::{Deserialize, Serialize};

/// Returns the smallest prime `>= n` (and `>= 2`).
///
/// # Examples
///
/// ```
/// use crn_rendezvous::deterministic::smallest_prime_geq;
/// assert_eq!(smallest_prime_geq(0), 2);
/// assert_eq!(smallest_prime_geq(8), 11);
/// assert_eq!(smallest_prime_geq(11), 11);
/// ```
pub fn smallest_prime_geq(n: usize) -> usize {
    fn is_prime(x: usize) -> bool {
        if x < 2 {
            return false;
        }
        let mut d = 2;
        while d * d <= x {
            if x.is_multiple_of(d) {
                return false;
            }
            d += 1;
        }
        true
    }
    let mut p = n.max(2);
    while !is_prime(p) {
        p += 1;
    }
    p
}

/// The deterministic schedule for a channel universe of size
/// `total_channels` and a node distinguished by `salt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JumpStaySchedule {
    /// The prime the jump walk is built over.
    pub prime: usize,
    /// Distinguishes nodes; opposite parities guarantee rendezvous.
    pub salt: u32,
}

/// What the schedule prescribes for one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotPlan {
    /// Walk the jump sequence: tune the given raw residue (a global
    /// channel id when `< C`).
    Jump(usize),
    /// Park on the node's own channel with this index (mod `c`).
    Stay(usize),
}

impl JumpStaySchedule {
    /// Builds a schedule.
    pub fn new(total_channels: usize, salt: u32) -> Self {
        JumpStaySchedule {
            prime: smallest_prime_geq(total_channels),
            salt,
        }
    }

    /// Length of one round in slots (`2P`).
    pub fn round_len(&self) -> u64 {
        2 * self.prime as u64
    }

    /// The plan for `slot`.
    pub fn plan(&self, slot: u64) -> SlotPlan {
        let p = self.prime as u64;
        let rd = slot / self.round_len();
        let t = slot % self.round_len();
        let jumper = (self.salt as u64 + rd).is_multiple_of(2);
        if jumper {
            let r = (rd % (p - 1).max(1)) + 1;
            SlotPlan::Jump(((self.salt as u64 + t * r) % p) as usize)
        } else {
            SlotPlan::Stay((rd / 2) as usize)
        }
    }
}

/// A node running the deterministic scheme: node 0 beacons, others
/// listen. Requires the global-label model.
#[derive(Debug, Clone)]
pub struct JumpStay {
    schedule: JumpStaySchedule,
    total_channels: usize,
    beaconer: bool,
    met: bool,
}

impl JumpStay {
    /// The transmitting side (use an even `salt`).
    pub fn beaconer(total_channels: usize, salt: u32) -> Self {
        JumpStay {
            schedule: JumpStaySchedule::new(total_channels, salt),
            total_channels,
            beaconer: true,
            met: false,
        }
    }

    /// The listening side (use a `salt` of opposite parity to the
    /// beaconer's).
    pub fn listener(total_channels: usize, salt: u32) -> Self {
        JumpStay {
            schedule: JumpStaySchedule::new(total_channels, salt),
            total_channels,
            beaconer: false,
            met: false,
        }
    }

    /// True once this listener has heard the beacon.
    pub fn has_met(&self) -> bool {
        self.met
    }

    /// The guaranteed meeting horizon for an opposite-parity pair with
    /// `c` channels each: `2c` rounds of `2P` slots.
    pub fn horizon(&self, c: usize) -> u64 {
        2 * c as u64 * self.schedule.round_len()
    }
}

impl Protocol<u8> for JumpStay {
    fn decide(&mut self, ctx: &NodeCtx<'_>, _rng: &mut SimRng) -> Action<u8> {
        let channels = ctx
            .channels
            .expect("deterministic rendezvous requires the global-label model");
        let local = match self.schedule.plan(ctx.slot) {
            SlotPlan::Jump(x) => {
                let target = GlobalChannel(x.min(self.total_channels.saturating_sub(1)) as u32);
                ctx.local_label_of(target)
                    // Residues outside the node's set are parked inside
                    // it; these slots are "wasted" but harmless.
                    .unwrap_or(LocalChannel((x % channels.len()) as u32))
            }
            SlotPlan::Stay(i) => LocalChannel((i % channels.len()) as u32),
        };
        if self.beaconer {
            Action::Broadcast(local, 1)
        } else {
            Action::Listen(local)
        }
    }

    fn observe(&mut self, _ctx: &NodeCtx<'_>, event: Event<u8>) {
        if matches!(event, Event::Received { .. }) {
            self.met = true;
        }
    }

    fn is_done(&self) -> bool {
        self.beaconer || self.met
    }
}

/// Runs deterministic rendezvous between the two nodes of a
/// **global-label** model (salts 0 and 1); returns the meeting slot or
/// `None` if the budget runs out.
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] unless the model has exactly
/// two nodes and global labels.
///
/// # Examples
///
/// ```
/// use crn_rendezvous::deterministic::jump_stay_rendezvous_slots;
/// use crn_sim::{assignment::shared_core, channel_model::StaticChannels};
///
/// let model = StaticChannels::global(shared_core(2, 4, 2)?);
/// let slots = jump_stay_rendezvous_slots(model, 0, 10_000)?;
/// assert!(slots.is_some());
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn jump_stay_rendezvous_slots<CM: ChannelModel>(
    model: CM,
    seed: u64,
    budget: u64,
) -> Result<Option<u64>, SimError> {
    if model.n() != 2 {
        return Err(SimError::InvalidParams {
            reason: format!(
                "pairwise rendezvous needs exactly 2 nodes, got {}",
                model.n()
            ),
        });
    }
    if !model.labels_are_global() {
        return Err(SimError::InvalidParams {
            reason: "deterministic rendezvous requires the global-label model".into(),
        });
    }
    let total = model.total_channels();
    let protos = vec![JumpStay::beaconer(total, 0), JumpStay::listener(total, 1)];
    let mut net = Network::new(model, protos, seed)?;
    Ok(net.run(budget, |n| n.all_done()).slots())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_sim::assignment::{full_overlap, random_with_core, shared_core};
    use crn_sim::channel_model::StaticChannels;
    use rand::SeedableRng;

    #[test]
    fn prime_helper_correct() {
        assert_eq!(smallest_prime_geq(1), 2);
        assert_eq!(smallest_prime_geq(4), 5);
        assert_eq!(smallest_prime_geq(13), 13);
        assert_eq!(smallest_prime_geq(14), 17);
        assert_eq!(smallest_prime_geq(90), 97);
    }

    #[test]
    fn opposite_salts_hold_opposite_roles() {
        let a = JumpStaySchedule::new(10, 0);
        let b = JumpStaySchedule::new(10, 1);
        for slot in (0..20 * a.round_len()).step_by(a.round_len() as usize) {
            let (pa, pb) = (a.plan(slot), b.plan(slot));
            assert!(
                matches!(pa, SlotPlan::Jump(_)) != matches!(pb, SlotPlan::Jump(_)),
                "slot {slot}: {pa:?} vs {pb:?}"
            );
        }
    }

    #[test]
    fn jump_round_covers_all_residues() {
        let s = JumpStaySchedule::new(7, 0);
        let p = s.prime;
        // salt 0 is the jumper in round 0.
        let seen: std::collections::HashSet<usize> = (0..s.round_len())
            .map(|t| match s.plan(t) {
                SlotPlan::Jump(x) => x,
                SlotPlan::Stay(_) => unreachable!("salt 0 jumps in round 0"),
            })
            .collect();
        assert_eq!(seen.len(), p, "a jump round visits every residue");
    }

    #[test]
    fn stayer_cycles_every_channel_index() {
        let s = JumpStaySchedule::new(7, 1);
        let mut parks = std::collections::HashSet::new();
        for rd in 0..12u64 {
            if let SlotPlan::Stay(i) = s.plan(rd * s.round_len()) {
                parks.insert(i % 6);
            }
        }
        assert_eq!(parks.len(), 6, "parked indices must cycle the whole set");
    }

    #[test]
    fn meets_on_identical_sets() {
        let model = StaticChannels::global(full_overlap(2, 6).unwrap());
        let slots = jump_stay_rendezvous_slots(model, 0, 10_000).unwrap();
        assert!(slots.is_some());
    }

    #[test]
    fn meets_within_guaranteed_horizon_shared_core() {
        // The adversarial pattern that deadlocked naive symmetric
        // sequences: overlap exactly k, disjoint private blocks.
        for c in [4usize, 8, 12] {
            for k in [1usize, 2, c] {
                let a = shared_core(2, c, k).unwrap();
                let total = a.total_channels();
                let p = smallest_prime_geq(total) as u64;
                let horizon = 2 * c as u64 * 2 * p;
                let model = StaticChannels::global(a);
                let slots = jump_stay_rendezvous_slots(model, 0, horizon).unwrap();
                assert!(slots.is_some(), "(c={c}, k={k}) missed horizon {horizon}");
            }
        }
    }

    #[test]
    fn meets_within_horizon_on_random_assignments() {
        for seed in 0..25 {
            let mut rng = SimRng::seed_from_u64(seed);
            let a = random_with_core(2, 6, 2, 20, &mut rng).unwrap();
            let total = a.total_channels();
            let p = smallest_prime_geq(total) as u64;
            let horizon = 2 * 6 * 2 * p;
            let model = StaticChannels::global(a);
            let slots = jump_stay_rendezvous_slots(model, seed, horizon).unwrap();
            assert!(
                slots.is_some(),
                "seed {seed} missed the {horizon}-slot horizon"
            );
        }
    }

    #[test]
    fn is_fully_deterministic() {
        let run = |seed: u64| {
            let model = StaticChannels::global(shared_core(2, 8, 2).unwrap());
            jump_stay_rendezvous_slots(model, seed, 100_000).unwrap()
        };
        assert_eq!(run(1), run(2));
        assert_eq!(run(2), run(99));
    }

    #[test]
    fn rejects_local_labels_and_wrong_n() {
        let model = StaticChannels::local(shared_core(2, 4, 2).unwrap(), 0);
        assert!(jump_stay_rendezvous_slots(model, 0, 10).is_err());
        let model = StaticChannels::global(shared_core(3, 4, 2).unwrap());
        assert!(jump_stay_rendezvous_slots(model, 0, 10).is_err());
    }
}
