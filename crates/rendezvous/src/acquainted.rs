//! Seed exchange: rendezvous once, then meet every slot.
//!
//! The paper's footnote 1 notes that the classic argument for
//! deterministic rendezvous — "once a pair of nodes swap information,
//! they can calculate each other's schedule going forward" — works for
//! randomized algorithms too: *nodes can swap the seed for a
//! pseudorandom number generator*. This module implements that
//! protocol for a pair of nodes under global labels:
//!
//! 1. **Acquaintance** (2-slot steps): the initiator hops uniformly,
//!    broadcasting its channel set and seed; the responder hops
//!    uniformly, listening. When they meet, the responder answers on
//!    the same channel with its own set and seed.
//! 2. **Acquainted**: both sides now know both channel sets — hence
//!    the intersection — and share `seed_a ^ seed_b`; from then on
//!    both draw the same pseudorandom sequence over the shared
//!    channels and meet in **every** slot.

use crn_sim::rng::derive_rng;
use crn_sim::rng::SimRng;
use crn_sim::{
    Action, ChannelModel, Event, GlobalChannel, LocalChannel, Network, NodeCtx, Protocol, SimError,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Messages of the acquaintance handshake.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AcqMsg {
    /// Initiator → responder: "here is my channel set and PRG seed".
    Hello {
        /// The initiator's PRG seed.
        seed: u64,
        /// The initiator's channels (global ids).
        channels: Vec<u32>,
    },
    /// Responder → initiator, on the meeting channel.
    HelloAck {
        /// The responder's PRG seed.
        seed: u64,
        /// The responder's channels (global ids).
        channels: Vec<u32>,
    },
    /// Post-acquaintance beacon on the shared schedule.
    Beacon,
}

/// Shared post-acquaintance state.
#[derive(Debug, Clone)]
struct SharedSchedule {
    intersection: Vec<GlobalChannel>,
    rng: SimRng,
    /// The channel drawn for the current slot (drawn once per slot).
    drawn_for: Option<(u64, GlobalChannel)>,
}

impl SharedSchedule {
    fn new(mine: &[u32], theirs: &[u32], seed: u64) -> Self {
        let mut intersection: Vec<GlobalChannel> = mine
            .iter()
            .filter(|c| theirs.contains(c))
            .map(|&c| GlobalChannel(c))
            .collect();
        intersection.sort_unstable();
        SharedSchedule {
            intersection,
            rng: derive_rng(seed, 0x5EED),
            drawn_for: None,
        }
    }

    fn channel_for(&mut self, slot: u64) -> GlobalChannel {
        if let Some((s, ch)) = self.drawn_for {
            if s == slot {
                return ch;
            }
        }
        let ch = self.intersection[self.rng.gen_range(0..self.intersection.len())];
        self.drawn_for = Some((slot, ch));
        ch
    }
}

/// A node of the seed-exchange rendezvous pair. Requires the
/// global-label model and exactly two nodes (an initiator and a
/// responder).
#[derive(Debug, Clone)]
pub struct Acquainted {
    initiator: bool,
    my_seed: u64,
    /// Channel used in the current slot (for the responder's ack).
    pending: LocalChannel,
    shared: Option<SharedSchedule>,
    /// Set when the responder must ack in the next (odd) slot.
    ack_due: Option<(LocalChannel, u64, Vec<u32>)>,
    meetings_after_acquaintance: u64,
    acquainted_at: Option<u64>,
}

impl Acquainted {
    /// The initiating side (transmits `Hello`).
    pub fn initiator(my_seed: u64) -> Self {
        Acquainted {
            initiator: true,
            my_seed,
            pending: LocalChannel(0),
            shared: None,
            ack_due: None,
            meetings_after_acquaintance: 0,
            acquainted_at: None,
        }
    }

    /// The responding side (listens, then acks).
    pub fn responder(my_seed: u64) -> Self {
        Acquainted {
            initiator: false,
            ..Acquainted::initiator(my_seed)
        }
    }

    /// True once the handshake completed on this side.
    pub fn is_acquainted(&self) -> bool {
        self.shared.is_some()
    }

    /// The slot in which this side completed the handshake.
    pub fn acquainted_at(&self) -> Option<u64> {
        self.acquainted_at
    }

    /// Post-acquaintance meetings observed (responder counts received
    /// beacons; initiator counts delivered ones).
    pub fn meetings_after_acquaintance(&self) -> u64 {
        self.meetings_after_acquaintance
    }

    fn my_channels(ctx: &NodeCtx<'_>) -> Vec<u32> {
        ctx.channels
            .expect("Acquainted requires the global-label model")
            .iter()
            .map(|g| g.0)
            .collect()
    }
}

impl Protocol<AcqMsg> for Acquainted {
    fn decide(&mut self, ctx: &NodeCtx<'_>, rng: &mut SimRng) -> Action<AcqMsg> {
        // Acquainted regime: both sides draw the same shared channel.
        if let Some(shared) = self.shared.as_mut() {
            let g = shared.channel_for(ctx.slot);
            let local = ctx
                .local_label_of(g)
                .expect("intersection channels are in both sets");
            return if self.initiator {
                Action::Broadcast(local, AcqMsg::Beacon)
            } else {
                Action::Listen(local)
            };
        }
        // Handshake regime: 2-slot steps.
        let meeting_slot = ctx.slot.is_multiple_of(2);
        if meeting_slot {
            self.pending = LocalChannel(rng.gen_range(0..ctx.c as u32));
            if self.initiator {
                Action::Broadcast(
                    self.pending,
                    AcqMsg::Hello {
                        seed: self.my_seed,
                        channels: Self::my_channels(ctx),
                    },
                )
            } else {
                Action::Listen(self.pending)
            }
        } else if self.initiator {
            // Wait for the ack on the channel just used.
            Action::Listen(self.pending)
        } else if let Some((ch, _seed, _channels)) = self.ack_due.clone() {
            Action::Broadcast(
                ch,
                AcqMsg::HelloAck {
                    seed: self.my_seed,
                    channels: Self::my_channels(ctx),
                },
            )
        } else {
            Action::Sleep
        }
    }

    fn observe(&mut self, ctx: &NodeCtx<'_>, event: Event<AcqMsg>) {
        if self.shared.is_some() {
            match event {
                Event::Received {
                    msg: AcqMsg::Beacon,
                    ..
                }
                | Event::Delivered => {
                    self.meetings_after_acquaintance += 1;
                }
                _ => {}
            }
            return;
        }
        match event {
            Event::Received {
                msg: AcqMsg::Hello { seed, channels },
                ..
            } if !self.initiator => {
                // Met the initiator: schedule the ack for the next
                // slot; the switch to the shared schedule happens once
                // the ack is out (its delivery is guaranteed — the
                // responder is the only odd-slot transmitter there).
                self.ack_due = Some((self.pending, seed, channels));
            }
            Event::Received {
                msg: AcqMsg::HelloAck { seed, channels },
                ..
            } if self.initiator => {
                self.shared = Some(SharedSchedule::new(
                    &Self::my_channels(ctx),
                    &channels,
                    self.my_seed ^ seed,
                ));
                self.acquainted_at = Some(ctx.slot);
            }
            Event::Delivered if !self.initiator && self.ack_due.is_some() => {
                let (_, seed, channels) = self.ack_due.take().expect("checked");
                self.shared = Some(SharedSchedule::new(
                    &Self::my_channels(ctx),
                    &channels,
                    seed ^ self.my_seed,
                ));
                self.acquainted_at = Some(ctx.slot);
            }
            _ => {}
        }
    }

    fn is_done(&self) -> bool {
        self.is_acquainted()
    }
}

/// The outcome of a seed-exchange run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcquaintedRun {
    /// Slot at which both sides were acquainted, or `None` on timeout.
    pub acquainted_slot: Option<u64>,
    /// Post-acquaintance slots observed.
    pub followup_slots: u64,
    /// Meetings during the follow-up window (should equal
    /// `followup_slots`: the pair meets every slot).
    pub followup_meetings: u64,
}

/// Runs the seed-exchange protocol on a two-node **global-label**
/// model; after acquaintance, runs `followup_slots` more slots and
/// counts meetings.
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] unless the model has exactly
/// two nodes and global labels.
///
/// # Examples
///
/// ```
/// use crn_rendezvous::acquainted::run_acquainted;
/// use crn_sim::{assignment::shared_core, channel_model::StaticChannels};
///
/// let model = StaticChannels::global(shared_core(2, 5, 2)?);
/// let run = run_acquainted(model, 3, 100_000, 50)?;
/// assert!(run.acquainted_slot.is_some());
/// assert_eq!(run.followup_meetings, 50, "acquainted nodes meet every slot");
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn run_acquainted<CM: ChannelModel>(
    model: CM,
    seed: u64,
    budget: u64,
    followup_slots: u64,
) -> Result<AcquaintedRun, SimError> {
    if model.n() != 2 {
        return Err(SimError::InvalidParams {
            reason: format!("seed exchange needs exactly 2 nodes, got {}", model.n()),
        });
    }
    if !model.labels_are_global() {
        return Err(SimError::InvalidParams {
            reason: "seed exchange requires the global-label model".into(),
        });
    }
    let protos = vec![
        Acquainted::initiator(seed.wrapping_mul(3) ^ 0xA),
        Acquainted::responder(seed.wrapping_mul(7) ^ 0xB),
    ];
    let mut net = Network::new(model, protos, seed)?;
    let outcome = net.run(budget, |n| n.all_done());
    let acquainted_slot = outcome.slots();
    let mut followup_meetings = 0;
    if acquainted_slot.is_some() {
        let before: u64 = net
            .protocols()
            .iter()
            .map(|p| p.meetings_after_acquaintance())
            .max()
            .unwrap_or(0);
        net.run_slots(followup_slots);
        let after: u64 = net
            .protocols()
            .iter()
            .map(|p| p.meetings_after_acquaintance())
            .max()
            .unwrap_or(0);
        followup_meetings = after - before;
    }
    Ok(AcquaintedRun {
        acquainted_slot,
        followup_slots,
        followup_meetings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_sim::assignment::{full_overlap, shared_core};
    use crn_sim::channel_model::StaticChannels;

    #[test]
    fn handshake_completes_and_then_meets_every_slot() {
        for seed in 0..10 {
            let model = StaticChannels::global(shared_core(2, 6, 2).unwrap());
            let run = run_acquainted(model, seed, 1_000_000, 100).unwrap();
            assert!(run.acquainted_slot.is_some(), "seed {seed}");
            assert_eq!(
                run.followup_meetings, 100,
                "seed {seed}: acquainted pair must meet every slot"
            );
        }
    }

    #[test]
    fn works_with_full_overlap() {
        let model = StaticChannels::global(full_overlap(2, 4).unwrap());
        let run = run_acquainted(model, 1, 10_000, 25).unwrap();
        assert!(run.acquainted_slot.is_some());
        assert_eq!(run.followup_meetings, 25);
    }

    #[test]
    fn acquaintance_cost_tracks_rendezvous_cost() {
        // The handshake is ~2 rendezvous: its mean cost should scale
        // with c²/k like the plain randomized primitive.
        let mean = |c: usize, k: usize| -> f64 {
            let trials = 60;
            let mut total = 0u64;
            for seed in 0..trials {
                let model = StaticChannels::global(shared_core(2, c, k).unwrap());
                let run = run_acquainted(model, seed, 10_000_000, 0).unwrap();
                total += run.acquainted_slot.unwrap();
            }
            total as f64 / trials as f64
        };
        let small = mean(4, 2);
        let large = mean(8, 2);
        assert!(
            large > small * 1.8,
            "4x the c²/k should clearly cost more: {small} vs {large}"
        );
    }

    #[test]
    fn rejects_local_labels_and_wrong_n() {
        let model = StaticChannels::local(shared_core(2, 4, 2).unwrap(), 0);
        assert!(run_acquainted(model, 0, 10, 0).is_err());
        let model = StaticChannels::global(shared_core(3, 4, 2).unwrap());
        assert!(run_acquainted(model, 0, 10, 0).is_err());
    }
}
