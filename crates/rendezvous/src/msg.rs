//! Wire messages for the baseline protocols.

use crn_sim::NodeId;
use serde::{Deserialize, Serialize};

/// Messages of the rendezvous-aggregation baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BaselineMsg<V> {
    /// A sender hands its value to the source.
    Value {
        /// The sending node.
        id: NodeId,
        /// Its value.
        v: V,
    },
    /// The source acknowledges the sender it just heard.
    Ack {
        /// The acknowledged sender.
        id: NodeId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_compare_by_content() {
        let a: BaselineMsg<u32> = BaselineMsg::Ack { id: NodeId(1) };
        assert_eq!(a, BaselineMsg::Ack { id: NodeId(1) });
        assert_ne!(a, BaselineMsg::Ack { id: NodeId(2) });
    }
}
