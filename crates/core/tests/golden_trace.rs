//! Golden-trace regression: a fixed COGCAST configuration's complete
//! per-slot physical-layer behavior, folded into one digest.
//!
//! The digest covers every field of every [`crn_sim::SlotActivity`] —
//! channel ids, broadcaster sets, winners, listener sets, sleeper and
//! jam counts — so *any* change to the engine's slot resolution, to the
//! RNG algorithm or stream derivation, or to COGCAST's decision logic
//! flips the constant. That turns silent behavioral drift into a
//! deliberate, reviewed update of one number.
//!
//! If this test fails after an intentional change (e.g. swapping the
//! generator behind `SimRng`), re-run with the printed digest, confirm
//! the experiment-level results still make sense, and update both this
//! constant and the known-answer constants in `crn_sim::rng`.

use crn_core::bounds;
use crn_core::cogcast::CogCast;
use crn_jamming::{JammerStrategy, UniformJammer};
use crn_sim::assignment::shared_core;
use crn_sim::channel_model::{DynamicSharedCore, StaticChannels};
use crn_sim::{ChannelModel, Network, TraceDigest};

/// The fixed scenario: n = 24 nodes, C = 13 global channels, c = 6
/// local channels with pairwise overlap k = 3, local labels, master
/// seed 42.
fn golden_net() -> Network<(), CogCast<()>, StaticChannels> {
    let n = 24;
    let assignment = shared_core(n, 6, 3).expect("valid shape");
    let model = StaticChannels::local(assignment, 42);
    let mut protos = Vec::with_capacity(n);
    protos.push(CogCast::source(()));
    protos.extend((1..n).map(|_| CogCast::node()));
    Network::new(model, protos, 42).expect("construct")
}

#[test]
fn golden_cogcast_trace_digest() {
    let mut net = golden_net();
    let budget = bounds::cogcast_slots(24, 6, 3, bounds::DEFAULT_ALPHA);
    let mut digest = TraceDigest::new();
    let mut slots_run = 0u64;
    for _ in 0..budget {
        digest.record(net.step());
        slots_run += 1;
        if net.protocols().iter().all(|p| p.is_informed()) {
            break;
        }
    }
    assert!(
        net.protocols().iter().all(|p| p.is_informed()),
        "golden run must complete within the Theorem 4 budget ({budget})"
    );
    // Pin the slot count first: a digest mismatch with an equal slot
    // count points at slot *content*; a different slot count points at
    // protocol progress itself.
    assert_eq!(
        slots_run,
        8,
        "golden run length changed (digest {:#018x})",
        digest.finish()
    );
    assert_eq!(
        digest.finish(),
        0x279f_38a0_b5f3_4b08,
        "golden trace digest changed after {slots_run} slots"
    );
}

/// Drives `net` to full information within `budget`, folding every slot
/// into a digest and conformance-checking each slot as it executes;
/// returns `(slots_run, digest)`.
fn run_informed<CM: ChannelModel>(
    net: &mut Network<(), CogCast<()>, CM>,
    seed: u64,
    budget: u64,
) -> (u64, u64) {
    let mut digest = TraceDigest::new();
    let mut trace = Vec::new();
    let mut slots_run = 0u64;
    for _ in 0..budget {
        trace.push(net.step().clone());
        digest.record(net.last_activity());
        let violations = net.check_conformance();
        assert!(
            violations.is_empty(),
            "slot {slots_run} violates the model contract: {violations:?}"
        );
        slots_run += 1;
        if net.protocols().iter().all(|p| p.is_informed()) {
            break;
        }
    }
    assert!(
        net.protocols().iter().all(|p| p.is_informed()),
        "golden run must complete within the budget ({budget})"
    );
    assert_eq!(
        crn_sim::replay_winners(seed, &trace),
        vec![],
        "recorded winners must match an independent ENGINE-stream replay"
    );
    (slots_run, digest.finish())
}

/// The jammed scenario of Theorem 18: the same shape as the plain
/// golden run but over `full_overlap` channels (the jammer masks the
/// global space directly) with a random n-uniform jammer of budget 2,
/// so `c − 2k = 8 − 4 = 4` effective channels remain per pair.
#[test]
fn golden_jammed_trace_digest() {
    let n = 24;
    let (c, jam_k) = (8, 2);
    let assignment = crn_sim::assignment::full_overlap(n, c).expect("valid shape");
    let model = StaticChannels::local(assignment, 42);
    let mut protos = Vec::with_capacity(n);
    protos.push(CogCast::source(()));
    protos.extend((1..n).map(|_| CogCast::node()));
    let jammer = UniformJammer::new(n, c, jam_k, JammerStrategy::Random);
    let mut net =
        Network::with_interference(model, protos, 42, Box::new(jammer)).expect("construct");
    let budget = crn_jamming::jammed_budget(n, c, jam_k, 60.0);
    let (slots_run, digest) = run_informed(&mut net, 42, budget);
    assert_eq!(
        slots_run, 6,
        "jammed golden run length changed (digest {digest:#018x})"
    );
    assert_eq!(
        digest, 0xc510_f8d7_d599_293c,
        "jammed golden trace digest changed after {slots_run} slots"
    );
}

/// The churned scenario: a `DynamicSharedCore` redraws each node's
/// non-core channels with probability 0.5 per slot, so channel sets
/// (and labels) shift under COGCAST while the k-core keeps every pair
/// overlapping.
#[test]
fn golden_churned_trace_digest() {
    let n = 24;
    let model = DynamicSharedCore::new(n, 6, 3, 30, 0.5, 42).expect("valid shape");
    let mut protos = Vec::with_capacity(n);
    protos.push(CogCast::source(()));
    protos.extend((1..n).map(|_| CogCast::node()));
    let mut net = Network::new(model, protos, 42).expect("construct");
    let budget = bounds::cogcast_slots(24, 6, 3, bounds::DEFAULT_ALPHA);
    let (slots_run, digest) = run_informed(&mut net, 42, budget);
    assert_eq!(
        slots_run, 5,
        "churned golden run length changed (digest {digest:#018x})"
    );
    assert_eq!(
        digest, 0xe848_edf3_85c4_d889,
        "churned golden trace digest changed after {slots_run} slots"
    );
}

#[test]
fn golden_trace_digest_is_reproducible() {
    // Two independent constructions of the same configuration must give
    // the same digest — the golden constant pins a function of the
    // seed, not of incidental process state.
    let run = |_: u32| {
        let mut net = golden_net();
        let mut digest = TraceDigest::new();
        for _ in 0..256 {
            digest.record(net.step());
        }
        digest.finish()
    };
    assert_eq!(run(0), run(1));
}
