//! Golden-trace regression: a fixed COGCAST configuration's complete
//! per-slot physical-layer behavior, folded into one digest.
//!
//! The digest covers every field of every [`crn_sim::SlotActivity`] —
//! channel ids, broadcaster sets, winners, listener sets, sleeper and
//! jam counts — so *any* change to the engine's slot resolution, to the
//! RNG algorithm or stream derivation, or to COGCAST's decision logic
//! flips the constant. That turns silent behavioral drift into a
//! deliberate, reviewed update of one number.
//!
//! If this test fails after an intentional change (e.g. swapping the
//! generator behind `SimRng`), re-run with the printed digest, confirm
//! the experiment-level results still make sense, and update both this
//! constant and the known-answer constants in `crn_sim::rng`.

use crn_core::bounds;
use crn_core::cogcast::CogCast;
use crn_sim::assignment::shared_core;
use crn_sim::channel_model::StaticChannels;
use crn_sim::{Network, TraceDigest};

/// The fixed scenario: n = 24 nodes, C = 13 global channels, c = 6
/// local channels with pairwise overlap k = 3, local labels, master
/// seed 42.
fn golden_net() -> Network<(), CogCast<()>, StaticChannels> {
    let n = 24;
    let assignment = shared_core(n, 6, 3).expect("valid shape");
    let model = StaticChannels::local(assignment, 42);
    let mut protos = Vec::with_capacity(n);
    protos.push(CogCast::source(()));
    protos.extend((1..n).map(|_| CogCast::node()));
    Network::new(model, protos, 42).expect("construct")
}

#[test]
fn golden_cogcast_trace_digest() {
    let mut net = golden_net();
    let budget = bounds::cogcast_slots(24, 6, 3, bounds::DEFAULT_ALPHA);
    let mut digest = TraceDigest::new();
    let mut slots_run = 0u64;
    for _ in 0..budget {
        digest.record(net.step());
        slots_run += 1;
        if net.protocols().iter().all(|p| p.is_informed()) {
            break;
        }
    }
    assert!(
        net.protocols().iter().all(|p| p.is_informed()),
        "golden run must complete within the Theorem 4 budget ({budget})"
    );
    // Pin the slot count first: a digest mismatch with an equal slot
    // count points at slot *content*; a different slot count points at
    // protocol progress itself.
    assert_eq!(
        slots_run,
        8,
        "golden run length changed (digest {:#018x})",
        digest.finish()
    );
    assert_eq!(
        digest.finish(),
        0x279f_38a0_b5f3_4b08,
        "golden trace digest changed after {slots_run} slots"
    );
}

#[test]
fn golden_trace_digest_is_reproducible() {
    // Two independent constructions of the same configuration must give
    // the same digest — the golden constant pins a function of the
    // seed, not of incidental process state.
    let run = |_: u32| {
        let mut net = golden_net();
        let mut digest = TraceDigest::new();
        for _ in 0..256 {
            digest.record(net.step());
        }
        digest.finish()
    };
    assert_eq!(run(0), run(1));
}
