//! Property-based end-to-end verification of COGCOMP: for arbitrary
//! model shapes, overlap patterns and seeds, aggregation must complete
//! within the Theorem 10 budget and deliver every node's value to the
//! source exactly once.

use crn_core::aggregate::{Collect, Sum};
use crn_core::bounds;
use crn_core::cogcomp::{run_aggregation, run_aggregation_cfg, CogCompConfig, Coordination};
use crn_sim::assignment::OverlapPattern;
use crn_sim::channel_model::StaticChannels;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pattern_strategy() -> impl Strategy<Value = OverlapPattern> {
    proptest::sample::select(OverlapPattern::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn cogcomp_is_exact_for_arbitrary_shapes(
        n in 2usize..28,
        c in 2usize..9,
        k_off in 0usize..9,
        pattern in pattern_strategy(),
        seed in 0u64..10_000,
    ) {
        let k = 1 + k_off % c;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A5A);
        let assignment = pattern.generate(n, c, k, &mut rng).expect("valid shape");
        let model = StaticChannels::local(assignment, seed);
        let values: Vec<Collect> = (0..n as u64).map(Collect::of).collect();
        let run = run_aggregation(model, values, seed, bounds::DEFAULT_ALPHA).expect("construct");
        prop_assert!(
            run.is_complete(),
            "timed out: n={n} c={c} k={k} pattern={} seed={seed}",
            pattern.name()
        );
        let expect: Vec<u64> = (0..n as u64).collect();
        prop_assert_eq!(
            run.result.as_ref().expect("complete").values(),
            expect.as_slice(),
            "lost/duplicated values: n={}, c={}, k={}, pattern={}, seed={}",
            n, c, k, pattern.name(), seed
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn uncoordinated_ablation_is_also_exact(
        n in 2usize..20,
        c in 2usize..7,
        k_off in 0usize..7,
        seed in 0u64..10_000,
    ) {
        let k = 1 + k_off % c;
        let assignment = crn_sim::assignment::shared_core(n, c, k).expect("valid");
        let model = StaticChannels::local(assignment, seed);
        let cfg = CogCompConfig::new(n, c, k, bounds::DEFAULT_ALPHA)
            .with_coordination(Coordination::Uncoordinated);
        let budget = cfg.phase4_start() + 3 * (n as u64 * n as u64 + 128);
        let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
        let run = run_aggregation_cfg(model, values, seed, cfg, budget).expect("construct");
        prop_assert!(run.is_complete(), "n={n} c={c} k={k} seed={seed}");
        prop_assert_eq!(run.result, Some(Sum((0..n as u64).sum())));
    }
}
