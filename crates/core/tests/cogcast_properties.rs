//! Property-based end-to-end verification of COGCAST: for arbitrary
//! model shapes, patterns, label models and seeds, broadcast completes
//! within the Theorem 4 budget and the informed-by pointers always
//! form a valid distribution tree.

use crn_core::bounds;
use crn_core::cogcast::{run_broadcast, CogCast};
use crn_core::tree::DistributionTree;
use crn_sim::assignment::OverlapPattern;
use crn_sim::channel_model::StaticChannels;
use crn_sim::Network;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pattern_strategy() -> impl Strategy<Value = OverlapPattern> {
    proptest::sample::select(OverlapPattern::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn cogcast_completes_within_budget(
        n in 1usize..40,
        c in 1usize..10,
        k_off in 0usize..10,
        pattern in pattern_strategy(),
        global_labels: bool,
        seed in 0u64..10_000,
    ) {
        let k = 1 + k_off % c;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0C0);
        let assignment = pattern.generate(n, c, k, &mut rng).expect("valid shape");
        let model = if global_labels {
            StaticChannels::global(assignment)
        } else {
            StaticChannels::local(assignment, seed)
        };
        // "With high probability" is w.h.p. *in n*: at tiny n the
        // guarantee is only constant-probability per alpha factor, so
        // the property uses 4x the Theorem 4 budget to push the tail
        // below proptest's resolution (e.g. n=2, c=k=3 misses the 1x
        // budget with probability (2/3)^15 ≈ 0.2%).
        let budget = 4 * bounds::cogcast_slots(n, c, k, bounds::DEFAULT_ALPHA);
        let run = run_broadcast(model, seed, budget).expect("construct");
        prop_assert!(
            run.completed(),
            "missed budget {budget}: n={n} c={c} k={k} pattern={} global={global_labels} seed={seed}",
            pattern.name()
        );
        // The epidemic curve is monotone and ends at n.
        for w in run.informed_per_slot.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(*run.informed_per_slot.last().expect("non-empty"), n);
    }
}

/// Pinned replay of the checked-in proptest regression
/// (`cogcast_properties.proptest-regressions`): `n = 2, c = 3,
/// k_off = 2, pattern = FullOverlap, global_labels = false,
/// seed = 7537`.
///
/// The failure it recorded was a deterministic never-meet: with two
/// fully-overlapping nodes on 3 channels, correlated per-node RNG
/// streams kept source and listener permanently on distinct channels,
/// so the run missed even the 4x Theorem 4 budget (a correct engine
/// misses it with probability (2/3)^60 ≈ 3e-11). Node streams are now
/// derived through independent SplitMix64-mixed streams
/// (`crn_sim::rng::derive_rng`), and this exact configuration must
/// complete. It is pinned as a plain unit test because the offline
/// proptest runner does not replay `proptest-regressions` files — see
/// `vendor/proptest/src/lib.rs`.
#[test]
fn regression_full_overlap_local_labels_n2_c3_seed7537() {
    let (n, c, k_off, seed) = (2usize, 3usize, 2usize, 7537u64);
    let k = 1 + k_off % c;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0C0);
    let assignment = OverlapPattern::FullOverlap
        .generate(n, c, k, &mut rng)
        .expect("valid shape");
    let model = StaticChannels::local(assignment, seed);
    let budget = 4 * bounds::cogcast_slots(n, c, k, bounds::DEFAULT_ALPHA);
    let run = run_broadcast(model, seed, budget).expect("construct");
    assert!(run.completed(), "regression case missed budget {budget}");
    for w in run.informed_per_slot.windows(2) {
        assert!(w[0] <= w[1], "epidemic curve must be monotone");
    }
    assert_eq!(*run.informed_per_slot.last().expect("non-empty"), n);
}

/// The same regression shape swept across many seeds: the per-slot
/// meet probability for two fully-overlapping nodes on c = 3 channels
/// is 1/3, so any stream-correlation defect that recreates a
/// never-meet pair shows up as a budget miss here long before it
/// reappears in the sampled property above.
#[test]
fn regression_shape_completes_across_seed_sweep() {
    let (n, c, k) = (2usize, 3usize, 3usize);
    let budget = 4 * bounds::cogcast_slots(n, c, k, bounds::DEFAULT_ALPHA);
    for seed in 0..500u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0C0);
        let assignment = OverlapPattern::FullOverlap
            .generate(n, c, k, &mut rng)
            .expect("valid shape");
        let model = StaticChannels::local(assignment, seed);
        let run = run_broadcast(model, seed, budget).expect("construct");
        assert!(run.completed(), "seed {seed} missed budget {budget}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn informed_pointers_always_form_a_tree(
        n in 2usize..32,
        c in 2usize..8,
        k_off in 0usize..8,
        seed in 0u64..10_000,
    ) {
        let k = 1 + k_off % c;
        let assignment = crn_sim::assignment::shared_core(n, c, k).expect("valid");
        let model = StaticChannels::local(assignment, seed);
        let mut protos = vec![CogCast::source(0u8)];
        protos.extend((1..n).map(|_| CogCast::node()));
        let mut net = Network::new(model, protos, seed).expect("construct");
        let outcome = net.run(10_000_000, |net| net.all_done());
        prop_assert!(outcome.is_done());
        let protos = net.into_protocols();
        let tree = DistributionTree::from_cogcast(&protos).expect("valid tree");
        prop_assert_eq!(tree.subtree_size(tree.root()), n);
        prop_assert_eq!(
            (0..n).map(|i| tree.children(crn_sim::NodeId(i as u32)).len()).sum::<usize>(),
            n - 1
        );
    }
}
