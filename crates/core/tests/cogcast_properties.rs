//! Property-based end-to-end verification of COGCAST: for arbitrary
//! model shapes, patterns, label models and seeds, broadcast completes
//! within the Theorem 4 budget and the informed-by pointers always
//! form a valid distribution tree.

use crn_core::bounds;
use crn_core::cogcast::{run_broadcast, CogCast};
use crn_core::tree::DistributionTree;
use crn_sim::assignment::OverlapPattern;
use crn_sim::channel_model::StaticChannels;
use crn_sim::Network;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pattern_strategy() -> impl Strategy<Value = OverlapPattern> {
    proptest::sample::select(OverlapPattern::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn cogcast_completes_within_budget(
        n in 1usize..40,
        c in 1usize..10,
        k_off in 0usize..10,
        pattern in pattern_strategy(),
        global_labels: bool,
        seed in 0u64..10_000,
    ) {
        let k = 1 + k_off % c;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0C0);
        let assignment = pattern.generate(n, c, k, &mut rng).expect("valid shape");
        let model = if global_labels {
            StaticChannels::global(assignment)
        } else {
            StaticChannels::local(assignment, seed)
        };
        // "With high probability" is w.h.p. *in n*: at tiny n the
        // guarantee is only constant-probability per alpha factor, so
        // the property uses 4x the Theorem 4 budget to push the tail
        // below proptest's resolution (e.g. n=2, c=k=3 misses the 1x
        // budget with probability (2/3)^15 ≈ 0.2%).
        let budget = 4 * bounds::cogcast_slots(n, c, k, bounds::DEFAULT_ALPHA);
        let run = run_broadcast(model, seed, budget).expect("construct");
        prop_assert!(
            run.completed(),
            "missed budget {budget}: n={n} c={c} k={k} pattern={} global={global_labels} seed={seed}",
            pattern.name()
        );
        // The epidemic curve is monotone and ends at n.
        for w in run.informed_per_slot.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(*run.informed_per_slot.last().expect("non-empty"), n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn informed_pointers_always_form_a_tree(
        n in 2usize..32,
        c in 2usize..8,
        k_off in 0usize..8,
        seed in 0u64..10_000,
    ) {
        let k = 1 + k_off % c;
        let assignment = crn_sim::assignment::shared_core(n, c, k).expect("valid");
        let model = StaticChannels::local(assignment, seed);
        let mut protos = vec![CogCast::source(0u8)];
        protos.extend((1..n).map(|_| CogCast::node()));
        let mut net = Network::new(model, protos, seed).expect("construct");
        let outcome = net.run(10_000_000, |net| net.all_done());
        prop_assert!(outcome.is_done());
        let protos = net.into_protocols();
        let tree = DistributionTree::from_cogcast(&protos).expect("valid tree");
        prop_assert_eq!(tree.subtree_size(tree.root()), n);
        prop_assert_eq!(
            (0..n).map(|i| tree.children(crn_sim::NodeId(i as u32)).len()).sum::<usize>(),
            n - 1
        );
    }
}
