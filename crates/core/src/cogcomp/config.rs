//! COGCOMP run configuration and the global phase schedule.
//!
//! All four phases run on a schedule every node can compute locally from
//! `(n, c, k)` and the chosen COGCAST constant: phase one takes `l =`
//! [`crate::bounds::cogcast_slots`] slots, phase two exactly `n`, phase
//! three exactly `l` (the rewind), and phase four runs in 3-slot steps
//! until the node terminates.

use crate::bounds;
use serde::{Deserialize, Serialize};

/// Which phase a slot belongs to, with the offset inside the phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseAt {
    /// Phase one (COGCAST tree building); offset is the phase-1 slot.
    One(u64),
    /// Phase two (cluster census); offset in `0..n`.
    Two(u64),
    /// Phase three (the rewind); offset in `0..l`.
    Three(u64),
    /// Phase four; `step` counts 3-slot steps, `sub` is the slot within
    /// the step (0 = announce, 1 = value, 2 = ack).
    Four {
        /// Step index, starting at 0.
        step: u64,
        /// Slot within the step: 0, 1 or 2.
        sub: u8,
    },
}

/// Whether phase four uses the paper's mediator coordination.
///
/// The paper introduces per-channel *mediators* precisely because
/// uncoordinated senders "might imagine being delayed by `Θ(n/c)`
/// time at each level of the distribution tree" (Section 5 overview).
/// [`Coordination::Uncoordinated`] is the ablation that removes the
/// announce gating so that penalty can be measured (experiment A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Coordination {
    /// The paper's protocol: mediators announce which cluster may send.
    #[default]
    Mediated,
    /// Ablation: every ready sender contends every step; receivers
    /// still ack only their current cluster.
    Uncoordinated,
}

/// Static parameters of a COGCOMP execution, shared by all nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CogCompConfig {
    /// Number of nodes.
    pub n: usize,
    /// Channels per node.
    pub c: usize,
    /// Pairwise overlap guarantee.
    pub k: usize,
    /// Length `l` of phase one in slots.
    pub phase1_slots: u64,
    /// Phase-four coordination mode (the paper's mediators by default).
    pub coordination: Coordination,
    /// Number of aggregation rounds sharing one distribution tree:
    /// phases one–three run once, then phase four repeats `rounds`
    /// times in fixed windows of [`CogCompConfig::round_steps`] steps
    /// with fresh per-round values (amortized repeated aggregation).
    pub rounds: u32,
}

impl CogCompConfig {
    /// Builds a configuration sizing phase one by Theorem 4 with the
    /// given constant `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `k == 0` or `k > c` (via
    /// [`bounds::cogcast_slots`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use crn_core::cogcomp::CogCompConfig;
    /// let cfg = CogCompConfig::new(64, 8, 2, 10.0);
    /// assert_eq!(cfg.phase2_start(), cfg.phase1_slots);
    /// assert_eq!(cfg.phase3_start(), cfg.phase1_slots + 64);
    /// assert_eq!(cfg.phase4_start(), 2 * cfg.phase1_slots + 64);
    /// ```
    pub fn new(n: usize, c: usize, k: usize, alpha: f64) -> Self {
        CogCompConfig {
            n,
            c,
            k,
            phase1_slots: bounds::cogcast_slots(n, c, k, alpha),
            coordination: Coordination::Mediated,
            rounds: 1,
        }
    }

    /// Returns the configuration with the given phase-four
    /// coordination mode (see [`Coordination`]).
    pub fn with_coordination(mut self, coordination: Coordination) -> Self {
        self.coordination = coordination;
        self
    }

    /// Returns the configuration running `rounds` phase-four rounds
    /// over the same tree (see [`CogCompConfig::rounds`]).
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn with_rounds(mut self, rounds: u32) -> Self {
        assert!(rounds >= 1, "need at least one round");
        self.rounds = rounds;
        self
    }

    /// Phase-four steps reserved per aggregation round: `2n + 32`
    /// (Theorem 10's `O(n)` with headroom). Every node derives round
    /// boundaries from this, so rounds stay globally synchronized.
    pub fn round_steps(&self) -> u64 {
        2 * self.n as u64 + 32
    }

    /// First slot of phase two.
    pub fn phase2_start(&self) -> u64 {
        self.phase1_slots
    }

    /// First slot of phase three.
    pub fn phase3_start(&self) -> u64 {
        self.phase1_slots + self.n as u64
    }

    /// First slot of phase four.
    pub fn phase4_start(&self) -> u64 {
        2 * self.phase1_slots + self.n as u64
    }

    /// Classifies an absolute slot into its phase and offset.
    ///
    /// # Examples
    ///
    /// ```
    /// use crn_core::cogcomp::{CogCompConfig, PhaseAt};
    /// let cfg = CogCompConfig { phase1_slots: 10, ..CogCompConfig::new(4, 2, 1, 1.0) };
    /// assert_eq!(cfg.phase_at(0), PhaseAt::One(0));
    /// assert_eq!(cfg.phase_at(10), PhaseAt::Two(0));
    /// assert_eq!(cfg.phase_at(14), PhaseAt::Three(0));
    /// assert_eq!(cfg.phase_at(24), PhaseAt::Four { step: 0, sub: 0 });
    /// assert_eq!(cfg.phase_at(28), PhaseAt::Four { step: 1, sub: 1 });
    /// ```
    pub fn phase_at(&self, slot: u64) -> PhaseAt {
        let l = self.phase1_slots;
        let n = self.n as u64;
        if slot < l {
            PhaseAt::One(slot)
        } else if slot < l + n {
            PhaseAt::Two(slot - l)
        } else if slot < 2 * l + n {
            PhaseAt::Three(slot - l - n)
        } else {
            let off = slot - (2 * l + n);
            PhaseAt::Four {
                step: off / 3,
                sub: (off % 3) as u8,
            }
        }
    }

    /// A generous overall slot budget: the fixed phases plus
    /// `3·(4n + 32)` phase-four slots per round. Theorem 10 bounds
    /// phase four by `O(n)` steps; the headroom keeps low-probability
    /// stragglers from timing out in experiments.
    pub fn recommended_budget(&self) -> u64 {
        self.phase4_start()
            + 3 * self.round_steps() * self.rounds.max(1) as u64
            + 3 * (2 * self.n as u64 + 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_contiguous() {
        let cfg = CogCompConfig {
            phase1_slots: 7,
            ..CogCompConfig::new(5, 3, 1, 1.0)
        };
        assert_eq!(cfg.phase_at(6), PhaseAt::One(6));
        assert_eq!(cfg.phase_at(7), PhaseAt::Two(0));
        assert_eq!(cfg.phase_at(11), PhaseAt::Two(4));
        assert_eq!(cfg.phase_at(12), PhaseAt::Three(0));
        assert_eq!(cfg.phase_at(18), PhaseAt::Three(6));
        assert_eq!(cfg.phase_at(19), PhaseAt::Four { step: 0, sub: 0 });
        assert_eq!(cfg.phase_at(20), PhaseAt::Four { step: 0, sub: 1 });
        assert_eq!(cfg.phase_at(21), PhaseAt::Four { step: 0, sub: 2 });
        assert_eq!(cfg.phase_at(22), PhaseAt::Four { step: 1, sub: 0 });
    }

    #[test]
    fn new_uses_theorem4_budget() {
        let cfg = CogCompConfig::new(100, 10, 2, 3.0);
        assert_eq!(cfg.phase1_slots, bounds::cogcast_slots(100, 10, 2, 3.0));
    }

    #[test]
    fn budget_covers_all_phases() {
        let cfg = CogCompConfig::new(20, 4, 2, 5.0);
        assert!(cfg.recommended_budget() > cfg.phase4_start());
        assert!(cfg.recommended_budget() >= cfg.phase4_start() + 3 * 20);
    }
}
