//! The COGCOMP wire messages.
//!
//! One message type covers all four phases; each phase only ever sends
//! (and expects) its own variants, and the tests assert that cross-phase
//! variants are ignored rather than misinterpreted.

use crn_sim::NodeId;
use serde::{Deserialize, Serialize};

/// Messages exchanged by COGCOMP nodes.
///
/// `r` fields are *absolute phase-one slot indices* (0-based); together
/// with the physical channel they name an `(r, c)`-cluster (Definition 6
/// of the paper). The channel never appears in messages because a
/// message is only ever heard *on* its channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CogCompMsg<V> {
    /// Phase 1: the source's initiation message, flooded by COGCAST.
    Init,
    /// Phase 2: a cluster-census beacon: "I am `id`, informed in slot
    /// `r` (on this channel)".
    Census {
        /// The beaconing node.
        id: NodeId,
        /// The slot it was first informed in.
        r: u64,
    },
    /// Phase 3 (the rewind): a cluster reports its size to its informer.
    ClusterSize {
        /// The cluster's informed slot (sanity echo of the rewind slot).
        r: u64,
        /// Number of nodes in the cluster.
        size: u32,
    },
    /// Phase 4 slot 1: the channel mediator schedules cluster `r` to
    /// send in the next slot.
    Announce {
        /// The cluster whose turn it is.
        r: u64,
    },
    /// Phase 4 slot 2: a sender passes its folded subtree value to its
    /// parent.
    Value {
        /// The sending node.
        id: NodeId,
        /// The sender's cluster slot (so the receiver can match it).
        r: u64,
        /// The sender's value merged with all of its descendants'.
        agg: V,
    },
    /// Phase 4 slot 3: the receiver confirms whose value it just took.
    Ack {
        /// The sender being acknowledged.
        id: NodeId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_compare_by_content() {
        let a: CogCompMsg<u32> = CogCompMsg::Census {
            id: NodeId(1),
            r: 5,
        };
        let b = CogCompMsg::Census {
            id: NodeId(1),
            r: 5,
        };
        assert_eq!(a, b);
        assert_ne!(
            a,
            CogCompMsg::Census {
                id: NodeId(2),
                r: 5
            }
        );
        assert_ne!(a, CogCompMsg::Init);
    }

    #[test]
    fn value_carries_aggregate() {
        let m = CogCompMsg::Value {
            id: NodeId(3),
            r: 9,
            agg: 41u32,
        };
        match m {
            CogCompMsg::Value { agg, .. } => assert_eq!(agg, 41),
            _ => unreachable!(),
        }
    }
}
