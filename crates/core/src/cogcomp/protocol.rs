//! The COGCOMP per-node state machine (Section 5 of the paper).
//!
//! The four phases run on the globally-known schedule of
//! [`CogCompConfig`]:
//!
//! 1. **Phase one** — COGCAST floods `Init`, with every action recorded.
//!    Each node's first reception fixes its parent and its
//!    `(r, c)`-cluster (slot and channel of first reception).
//! 2. **Phase two** (`n` slots) — every informed node beacons
//!    `⟨id, r⟩` on its informing channel until its beacon wins the
//!    channel, then keeps listening. Afterwards every node knows its
//!    cluster's size, and the smallest-id node of the *latest* cluster
//!    on each channel knows it is that channel's mediator (Lemma 7).
//! 3. **Phase three** (`l` slots) — phase one replayed backwards: in the
//!    rewind of slot `r`, the nodes first informed at `r` broadcast their
//!    cluster size while their informer listens; silence tells a
//!    would-be informer that its success informed nobody (Lemma 9).
//! 4. **Phase four** — 3-slot steps (mediator announce → cluster value →
//!    receiver ack) until all values have climbed the tree (Theorem 10).

use super::config::{CogCompConfig, PhaseAt};
use super::msg::CogCompMsg;
use crate::aggregate::Aggregate;
use crate::cogcast::{Informed, SlotRecord};
use crn_sim::rng::SimRng;
use crn_sim::{Action, Event, LocalChannel, NodeCtx, NodeId, Protocol};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// The role a node holds for the duration of one phase-four step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepRole {
    /// Collecting values from the current cluster it informed.
    Receiver,
    /// Waiting to pass its folded value to its parent.
    Sender,
    /// Channel mediator (active once its own collection is finished);
    /// also sends its own value when its cluster is announced.
    Mediator,
    /// Terminated (or never informed).
    Idle,
}

/// A cluster this node informed, discovered during phase three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ClusterRef {
    /// The phase-one slot the cluster was informed in.
    r: u64,
    /// This node's local label for the cluster's channel.
    channel: LocalChannel,
    /// Number of nodes in the cluster.
    size: u32,
}

/// Mediator bookkeeping for one channel.
#[derive(Debug, Clone)]
struct MediatorState {
    /// The mediator's local label for its channel.
    channel: LocalChannel,
    /// `(r, size)` of every cluster informed on the channel, in
    /// descending `r` (the processing order).
    clusters: Vec<(u64, u32)>,
    /// Index of the cluster currently being aggregated.
    idx: usize,
    /// Senders of the current cluster already acknowledged.
    acked: BTreeSet<NodeId>,
}

/// The COGCOMP protocol instance for one node.
///
/// Construct the source with [`CogComp::source`] and all other nodes
/// with [`CogComp::node`], hand the instances to a
/// [`crn_sim::Network`] carrying
/// [`CogCompMsg<V>`] messages, and run until
/// [`Protocol::is_done`] holds everywhere (see
/// [`super::run_aggregation`] for a one-call driver).
#[derive(Debug, Clone)]
pub struct CogComp<V> {
    cfg: CogCompConfig,
    is_source: bool,
    /// Per-round own values (length `cfg.rounds`).
    values: Vec<V>,
    /// Own value merged with every descendant value collected so far
    /// (current round).
    acc: V,
    /// The phase-four round currently executing.
    round: u64,
    /// True once the current round's duties are finished.
    round_done: bool,
    /// Source only: per finalized round, the aggregate (or `None` if
    /// the round missed its window).
    results: Vec<Option<V>>,
    // --- phase one ---
    informed: Option<Informed>,
    p1_records: Vec<SlotRecord>,
    pending_channel: LocalChannel,
    // --- phase two ---
    phase2_ready: bool,
    census_sent: bool,
    /// All censuses heard on this node's informing channel: `r` → ids.
    channel_census: BTreeMap<u64, BTreeSet<NodeId>>,
    // --- phase three ---
    phase3_ready: bool,
    cluster_size: u32,
    mediator: Option<MediatorState>,
    rewind_slot: Option<u64>,
    informer_clusters: Vec<ClusterRef>,
    // --- phase four ---
    phase4_ready: bool,
    step_role: StepRole,
    collect_idx: usize,
    collected: BTreeSet<NodeId>,
    pending_ack: Option<NodeId>,
    delivered_mine: bool,
    heard_announce: Option<u64>,
    done: bool,
    failed: bool,
}

impl<V: Aggregate> CogComp<V> {
    fn new(cfg: CogCompConfig, values: Vec<V>, is_source: bool) -> Self {
        assert_eq!(
            values.len(),
            cfg.rounds as usize,
            "need one value per round ({} values for {} rounds)",
            values.len(),
            cfg.rounds
        );
        let acc = values[0].clone();
        CogComp {
            cfg,
            is_source,
            values,
            round: 0,
            round_done: false,
            results: Vec::new(),
            acc,
            informed: None,
            p1_records: Vec::with_capacity(cfg.phase1_slots as usize),
            pending_channel: LocalChannel(0),
            phase2_ready: false,
            census_sent: false,
            channel_census: BTreeMap::new(),
            phase3_ready: false,
            cluster_size: 1,
            mediator: None,
            rewind_slot: None,
            informer_clusters: Vec::new(),
            phase4_ready: false,
            step_role: StepRole::Idle,
            collect_idx: 0,
            collected: BTreeSet::new(),
            pending_ack: None,
            delivered_mine: false,
            heard_announce: None,
            done: false,
            failed: false,
        }
    }

    /// Creates the designated source (tree root) holding `value` (the
    /// same value in every round when `cfg.rounds > 1`).
    pub fn source(cfg: CogCompConfig, value: V) -> Self {
        Self::new(cfg, vec![value; cfg.rounds as usize], true)
    }

    /// Creates a non-source node holding `value` (repeated per round).
    pub fn node(cfg: CogCompConfig, value: V) -> Self {
        Self::new(cfg, vec![value; cfg.rounds as usize], false)
    }

    /// Creates the source with one value per round.
    ///
    /// # Panics
    ///
    /// Panics unless `values.len() == cfg.rounds`.
    pub fn source_with_values(cfg: CogCompConfig, values: Vec<V>) -> Self {
        Self::new(cfg, values, true)
    }

    /// Creates a non-source node with one value per round.
    ///
    /// # Panics
    ///
    /// Panics unless `values.len() == cfg.rounds`.
    pub fn node_with_values(cfg: CogCompConfig, values: Vec<V>) -> Self {
        Self::new(cfg, values, false)
    }

    /// The configuration this node runs under.
    pub fn config(&self) -> &CogCompConfig {
        &self.cfg
    }

    /// True for the designated source.
    pub fn is_source(&self) -> bool {
        self.is_source
    }

    /// True once the node knows the `Init` message (always true for the
    /// source).
    pub fn knows_init(&self) -> bool {
        self.is_source || self.informed.is_some()
    }

    /// How this node was first informed (its tree position), if it was.
    pub fn informed(&self) -> Option<Informed> {
        self.informed
    }

    /// The aggregated value: own value merged with every collected
    /// descendant. On the source after termination this is the network
    /// aggregate; [`CogComp::result`] gates on that.
    pub fn aggregate(&self) -> &V {
        &self.acc
    }

    /// The final aggregate — `Some` only on the source after it has
    /// terminated (for multi-round configs: the last round's result).
    pub fn result(&self) -> Option<&V> {
        (self.is_source && self.done && !self.failed).then_some(&self.acc)
    }

    /// Source only: one entry per finalized round — the round's
    /// aggregate, or `None` if the round missed its step window.
    pub fn round_results(&self) -> &[Option<V>] {
        &self.results
    }

    /// The phase-four round currently executing (0-based).
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// The size of this node's cluster as counted in phase two
    /// (including itself; 1 until phase two runs).
    pub fn cluster_size(&self) -> u32 {
        self.cluster_size
    }

    /// True if this node was elected mediator of its channel.
    pub fn is_mediator(&self) -> bool {
        self.mediator.is_some()
    }

    /// Number of (non-empty) clusters this node informed.
    pub fn informer_cluster_count(&self) -> usize {
        self.informer_clusters.len()
    }

    /// True if the node reached phase four without ever hearing `Init`
    /// (a low-probability COGCAST failure; the node then abstains).
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    // ------------------------------------------------------------------
    // Phase one: COGCAST with recording.
    // ------------------------------------------------------------------

    fn decide_phase1(&mut self, ctx: &NodeCtx<'_>, rng: &mut SimRng) -> Action<CogCompMsg<V>> {
        // Keep the record slot-aligned across missed slots (fault
        // windows suppress decide; the rewind indexes by absolute
        // phase-one slot).
        while (self.p1_records.len() as u64) < ctx.slot {
            self.p1_records.push(SlotRecord::Idle);
        }
        let ch = LocalChannel(rng.gen_range(0..ctx.c as u32));
        self.pending_channel = ch;
        if self.knows_init() {
            Action::Broadcast(ch, CogCompMsg::Init)
        } else {
            Action::Listen(ch)
        }
    }

    fn observe_phase1(&mut self, ctx: &NodeCtx<'_>, event: Event<CogCompMsg<V>>) {
        let ch = self.pending_channel;
        let record = match event {
            Event::Received { from, .. } => {
                let first = !self.knows_init();
                if first {
                    self.informed = Some(Informed {
                        from,
                        slot: ctx.slot,
                        channel: ch,
                    });
                }
                SlotRecord::Listen {
                    channel: ch,
                    informed: first,
                }
            }
            Event::Delivered => SlotRecord::Broadcast {
                channel: ch,
                delivered: true,
            },
            Event::Lost { .. } => SlotRecord::Broadcast {
                channel: ch,
                delivered: false,
            },
            Event::Silence | Event::Jammed => {
                if self.knows_init() {
                    SlotRecord::Broadcast {
                        channel: ch,
                        delivered: false,
                    }
                } else {
                    SlotRecord::Listen {
                        channel: ch,
                        informed: false,
                    }
                }
            }
        };
        self.p1_records.push(record);
    }

    // ------------------------------------------------------------------
    // Phase two: cluster census and mediator election.
    // ------------------------------------------------------------------

    fn decide_phase2(&mut self, ctx: &NodeCtx<'_>) -> Action<CogCompMsg<V>> {
        if !self.phase2_ready {
            self.phase2_ready = true;
            if let Some(info) = self.informed {
                // Count ourselves (the paper's "counter initially set to
                // one").
                self.channel_census
                    .entry(info.slot)
                    .or_default()
                    .insert(ctx.id);
            }
        }
        let Some(info) = self.informed else {
            // The source (and any failed node) sits phase two out.
            return Action::Sleep;
        };
        if self.census_sent {
            Action::Listen(info.channel)
        } else {
            Action::Broadcast(
                info.channel,
                CogCompMsg::Census {
                    id: ctx.id,
                    r: info.slot,
                },
            )
        }
    }

    fn observe_phase2(&mut self, event: Event<CogCompMsg<V>>) {
        match event {
            Event::Delivered => self.census_sent = true,
            Event::Lost {
                msg: CogCompMsg::Census { id, r },
                ..
            }
            | Event::Received {
                msg: CogCompMsg::Census { id, r },
                ..
            } => {
                self.channel_census.entry(r).or_default().insert(id);
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Phase three: the rewind.
    // ------------------------------------------------------------------

    fn prepare_phase3(&mut self, ctx: &NodeCtx<'_>) {
        self.phase3_ready = true;
        // Pad the phase-one record to its full length in case the node
        // was down at the end of phase one.
        while (self.p1_records.len() as u64) < self.cfg.phase1_slots {
            self.p1_records.push(SlotRecord::Idle);
        }
        let Some(info) = self.informed else {
            return;
        };
        self.cluster_size = self
            .channel_census
            .get(&info.slot)
            .map(|s| s.len() as u32)
            .unwrap_or(1);
        if self.cfg.coordination == super::Coordination::Uncoordinated {
            // Ablation: no mediators are elected; phase four runs with
            // free contention among ready senders.
            return;
        }
        // Mediator: smallest id in the latest cluster on the channel.
        if let Some((_, members)) = self.channel_census.iter().next_back() {
            if members.iter().next() == Some(&ctx.id) {
                let clusters = self
                    .channel_census
                    .iter()
                    .rev()
                    .map(|(&r, m)| (r, m.len() as u32))
                    .collect();
                self.mediator = Some(MediatorState {
                    channel: info.channel,
                    clusters,
                    idx: 0,
                    acked: BTreeSet::new(),
                });
            }
        }
    }

    fn decide_phase3(&mut self, ctx: &NodeCtx<'_>, offset: u64) -> Action<CogCompMsg<V>> {
        if !self.phase3_ready {
            self.prepare_phase3(ctx);
        }
        let l = self.cfg.phase1_slots;
        let j = l - 1 - offset; // the phase-one slot being rewound
        self.rewind_slot = Some(j);
        let Some(&record) = self.p1_records.get(j as usize) else {
            return Action::Sleep;
        };
        match record {
            SlotRecord::Broadcast {
                channel,
                delivered: true,
            } => Action::Listen(channel),
            SlotRecord::Listen {
                channel,
                informed: true,
            } => Action::Broadcast(
                channel,
                CogCompMsg::ClusterSize {
                    r: j,
                    size: self.cluster_size,
                },
            ),
            _ => Action::Sleep,
        }
    }

    fn observe_phase3(&mut self, event: Event<CogCompMsg<V>>) {
        if let Event::Received {
            msg: CogCompMsg::ClusterSize { r, size },
            ..
        } = event
        {
            let j = self
                .rewind_slot
                .expect("observe without a preceding decide");
            debug_assert_eq!(r, j, "cluster-size echo must match the rewind slot");
            let channel = self.p1_records[j as usize]
                .channel()
                .expect("a ClusterSize reception implies we listened on a channel");
            self.informer_clusters.push(ClusterRef {
                r: j,
                channel,
                size,
            });
        }
        // Silence on a rewound success = the cluster is empty: nothing
        // to record. Delivered/Lost are the cluster members' own
        // broadcasts and carry no new information.
    }

    // ------------------------------------------------------------------
    // Phase four: mediated aggregation in 3-slot steps.
    // ------------------------------------------------------------------

    /// Finalizes the current round's result on the source (at most
    /// once per round).
    fn finalize_round(&mut self) {
        if self.is_source && (self.results.len() as u64) == self.round {
            let result = self.round_done.then(|| self.acc.clone());
            self.results.push(result);
        }
    }

    /// Marks the current round finished; on the last round this
    /// terminates the node.
    fn mark_round_done(&mut self) {
        self.round_done = true;
        if self.round + 1 >= u64::from(self.cfg.rounds) {
            self.done = true;
            self.finalize_round();
        }
    }

    /// Resets phase-four state for round `to`, loading that round's
    /// own value. The tree structure (informer clusters, mediator
    /// cluster lists) is reused — that is the amortization.
    fn advance_round(&mut self, to: u64) {
        self.finalize_round();
        self.round = to;
        let idx = (to as usize).min(self.values.len() - 1);
        self.acc = self.values[idx].clone();
        self.collect_idx = 0;
        self.collected.clear();
        self.pending_ack = None;
        self.delivered_mine = false;
        self.heard_announce = None;
        self.round_done = false;
        if let Some(med) = &mut self.mediator {
            med.idx = 0;
            med.acked.clear();
        }
    }

    fn compute_role(&mut self) -> StepRole {
        if self.done || self.round_done {
            return StepRole::Idle;
        }
        if self.collect_idx < self.informer_clusters.len() {
            return StepRole::Receiver;
        }
        if self.is_source {
            self.mark_round_done();
            return StepRole::Idle;
        }
        if let Some(med) = &self.mediator {
            if med.idx < med.clusters.len() {
                return StepRole::Mediator;
            }
        }
        if !self.delivered_mine {
            return StepRole::Sender;
        }
        self.mark_round_done();
        StepRole::Idle
    }

    fn decide_phase4(&mut self, ctx: &NodeCtx<'_>, step: u64, sub: u8) -> Action<CogCompMsg<V>> {
        if !self.phase4_ready {
            self.phase4_ready = true;
            // Collect clusters in descending informed-slot order
            // (children of later slots aggregate first).
            self.informer_clusters
                .sort_by_key(|cl| std::cmp::Reverse(cl.r));
            if !self.knows_init() {
                self.failed = true;
                self.done = true;
            }
        }
        // Round boundaries are derived from the globally known step
        // count, so all nodes switch rounds in the same slot.
        let target_round = (step / self.cfg.round_steps()).min(u64::from(self.cfg.rounds) - 1);
        if target_round > self.round && !self.done {
            self.advance_round(target_round);
        }
        if sub == 0 {
            self.heard_announce = None;
            self.pending_ack = None;
            self.step_role = self.compute_role();
        }
        match self.step_role {
            StepRole::Idle => Action::Sleep,
            StepRole::Receiver => {
                let cl = self.informer_clusters[self.collect_idx];
                match sub {
                    0 | 1 => Action::Listen(cl.channel),
                    _ => match self.pending_ack {
                        Some(id) => Action::Broadcast(cl.channel, CogCompMsg::Ack { id }),
                        None => Action::Listen(cl.channel),
                    },
                }
            }
            StepRole::Sender => {
                let info = self.informed.expect("a sender was informed");
                let may_send = match self.cfg.coordination {
                    super::Coordination::Mediated => self.heard_announce == Some(info.slot),
                    super::Coordination::Uncoordinated => true,
                };
                match sub {
                    1 if may_send && !self.delivered_mine => Action::Broadcast(
                        info.channel,
                        CogCompMsg::Value {
                            id: ctx.id,
                            r: info.slot,
                            agg: self.acc.clone(),
                        },
                    ),
                    _ => Action::Listen(info.channel),
                }
            }
            StepRole::Mediator => {
                let med = self.mediator.as_ref().expect("mediator role without state");
                let channel = med.channel;
                let current_r = med.clusters[med.idx].0;
                match sub {
                    0 => Action::Broadcast(channel, CogCompMsg::Announce { r: current_r }),
                    1 => {
                        let info = self.informed.expect("a mediator was informed");
                        if current_r == info.slot && !self.delivered_mine {
                            Action::Broadcast(
                                channel,
                                CogCompMsg::Value {
                                    id: ctx.id,
                                    r: info.slot,
                                    agg: self.acc.clone(),
                                },
                            )
                        } else {
                            Action::Listen(channel)
                        }
                    }
                    _ => Action::Listen(channel),
                }
            }
        }
    }

    fn observe_phase4(&mut self, ctx: &NodeCtx<'_>, sub: u8, event: Event<CogCompMsg<V>>) {
        match (self.step_role, sub) {
            (StepRole::Sender, 0) => {
                if let Event::Received {
                    msg: CogCompMsg::Announce { r },
                    ..
                } = event
                {
                    self.heard_announce = Some(r);
                }
            }
            (StepRole::Receiver, 1) => {
                if let Event::Received {
                    msg: CogCompMsg::Value { id, r, agg },
                    ..
                } = event
                {
                    let cl = self.informer_clusters[self.collect_idx];
                    if r == cl.r {
                        if self.collected.insert(id) {
                            self.acc.merge(&agg);
                        }
                        self.pending_ack = Some(id);
                    }
                }
            }
            (StepRole::Receiver, 2) => {
                // Our ack (if any) has gone out; check cluster completion.
                let cl = self.informer_clusters[self.collect_idx];
                if self.collected.len() as u32 >= cl.size {
                    self.collect_idx += 1;
                    self.collected.clear();
                }
            }
            (StepRole::Sender, 2) => {
                if let Event::Received {
                    msg: CogCompMsg::Ack { id },
                    ..
                } = event
                {
                    if id == ctx.id {
                        self.delivered_mine = true;
                    }
                }
            }
            (StepRole::Mediator, 2) => {
                if let Event::Received {
                    msg: CogCompMsg::Ack { id },
                    ..
                } = event
                {
                    if id == ctx.id {
                        self.delivered_mine = true;
                    }
                    let med = self.mediator.as_mut().expect("mediator role without state");
                    med.acked.insert(id);
                    if med.acked.len() as u32 >= med.clusters[med.idx].1 {
                        med.idx += 1;
                        med.acked.clear();
                    }
                }
            }
            _ => {}
        }
    }
}

impl<V: Aggregate> Protocol<CogCompMsg<V>> for CogComp<V> {
    fn decide(&mut self, ctx: &NodeCtx<'_>, rng: &mut SimRng) -> Action<CogCompMsg<V>> {
        match self.cfg.phase_at(ctx.slot) {
            PhaseAt::One(_) => self.decide_phase1(ctx, rng),
            PhaseAt::Two(_) => self.decide_phase2(ctx),
            PhaseAt::Three(offset) => self.decide_phase3(ctx, offset),
            PhaseAt::Four { step, sub } => self.decide_phase4(ctx, step, sub),
        }
    }

    fn observe(&mut self, ctx: &NodeCtx<'_>, event: Event<CogCompMsg<V>>) {
        match self.cfg.phase_at(ctx.slot) {
            PhaseAt::One(_) => self.observe_phase1(ctx, event),
            PhaseAt::Two(_) => self.observe_phase2(event),
            PhaseAt::Three(_) => self.observe_phase3(event),
            PhaseAt::Four { sub, .. } => self.observe_phase4(ctx, sub, event),
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}
