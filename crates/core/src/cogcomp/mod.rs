//! COGCOMP — data aggregation over the COGCAST distribution tree
//! (Section 5 of the paper).
//!
//! COGCOMP computes an associative aggregate of per-node values at a
//! designated source in
//! `O((c/k)·max{1, c/n}·lg n + n)` slots w.h.p. (Theorem 10). See
//! [`CogComp`] for the phase-by-phase state machine and
//! [`run_aggregation`] for a one-call driver.

mod config;
mod msg;
mod protocol;

pub use config::{CogCompConfig, Coordination, PhaseAt};
pub use msg::CogCompMsg;
pub use protocol::CogComp;

use crate::aggregate::Aggregate;
use crate::bounds;
use crn_sim::{ChannelModel, Network, SimError};
use serde::{Deserialize, Serialize};

/// The outcome of one COGCOMP execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationRun<V> {
    /// The aggregate computed at the source, if the run completed.
    pub result: Option<V>,
    /// Total slots until every node terminated, or `None` on timeout.
    pub slots: Option<u64>,
    /// Phase-four steps actually used (3 slots each), when completed.
    pub phase4_steps: Option<u64>,
    /// The configuration the run used.
    pub cfg: CogCompConfig,
    /// Nodes that never heard `Init` (0 on a w.h.p.-successful run);
    /// their values are missing from `result`.
    pub uninformed: usize,
    /// The slot budget that applied.
    pub budget: u64,
}

impl<V> AggregationRun<V> {
    /// True if every node terminated within the budget *and* every node
    /// was informed (so `result` covers the whole network).
    pub fn is_complete(&self) -> bool {
        self.slots.is_some() && self.uninformed == 0
    }
}

/// Runs COGCOMP end to end: node 0 is the source; `values[i]` is node
/// `i`'s input. Uses the Theorem 4 phase-one budget with constant
/// `alpha` and the [`CogCompConfig::recommended_budget`] overall cap.
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] if `values.len()` differs from
/// the model's node count, and propagates network construction errors.
///
/// # Examples
///
/// ```
/// use crn_core::aggregate::Sum;
/// use crn_core::cogcomp::run_aggregation;
/// use crn_sim::assignment::shared_core;
/// use crn_sim::channel_model::StaticChannels;
///
/// let n = 12;
/// let model = StaticChannels::local(shared_core(n, 4, 2)?, 5);
/// let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
/// let run = run_aggregation(model, values, 5, 10.0)?;
/// assert!(run.is_complete());
/// assert_eq!(run.result, Some(Sum((0..12).sum())));
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn run_aggregation<CM: ChannelModel + Sync, V: Aggregate>(
    model: CM,
    values: Vec<V>,
    seed: u64,
    alpha: f64,
) -> Result<AggregationRun<V>, SimError> {
    let cfg = CogCompConfig::new(model.n(), model.c(), model.k(), alpha);
    let budget = cfg.recommended_budget();
    run_aggregation_cfg(model, values, seed, cfg, budget)
}

/// Runs COGCOMP end to end over an arbitrary [`crn_sim::Medium`] with
/// the recommended budget; see [`run_aggregation_cfg_on`].
///
/// # Errors
///
/// As for [`run_aggregation`].
pub fn run_aggregation_on<CM, V, Med>(
    model: CM,
    values: Vec<V>,
    seed: u64,
    alpha: f64,
    medium: Med,
) -> Result<(AggregationRun<V>, Med), SimError>
where
    CM: ChannelModel + Sync,
    V: Aggregate,
    Med: crn_sim::Medium<CogCompMsg<V>>,
{
    let cfg = CogCompConfig::new(model.n(), model.c(), model.k(), alpha);
    let budget = cfg.recommended_budget();
    run_aggregation_cfg_on(model, values, seed, cfg, budget, medium)
}

/// Runs COGCOMP with an explicit configuration (e.g. the
/// [`Coordination::Uncoordinated`] ablation) and an explicit slot
/// budget.
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] if `values.len()` differs from
/// the model's node count or `cfg` disagrees with the model's shape,
/// and propagates network construction errors.
pub fn run_aggregation_cfg<CM: ChannelModel + Sync, V: Aggregate>(
    model: CM,
    values: Vec<V>,
    seed: u64,
    cfg: CogCompConfig,
    budget: u64,
) -> Result<AggregationRun<V>, SimError> {
    run_aggregation_cfg_on(
        model,
        values,
        seed,
        cfg,
        budget,
        crn_sim::OracleSingleHop::new(),
    )
    .map(|(run, _)| run)
}

/// Runs COGCOMP over an arbitrary [`crn_sim::Medium`] — the collision
/// oracle, a multi-hop topology, or the decay-backoff physical layer —
/// with an explicit configuration and slot budget. Returns the medium
/// alongside the run so medium-side metadata (e.g.
/// [`crn_sim::PhysicalDecay::physical_rounds`]) can be read back.
///
/// With [`crn_sim::OracleSingleHop`] this is trace-identical to
/// [`run_aggregation_cfg`].
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] if `values.len()` differs from
/// the model's node count or `cfg` disagrees with the model's shape,
/// and propagates network construction errors.
pub fn run_aggregation_cfg_on<CM, V, Med>(
    model: CM,
    values: Vec<V>,
    seed: u64,
    cfg: CogCompConfig,
    budget: u64,
    medium: Med,
) -> Result<(AggregationRun<V>, Med), SimError>
where
    CM: ChannelModel + Sync,
    V: Aggregate,
    Med: crn_sim::Medium<CogCompMsg<V>>,
{
    let n = model.n();
    if values.len() != n {
        return Err(SimError::InvalidParams {
            reason: format!("{} values supplied for {n} nodes", values.len()),
        });
    }
    if cfg.n != n || cfg.c != model.c() {
        return Err(SimError::InvalidParams {
            reason: format!(
                "config shape (n={}, c={}) does not match the model (n={n}, c={})",
                cfg.n,
                cfg.c,
                model.c()
            ),
        });
    }
    let mut values = values.into_iter();
    let source_value = values.next().expect("n >= 1 guaranteed by the model");
    let mut protos = Vec::with_capacity(n);
    protos.push(CogComp::source(cfg, source_value));
    protos.extend(values.map(|v| CogComp::node(cfg, v)));

    let mut net = Network::with_medium(model, protos, seed, medium)?;
    // Digest-identical at any worker count; engages only above the
    // small-n threshold.
    net.set_parallelism(crn_sim::ParConfig::auto());
    let outcome = net.run_to_completion(budget);
    let slots = outcome.slots();
    let (protos, medium) = net.into_parts();

    let uninformed = protos.iter().filter(|p| !p.knows_init()).count();
    let result = slots.and_then(|_| protos[0].result().cloned());
    let phase4_steps = slots.map(|s| s.saturating_sub(cfg.phase4_start()).div_ceil(3));
    let run = AggregationRun {
        result,
        slots,
        phase4_steps,
        cfg,
        uninformed,
        budget,
    };
    Ok((run, medium))
}

/// The outcome of an amortized multi-round COGCOMP execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepeatedAggregationRun<V> {
    /// Per round: the aggregate at the source (`None` if that round
    /// missed its step window).
    pub results: Vec<Option<V>>,
    /// Total slots until every node terminated, or `None` on timeout.
    pub slots: Option<u64>,
    /// The configuration the run used.
    pub cfg: CogCompConfig,
    /// Nodes that never heard `Init`.
    pub uninformed: usize,
}

impl<V> RepeatedAggregationRun<V> {
    /// True if the run terminated, every node was informed, and every
    /// round produced a result.
    pub fn is_complete(&self) -> bool {
        self.slots.is_some()
            && self.uninformed == 0
            && !self.results.is_empty()
            && self.results.iter().all(Option::is_some)
    }
}

/// Runs COGCOMP with one tree build and `rounds_values.len()` phase-four
/// rounds: `rounds_values[r][i]` is node `i`'s value in round `r`. The
/// distribution tree, cluster censuses and mediator schedules from
/// phases one–three are reused by every round, so each extra round
/// costs only the `O(n)`-step phase four — the amortization that makes
/// COGCOMP a continuous-monitoring primitive.
///
/// # Errors
///
/// Returns [`SimError::InvalidParams`] for empty/ragged `rounds_values`
/// or a node-count mismatch; propagates construction errors.
///
/// # Examples
///
/// ```
/// use crn_core::aggregate::Max;
/// use crn_core::cogcomp::run_repeated_aggregation;
/// use crn_sim::{assignment::shared_core, channel_model::StaticChannels};
///
/// let n = 10;
/// let model = StaticChannels::local(shared_core(n, 4, 2)?, 2);
/// // Three monitoring epochs with different readings.
/// let rounds: Vec<Vec<Max>> = (0..3u64)
///     .map(|r| (0..n as u64).map(|i| Max(i * 10 + r)).collect())
///     .collect();
/// let run = run_repeated_aggregation(model, rounds, 2, 10.0)?;
/// assert!(run.is_complete());
/// assert_eq!(run.results[0], Some(Max(90)));
/// assert_eq!(run.results[2], Some(Max(92)));
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn run_repeated_aggregation<CM: ChannelModel + Sync, V: Aggregate>(
    model: CM,
    rounds_values: Vec<Vec<V>>,
    seed: u64,
    alpha: f64,
) -> Result<RepeatedAggregationRun<V>, SimError> {
    let n = model.n();
    let rounds = rounds_values.len();
    if rounds == 0 {
        return Err(SimError::InvalidParams {
            reason: "need at least one round of values".into(),
        });
    }
    if rounds_values.iter().any(|r| r.len() != n) {
        return Err(SimError::InvalidParams {
            reason: format!("every round needs exactly {n} values"),
        });
    }
    let cfg = CogCompConfig::new(n, model.c(), model.k(), alpha).with_rounds(rounds as u32);
    // Transpose: per node, its per-round values.
    let mut per_node: Vec<Vec<V>> = (0..n).map(|_| Vec::with_capacity(rounds)).collect();
    for round in rounds_values {
        for (node, v) in round.into_iter().enumerate() {
            per_node[node].push(v);
        }
    }
    let mut per_node = per_node.into_iter();
    let mut protos = Vec::with_capacity(n);
    protos.push(CogComp::source_with_values(
        cfg,
        per_node.next().expect("n >= 1"),
    ));
    protos.extend(per_node.map(|vs| CogComp::node_with_values(cfg, vs)));

    let mut net = Network::new(model, protos, seed)?;
    net.set_parallelism(crn_sim::ParConfig::auto());
    let outcome = net.run_to_completion(cfg.recommended_budget());
    let slots = outcome.slots();
    let protos = net.into_protocols();
    let uninformed = protos.iter().filter(|p| !p.knows_init()).count();
    Ok(RepeatedAggregationRun {
        results: protos[0].round_results().to_vec(),
        slots,
        cfg,
        uninformed,
    })
}

/// [`run_aggregation`] with the repository's default constants
/// ([`bounds::DEFAULT_ALPHA`]).
///
/// # Errors
///
/// Same as [`run_aggregation`].
pub fn run_aggregation_default<CM: ChannelModel + Sync, V: Aggregate>(
    model: CM,
    values: Vec<V>,
    seed: u64,
) -> Result<AggregationRun<V>, SimError> {
    run_aggregation(model, values, seed, bounds::DEFAULT_ALPHA)
}

/// The outcome of a confirmed broadcast (see [`run_confirmed_broadcast`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfirmedBroadcast {
    /// True if the source *positively confirmed* that all `n − 1` other
    /// nodes received the initiation message.
    pub confirmed: bool,
    /// Number of nodes the source accounted for (including itself).
    pub reached: u64,
    /// Total slots until the source terminated, or `None` on timeout.
    pub slots: Option<u64>,
}

/// Broadcast with positive completion confirmation at the source.
///
/// Plain COGCAST gives a *probabilistic* guarantee: after the Theorem 4
/// budget everyone is informed w.h.p., but the source cannot observe
/// it. COGCOMP is exactly the missing acknowledgement channel: its
/// `Init` flood *is* a broadcast, and aggregating `Count(1)` back up
/// the distribution tree tells the source precisely how many nodes the
/// message reached — the "reaching consensus to maintain consistency"
/// use the paper's introduction sketches.
///
/// # Errors
///
/// Propagates [`SimError`] from construction.
///
/// # Examples
///
/// ```
/// use crn_core::cogcomp::run_confirmed_broadcast;
/// use crn_sim::{assignment::shared_core, channel_model::StaticChannels};
///
/// let model = StaticChannels::local(shared_core(12, 4, 2)?, 3);
/// let out = run_confirmed_broadcast(model, 3, 10.0)?;
/// assert!(out.confirmed);
/// assert_eq!(out.reached, 12);
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn run_confirmed_broadcast<CM: ChannelModel + Sync>(
    model: CM,
    seed: u64,
    alpha: f64,
) -> Result<ConfirmedBroadcast, SimError> {
    use crate::aggregate::Count;
    let n = model.n() as u64;
    let values = vec![Count(1); n as usize];
    let run = run_aggregation(model, values, seed, alpha)?;
    let reached = run.result.map(|c| c.0).unwrap_or(0);
    Ok(ConfirmedBroadcast {
        confirmed: run.slots.is_some() && reached == n,
        reached,
        slots: run.slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{Collect, Count, Max, Min, Sum};
    use crn_sim::assignment::{full_overlap, shared_core, OverlapPattern};
    use crn_sim::channel_model::StaticChannels;
    use crn_sim::rng::SimRng;
    use rand::SeedableRng;

    fn sum_run(n: usize, c: usize, k: usize, seed: u64) -> AggregationRun<Sum> {
        let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
        let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
        run_aggregation(model, values, seed, bounds::DEFAULT_ALPHA).unwrap()
    }

    #[test]
    fn aggregates_sum_correctly() {
        let n = 16;
        let run = sum_run(n, 4, 2, 3);
        assert!(run.is_complete(), "timed out: {run:?}");
        assert_eq!(run.result, Some(Sum((0..n as u64).sum())));
    }

    #[test]
    fn aggregates_across_seeds() {
        let n = 20;
        for seed in 0..10 {
            let run = sum_run(n, 5, 2, seed);
            assert!(run.is_complete(), "seed {seed} timed out");
            assert_eq!(
                run.result,
                Some(Sum((0..n as u64).sum())),
                "seed {seed} produced a wrong sum"
            );
        }
    }

    #[test]
    fn aggregates_min_max_count() {
        let n = 14;
        let model = || StaticChannels::local(shared_core(n, 4, 2).unwrap(), 9);

        let mins: Vec<Min> = (0..n as u64).map(|i| Min(100 - i)).collect();
        let run = run_aggregation(model(), mins, 9, bounds::DEFAULT_ALPHA).unwrap();
        assert_eq!(run.result, Some(Min(100 - (n as u64 - 1))));

        let maxs: Vec<Max> = (0..n as u64).map(Max).collect();
        let run = run_aggregation(model(), maxs, 9, bounds::DEFAULT_ALPHA).unwrap();
        assert_eq!(run.result, Some(Max(n as u64 - 1)));

        let counts = vec![Count(1); n];
        let run = run_aggregation(model(), counts, 9, bounds::DEFAULT_ALPHA).unwrap();
        assert_eq!(run.result, Some(Count(n as u64)));
    }

    #[test]
    fn collect_delivers_every_value_exactly_once() {
        let n = 18;
        for seed in 0..5 {
            let model = StaticChannels::local(shared_core(n, 6, 3).unwrap(), seed);
            let values: Vec<Collect> = (0..n as u64).map(Collect::of).collect();
            let run = run_aggregation(model, values, seed, bounds::DEFAULT_ALPHA).unwrap();
            assert!(run.is_complete(), "seed {seed}");
            let got = run.result.unwrap();
            let expect: Vec<u64> = (0..n as u64).collect();
            assert_eq!(got.values(), expect.as_slice(), "seed {seed}");
        }
    }

    #[test]
    fn works_on_single_shared_channel() {
        // c = k = 1: everything happens on one channel.
        let n = 10;
        let model = StaticChannels::local(full_overlap(n, 1).unwrap(), 4);
        let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
        let run = run_aggregation(model, values, 4, bounds::DEFAULT_ALPHA).unwrap();
        assert!(run.is_complete());
        assert_eq!(run.result, Some(Sum(45)));
    }

    #[test]
    fn works_with_full_overlap_many_channels() {
        let n = 12;
        let model = StaticChannels::local(full_overlap(n, 6).unwrap(), 8);
        let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
        let run = run_aggregation(model, values, 8, bounds::DEFAULT_ALPHA).unwrap();
        assert!(run.is_complete());
        assert_eq!(run.result, Some(Sum(66)));
    }

    #[test]
    fn works_across_overlap_patterns() {
        let (n, c, k) = (15, 6, 3);
        let mut rng = SimRng::seed_from_u64(77);
        for pattern in OverlapPattern::ALL {
            let a = pattern.generate(n, c, k, &mut rng).unwrap();
            let model = StaticChannels::local(a, 21);
            let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
            let run = run_aggregation(model, values, 21, bounds::DEFAULT_ALPHA).unwrap();
            assert!(run.is_complete(), "pattern {} timed out", pattern.name());
            assert_eq!(
                run.result,
                Some(Sum(105)),
                "pattern {} wrong",
                pattern.name()
            );
        }
    }

    #[test]
    fn single_node_aggregates_own_value() {
        let model = StaticChannels::local(full_overlap(1, 3).unwrap(), 1);
        let run = run_aggregation(model, vec![Sum(7)], 1, bounds::DEFAULT_ALPHA).unwrap();
        assert!(run.is_complete());
        assert_eq!(run.result, Some(Sum(7)));
    }

    #[test]
    fn two_node_network() {
        let model = StaticChannels::local(shared_core(2, 3, 1).unwrap(), 6);
        let run = run_aggregation(model, vec![Sum(5), Sum(8)], 6, bounds::DEFAULT_ALPHA).unwrap();
        assert!(run.is_complete());
        assert_eq!(run.result, Some(Sum(13)));
    }

    #[test]
    fn value_count_mismatch_rejected() {
        let model = StaticChannels::local(shared_core(3, 3, 1).unwrap(), 0);
        let err = run_aggregation(model, vec![Sum(1)], 0, 10.0).unwrap_err();
        assert!(matches!(err, SimError::InvalidParams { .. }));
    }

    #[test]
    fn confirmed_broadcast_counts_everyone() {
        for seed in 0..5 {
            let model = StaticChannels::local(shared_core(20, 5, 2).unwrap(), seed);
            let out = run_confirmed_broadcast(model, seed, bounds::DEFAULT_ALPHA).unwrap();
            assert!(out.confirmed, "seed {seed}: {out:?}");
            assert_eq!(out.reached, 20);
            assert!(out.slots.is_some());
        }
    }

    #[test]
    fn confirmed_broadcast_single_node() {
        let model = StaticChannels::local(full_overlap(1, 2).unwrap(), 0);
        let out = run_confirmed_broadcast(model, 0, 10.0).unwrap();
        assert!(out.confirmed);
        assert_eq!(out.reached, 1);
    }

    #[test]
    fn repeated_rounds_reuse_the_tree_and_stay_exact() {
        let (n, c, k) = (18usize, 5usize, 2usize);
        for seed in 0..4 {
            let rounds: Vec<Vec<Sum>> = (0..4u64)
                .map(|r| (0..n as u64).map(|i| Sum(i + 100 * r)).collect())
                .collect();
            let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
            let run = run_repeated_aggregation(model, rounds, seed, bounds::DEFAULT_ALPHA).unwrap();
            assert!(run.is_complete(), "seed {seed}: {:?}", run.results);
            for (r, result) in run.results.iter().enumerate() {
                let expect: u64 = (0..n as u64).map(|i| i + 100 * r as u64).sum();
                assert_eq!(result, &Some(Sum(expect)), "seed {seed} round {r}");
            }
        }
    }

    #[test]
    fn repeated_rounds_amortize_the_tree_build() {
        // R rounds over one tree must cost far less than R independent
        // full runs. Pick a shape where the tree build (phases 1–3,
        // ~2·(c/k)·lg n slots) dominates a phase-four round (~n steps)
        // so the amortization is unambiguous.
        let (n, c, k, rounds) = (24usize, 12usize, 1usize, 6usize);
        let model = StaticChannels::local(shared_core(n, c, k).unwrap(), 3);
        let values: Vec<Vec<Sum>> = (0..rounds)
            .map(|_| (0..n as u64).map(Sum).collect())
            .collect();
        let run = run_repeated_aggregation(model, values, 3, bounds::DEFAULT_ALPHA).unwrap();
        assert!(run.is_complete());
        let amortized = run.slots.unwrap();

        let mut independent = 0;
        for r in 0..rounds as u64 {
            let model = StaticChannels::local(shared_core(n, c, k).unwrap(), 3 + r);
            let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
            let one = run_aggregation(model, values, 3 + r, bounds::DEFAULT_ALPHA).unwrap();
            independent += one.slots.unwrap();
        }
        assert!(
            amortized * 2 < independent,
            "amortization missing: {amortized} vs {independent}"
        );
    }

    #[test]
    fn repeated_rejects_ragged_rounds() {
        let model = StaticChannels::local(shared_core(3, 3, 1).unwrap(), 0);
        let bad = vec![vec![Sum(1), Sum(2), Sum(3)], vec![Sum(1)]];
        assert!(run_repeated_aggregation(model, bad, 0, 10.0).is_err());
        let model = StaticChannels::local(shared_core(3, 3, 1).unwrap(), 0);
        assert!(run_repeated_aggregation::<_, Sum>(model, vec![], 0, 10.0).is_err());
    }

    #[test]
    fn single_round_repeated_matches_plain_run() {
        let (n, c, k) = (14usize, 4usize, 2usize);
        let model = StaticChannels::local(shared_core(n, c, k).unwrap(), 8);
        let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
        let plain = run_aggregation(model, values.clone(), 8, bounds::DEFAULT_ALPHA).unwrap();
        let model = StaticChannels::local(shared_core(n, c, k).unwrap(), 8);
        let repeated =
            run_repeated_aggregation(model, vec![values], 8, bounds::DEFAULT_ALPHA).unwrap();
        assert_eq!(repeated.results, vec![plain.result]);
    }

    #[test]
    fn uncoordinated_ablation_still_aggregates_exactly() {
        let (n, c, k) = (24usize, 6usize, 2usize);
        for seed in 0..5 {
            let cfg = CogCompConfig::new(n, c, k, bounds::DEFAULT_ALPHA)
                .with_coordination(Coordination::Uncoordinated);
            // Free contention can stretch phase four well past O(n)
            // steps; give it a quadratic budget.
            let budget = cfg.phase4_start() + 3 * (n as u64 * n as u64 + 64);
            let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
            let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
            let run = run_aggregation_cfg(model, values, seed, cfg, budget).unwrap();
            assert!(run.is_complete(), "seed {seed} timed out");
            assert_eq!(run.result, Some(Sum((0..n as u64).sum())), "seed {seed}");
        }
    }

    #[test]
    fn uncoordinated_elects_no_mediators() {
        let (n, c, k) = (20usize, 5usize, 2usize);
        let cfg = CogCompConfig::new(n, c, k, bounds::DEFAULT_ALPHA)
            .with_coordination(Coordination::Uncoordinated);
        let model = StaticChannels::local(shared_core(n, c, k).unwrap(), 3);
        let mut protos = vec![CogComp::source(cfg, Sum(0))];
        protos.extend((1..n).map(|i| CogComp::node(cfg, Sum(i as u64))));
        let mut net = Network::new(model, protos, 3).unwrap();
        let budget = cfg.phase4_start() + 3 * (n as u64 * n as u64 + 64);
        assert!(net.run_to_completion(budget).is_done());
        let protos = net.into_protocols();
        assert!(protos.iter().all(|p| !p.is_mediator()));
        assert_eq!(protos[0].result(), Some(&Sum((0..n as u64).sum())));
    }

    #[test]
    fn mediation_is_no_slower_than_free_contention_on_congested_channels() {
        // The design-choice ablation behind the paper's mediators: on
        // a shared-core assignment most clusters pile onto k channels,
        // and uncoordinated senders collide across clusters.
        let (n, c, k) = (96usize, 6usize, 1usize);
        let trials = 5;
        let mut med_total = 0u64;
        let mut unc_total = 0u64;
        for seed in 0..trials {
            let cfg = CogCompConfig::new(n, c, k, bounds::DEFAULT_ALPHA);
            let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
            let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
            let budget = cfg.phase4_start() + 3 * (n as u64 * n as u64 + 64);
            let run = run_aggregation_cfg(model, values, seed, cfg, budget).unwrap();
            assert!(run.is_complete());
            med_total += run.phase4_steps.unwrap();

            let cfg = cfg.with_coordination(Coordination::Uncoordinated);
            let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
            let values: Vec<Sum> = (0..n as u64).map(Sum).collect();
            let run = run_aggregation_cfg(model, values, seed, cfg, budget).unwrap();
            assert!(run.is_complete(), "uncoordinated seed {seed} timed out");
            unc_total += run.phase4_steps.unwrap();
        }
        assert!(
            med_total <= unc_total * 2,
            "mediation should not lose badly: mediated {med_total} vs free {unc_total}"
        );
    }

    #[test]
    fn config_mismatch_rejected() {
        let cfg = CogCompConfig::new(10, 4, 2, 10.0);
        let model = StaticChannels::local(shared_core(12, 4, 2).unwrap(), 0);
        let values: Vec<Sum> = (0..12).map(Sum).collect();
        let err = run_aggregation_cfg(model, values, 0, cfg, 1000).unwrap_err();
        assert!(matches!(err, SimError::InvalidParams { .. }));
    }

    #[test]
    fn phase4_steps_scale_linearly() {
        // Theorem 10: phase four is O(n) steps.
        let steps = |n: usize| -> f64 {
            let trials = 5;
            let mut total = 0u64;
            for seed in 0..trials {
                let run = sum_run(n, 4, 2, seed);
                assert!(run.is_complete());
                total += run.phase4_steps.unwrap();
            }
            total as f64 / trials as f64
        };
        let s32 = steps(32);
        let s128 = steps(128);
        // 4x the nodes should cost no more than ~8x the steps (linear
        // with generous noise allowance), and at least 2x.
        assert!(s128 / s32 < 8.0, "s32={s32}, s128={s128}");
        assert!(s128 > s32 * 1.5, "s32={s32}, s128={s128}");
    }

    #[test]
    fn cluster_sizes_sum_to_n_minus_one() {
        let n = 24;
        let cfg = CogCompConfig::new(n, 5, 2, bounds::DEFAULT_ALPHA);
        let model = StaticChannels::local(shared_core(n, 5, 2).unwrap(), 13);
        let mut protos = vec![CogComp::source(cfg, Sum(0))];
        protos.extend((1..n).map(|i| CogComp::node(cfg, Sum(i as u64))));
        let mut net = Network::new(model, protos, 13).unwrap();
        let outcome = net.run_to_completion(cfg.recommended_budget());
        assert!(outcome.is_done());
        let protos = net.into_protocols();
        // Every node's informer-cluster sizes, summed over all nodes,
        // must cover each non-source node exactly once.
        let total: u32 = protos
            .iter()
            .map(|p| (0..p.informer_cluster_count()).count() as u32)
            .sum::<u32>();
        assert!(total >= 1);
        // Each non-source node belongs to exactly one cluster, whose
        // size the node knows:
        let sum_by_membership: u32 = protos.iter().filter(|p| !p.is_source()).map(|_| 1u32).sum();
        assert_eq!(sum_by_membership, n as u32 - 1);
    }

    #[test]
    fn mediators_are_unique_per_run() {
        let n = 30;
        let cfg = CogCompConfig::new(n, 6, 2, bounds::DEFAULT_ALPHA);
        let model = StaticChannels::local(shared_core(n, 6, 2).unwrap(), 17);
        let mut protos = vec![CogComp::source(cfg, Count(1))];
        protos.extend((1..n).map(|_| CogComp::node(cfg, Count(1))));
        let mut net = Network::new(model, protos, 17).unwrap();
        assert!(net.run_to_completion(cfg.recommended_budget()).is_done());
        let protos = net.into_protocols();
        let mediators = protos.iter().filter(|p| p.is_mediator()).count();
        // At least one channel informed someone, and there can be at
        // most one mediator per global channel.
        assert!(mediators >= 1);
        assert!(mediators <= 6 + (n - 1) * 4); // <= C
                                               // The source result must still be exact.
        assert_eq!(protos[0].result(), Some(&Count(n as u64)));
    }
}
