//! COGCAST — the epidemic local-broadcast protocol (Section 4).
//!
//! The algorithm is exactly the paper's: in every slot, every node picks
//! a channel uniformly at random from its `c` available channels; nodes
//! that already know the message broadcast it, everyone else listens.
//! After `Θ((c/k)·max{1, c/n}·lg n)` slots all nodes are informed with
//! high probability (Theorem 4).
//!
//! Because every informed node does the same thing in every slot, the
//! protocol has no phases to desynchronize: it tolerates dynamic channel
//! assignments and arbitrary start states out of the box (Section 7),
//! and the run-time budget is its *only* dependence on `n` and `k`.

use crate::bounds;
use crn_sim::rng::SimRng;
use crn_sim::{Action, Event, LocalChannel, NodeCtx, NodeId, Protocol};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a node was first informed: by whom, in which slot, and on which
/// of its local channels. This triple identifies the node's position in
/// the implicit distribution tree that COGCAST builds (Section 5,
/// Lemma 5): `from` is the node's parent and `(slot, channel)` names its
/// cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Informed {
    /// The node whose transmission informed this node (its tree parent).
    pub from: NodeId,
    /// The slot in which this node was first informed.
    pub slot: u64,
    /// This node's local label for the channel it was informed on.
    pub channel: LocalChannel,
}

/// What a COGCAST node did in one slot — recorded so COGCOMP's phase
/// three can "rewind" phase one (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotRecord {
    /// Broadcast on the channel; `delivered` is the success feedback.
    Broadcast {
        /// Local channel used.
        channel: LocalChannel,
        /// Whether this node's transmission was the one received.
        delivered: bool,
    },
    /// Listened on the channel; `informed` is true if this was the slot
    /// in which the node was first informed.
    Listen {
        /// Local channel used.
        channel: LocalChannel,
        /// Whether this node was first informed in this slot.
        informed: bool,
    },
    /// The node's radio was off this slot (e.g. a fault window under
    /// [`crn_sim::faults::Flaky`]). Records stay slot-aligned so the
    /// phase-three rewind still works after transient outages.
    Idle,
}

impl SlotRecord {
    /// The local channel this record used, if the radio was on.
    pub fn channel(self) -> Option<LocalChannel> {
        match self {
            SlotRecord::Broadcast { channel, .. } | SlotRecord::Listen { channel, .. } => {
                Some(channel)
            }
            SlotRecord::Idle => None,
        }
    }
}

/// The COGCAST protocol state machine for one node.
///
/// Construct the source with [`CogCast::source`] and everyone else with
/// [`CogCast::node`]; hand the instances to a
/// [`crn_sim::Network`] and run it for
/// [`bounds::cogcast_slots`] slots.
///
/// # Examples
///
/// ```
/// use crn_core::cogcast::CogCast;
/// use crn_core::bounds;
/// use crn_sim::assignment::shared_core;
/// use crn_sim::channel_model::StaticChannels;
/// use crn_sim::Network;
///
/// let (n, c, k) = (8, 4, 2);
/// let model = StaticChannels::local(shared_core(n, c, k)?, 11);
/// let mut protos = vec![CogCast::source("config-v2")];
/// protos.extend((1..n).map(|_| CogCast::node()));
/// let mut net = Network::new(model, protos, 11)?;
/// let budget = bounds::cogcast_slots(n, c, k, bounds::DEFAULT_ALPHA);
/// let outcome = net.run(budget, |net| net.all_done());
/// assert!(outcome.is_done());
/// assert!(net.protocols().iter().all(|p| p.message() == Some(&"config-v2")));
/// # Ok::<(), crn_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CogCast<M> {
    /// The message, once known.
    message: Option<M>,
    /// True for the designated source.
    is_source: bool,
    /// How this node was informed (`None` for the source or while
    /// uninformed).
    informed: Option<Informed>,
    /// Whether to keep per-slot records (needed by COGCOMP's rewind).
    recording: bool,
    /// Per-slot action records (empty unless `recording`).
    records: Vec<SlotRecord>,
    /// The channel chosen in the current slot (between decide/observe).
    pending_channel: LocalChannel,
}

impl<M: Clone> CogCast<M> {
    /// Creates the designated source, which knows `message` from slot 0.
    pub fn source(message: M) -> Self {
        CogCast {
            message: Some(message),
            is_source: true,
            informed: None,
            recording: false,
            records: Vec::new(),
            pending_channel: LocalChannel(0),
        }
    }

    /// Creates an initially-uninformed node.
    pub fn node() -> Self {
        CogCast {
            message: None,
            is_source: false,
            informed: None,
            recording: false,
            records: Vec::new(),
            pending_channel: LocalChannel(0),
        }
    }

    /// Enables per-slot action recording (used by COGCOMP's phase 3).
    pub fn with_recording(mut self) -> Self {
        self.recording = true;
        self
    }

    /// True once this node knows the message.
    pub fn is_informed(&self) -> bool {
        self.message.is_some()
    }

    /// True if this node is the designated source.
    pub fn is_source(&self) -> bool {
        self.is_source
    }

    /// The message, if known.
    pub fn message(&self) -> Option<&M> {
        self.message.as_ref()
    }

    /// How this node was first informed (`None` for the source and for
    /// still-uninformed nodes).
    pub fn informed(&self) -> Option<Informed> {
        self.informed
    }

    /// The recorded per-slot actions (empty unless recording was
    /// enabled).
    pub fn records(&self) -> &[SlotRecord] {
        &self.records
    }
}

impl<M: Clone + std::fmt::Debug> Protocol<M> for CogCast<M> {
    fn decide(&mut self, ctx: &NodeCtx<'_>, rng: &mut SimRng) -> Action<M> {
        if self.recording {
            // Keep records aligned to absolute slots even if earlier
            // slots were missed (fault windows suppress decide).
            while (self.records.len() as u64) < ctx.slot {
                self.records.push(SlotRecord::Idle);
            }
        }
        let ch = LocalChannel(rng.gen_range(0..ctx.c as u32));
        self.pending_channel = ch;
        match &self.message {
            Some(m) => Action::Broadcast(ch, m.clone()),
            None => Action::Listen(ch),
        }
    }

    fn observe(&mut self, ctx: &NodeCtx<'_>, event: Event<M>) {
        let ch = self.pending_channel;
        let record = match event {
            Event::Received { from, msg } => {
                let first_time = self.message.is_none();
                if first_time {
                    self.message = Some(msg);
                    self.informed = Some(Informed {
                        from,
                        slot: ctx.slot,
                        channel: ch,
                    });
                }
                SlotRecord::Listen {
                    channel: ch,
                    informed: first_time,
                }
            }
            Event::Silence | Event::Jammed if self.message.is_none() => SlotRecord::Listen {
                channel: ch,
                informed: false,
            },
            Event::Delivered => SlotRecord::Broadcast {
                channel: ch,
                delivered: true,
            },
            Event::Lost { .. } | Event::Silence | Event::Jammed => SlotRecord::Broadcast {
                channel: ch,
                delivered: false,
            },
        };
        if self.recording {
            self.records.push(record);
        }
    }

    fn is_done(&self) -> bool {
        self.is_informed()
    }
}

/// Per-run statistics of a COGCAST execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BroadcastRun {
    /// Slots until every node was informed, or `None` if the budget ran
    /// out first.
    pub slots: Option<u64>,
    /// The slot budget that was allowed.
    pub budget: u64,
    /// Number of informed nodes after each slot (index 0 = after slot 0),
    /// the epidemic curve of experiment F4.
    pub informed_per_slot: Vec<usize>,
}

impl BroadcastRun {
    /// True if broadcast completed within the budget.
    pub fn completed(&self) -> bool {
        self.slots.is_some()
    }

    /// The first slot (1-based) by which at least `fraction` of the
    /// nodes were informed, or `None` if the run never got there.
    ///
    /// The epidemic curve is the inverse of the per-node latency
    /// distribution, so `latency_quantile(0.5)` is the median node's
    /// inform latency and `latency_quantile(1.0)` the straggler's.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < fraction <= 1.0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use crn_core::cogcast::BroadcastRun;
    /// let run = BroadcastRun {
    ///     slots: Some(4),
    ///     budget: 10,
    ///     informed_per_slot: vec![2, 5, 9, 10],
    /// };
    /// assert_eq!(run.latency_quantile(0.5, 10), Some(2));
    /// assert_eq!(run.latency_quantile(1.0, 10), Some(4));
    /// ```
    pub fn latency_quantile(&self, fraction: f64, n: usize) -> Option<u64> {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1], got {fraction}"
        );
        let target = (fraction * n as f64).ceil() as usize;
        self.informed_per_slot
            .iter()
            .position(|&count| count >= target)
            .map(|i| i as u64 + 1)
    }
}

/// Runs COGCAST over the given channel model until all nodes are
/// informed or `budget` slots elapse, returning the epidemic curve.
///
/// Node 0 is the source. The message is a unit token; use the protocol
/// directly if you need payloads.
///
/// # Errors
///
/// Propagates [`crn_sim::SimError`] from network construction.
///
/// # Examples
///
/// ```
/// use crn_core::cogcast::run_broadcast;
/// use crn_core::bounds;
/// use crn_sim::assignment::shared_core;
/// use crn_sim::channel_model::StaticChannels;
///
/// let model = StaticChannels::local(shared_core(16, 4, 2)?, 3);
/// let budget = bounds::cogcast_slots(16, 4, 2, bounds::DEFAULT_ALPHA);
/// let run = run_broadcast(model, 3, budget)?;
/// assert!(run.completed());
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn run_broadcast<CM: crn_sim::ChannelModel + Sync>(
    model: CM,
    seed: u64,
    budget: u64,
) -> Result<BroadcastRun, crn_sim::SimError> {
    run_broadcast_on(model, seed, budget, crn_sim::OracleSingleHop::new()).map(|(run, _)| run)
}

/// Runs COGCAST over an arbitrary [`crn_sim::Medium`] — the abstract
/// collision oracle, a multi-hop topology, or the decay-backoff
/// physical layer — and returns the medium alongside the run so
/// medium-side metadata (e.g. [`crn_sim::PhysicalDecay::physical_rounds`])
/// can be read back.
///
/// With [`crn_sim::OracleSingleHop`] this is trace-identical to
/// [`run_broadcast`].
///
/// # Errors
///
/// Propagates [`crn_sim::SimError`] from network construction.
///
/// # Examples
///
/// ```
/// use crn_core::cogcast::run_broadcast_on;
/// use crn_sim::assignment::shared_core;
/// use crn_sim::channel_model::StaticChannels;
/// use crn_sim::PhysicalDecay;
///
/// let model = StaticChannels::local(shared_core(8, 4, 2)?, 3);
/// let (run, medium) = run_broadcast_on(model, 3, 10_000, PhysicalDecay::new())?;
/// assert!(run.completed());
/// assert!(medium.physical_rounds() > 0);
/// # Ok::<(), crn_sim::SimError>(())
/// ```
pub fn run_broadcast_on<CM, Med>(
    model: CM,
    seed: u64,
    budget: u64,
    medium: Med,
) -> Result<(BroadcastRun, Med), crn_sim::SimError>
where
    CM: crn_sim::ChannelModel + Sync,
    Med: crn_sim::Medium<()>,
{
    let n = model.n();
    let mut protos = Vec::with_capacity(n);
    protos.push(CogCast::source(()));
    protos.extend((1..n).map(|_| CogCast::node()));
    let mut net = crn_sim::Network::with_medium(model, protos, seed, medium)?;
    // Large networks fan decide/observe across the shared pool;
    // digest-identical at any worker count, so always safe to enable.
    net.set_parallelism(crn_sim::ParConfig::auto());

    let mut informed_per_slot = Vec::new();
    let mut slots = None;
    for s in 0..budget {
        net.step();
        let informed = net.protocols().iter().filter(|p| p.is_informed()).count();
        informed_per_slot.push(informed);
        if informed == n {
            slots = Some(s + 1);
            break;
        }
    }
    let run = BroadcastRun {
        slots,
        budget,
        informed_per_slot,
    };
    Ok((run, net.into_medium()))
}

/// Convenience: runs COGCAST with the Theorem 4 budget sized by
/// `alpha`, on the given model.
///
/// # Errors
///
/// Propagates [`crn_sim::SimError`] from network construction.
pub fn run_broadcast_default<CM: crn_sim::ChannelModel + Sync>(
    model: CM,
    seed: u64,
    alpha: f64,
) -> Result<BroadcastRun, crn_sim::SimError> {
    let budget = bounds::cogcast_slots(model.n(), model.c(), model.k(), alpha);
    run_broadcast(model, seed, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_sim::assignment::{full_overlap, shared_core};
    use crn_sim::channel_model::{DynamicSharedCore, StaticChannels};
    use crn_sim::Network;

    fn complete_on(
        model: impl crn_sim::ChannelModel + Sync,
        seed: u64,
        budget: u64,
    ) -> BroadcastRun {
        run_broadcast(model, seed, budget).unwrap()
    }

    #[test]
    fn informs_everyone_on_single_shared_channel() {
        let model = StaticChannels::local(full_overlap(8, 1).unwrap(), 1);
        let run = complete_on(model, 1, 100);
        assert!(run.completed());
        // One channel, everyone meets immediately: first slot informs
        // at least one new node.
        assert!(run.informed_per_slot[0] >= 2);
    }

    #[test]
    fn informs_everyone_with_shared_core() {
        for seed in 0..5 {
            let model = StaticChannels::local(shared_core(20, 6, 2).unwrap(), seed);
            let budget = bounds::cogcast_slots(20, 6, 2, bounds::DEFAULT_ALPHA);
            let run = complete_on(model, seed, budget);
            assert!(run.completed(), "seed {seed} missed budget {budget}");
        }
    }

    #[test]
    fn informed_counts_monotone() {
        let model = StaticChannels::local(shared_core(30, 8, 3).unwrap(), 7);
        let run = complete_on(model, 7, 10_000);
        for w in run.informed_per_slot.windows(2) {
            assert!(w[0] <= w[1], "epidemic curve must be monotone");
        }
        assert_eq!(*run.informed_per_slot.last().unwrap(), 30);
    }

    #[test]
    fn source_counts_as_informed_from_start() {
        let model = StaticChannels::local(shared_core(4, 4, 1).unwrap(), 2);
        let run = complete_on(model, 2, 1);
        assert!(run.informed_per_slot[0] >= 1);
    }

    #[test]
    fn single_node_network_completes_instantly() {
        let model = StaticChannels::local(full_overlap(1, 3).unwrap(), 0);
        let run = complete_on(model, 0, 5);
        assert_eq!(run.slots, Some(1));
    }

    #[test]
    fn budget_exhaustion_reports_incomplete() {
        // k=1, c=8: a tight budget of 1 slot will essentially never
        // inform 50 nodes.
        let model = StaticChannels::local(shared_core(50, 8, 1).unwrap(), 3);
        let run = complete_on(model, 3, 1);
        assert!(!run.completed());
        assert_eq!(run.informed_per_slot.len(), 1);
    }

    #[test]
    fn parents_form_a_tree_rooted_at_source() {
        let n = 25;
        let model = StaticChannels::local(shared_core(n, 5, 2).unwrap(), 9);
        let mut protos = vec![CogCast::source(0u8)];
        protos.extend((1..n).map(|_| CogCast::node()));
        let mut net = Network::new(model, protos, 9).unwrap();
        let outcome = net.run(100_000, |net| net.all_done());
        assert!(outcome.is_done());
        let protos = net.into_protocols();

        assert!(protos[0].informed().is_none(), "source has no parent");
        for (i, p) in protos.iter().enumerate().skip(1) {
            let info = p
                .informed()
                .unwrap_or_else(|| panic!("node {i} uninformed"));
            // Parent must have been informed strictly before this node.
            let parent = &protos[info.from.index()];
            let parent_time = if parent.is_source() {
                0
            } else {
                parent.informed().unwrap().slot + 1
            };
            assert!(
                parent_time <= info.slot,
                "node {i} informed at {} by parent informed at {parent_time}",
                info.slot
            );
        }
    }

    #[test]
    fn recording_captures_every_slot() {
        let n = 10;
        let model = StaticChannels::local(shared_core(n, 4, 2).unwrap(), 5);
        let mut protos = vec![CogCast::source(0u8).with_recording()];
        protos.extend((1..n).map(|_| CogCast::node().with_recording()));
        let mut net = Network::new(model, protos, 5).unwrap();
        net.run_slots(50);
        for p in net.protocols() {
            assert_eq!(p.records().len(), 50);
        }
    }

    #[test]
    fn records_mark_informed_slot() {
        let n = 12;
        let model = StaticChannels::local(shared_core(n, 4, 2).unwrap(), 8);
        let mut protos = vec![CogCast::source(0u8).with_recording()];
        protos.extend((1..n).map(|_| CogCast::node().with_recording()));
        let mut net = Network::new(model, protos, 8).unwrap();
        net.run(100_000, |net| net.all_done());
        for p in net.protocols().iter().skip(1) {
            let info = p.informed().unwrap();
            match p.records()[info.slot as usize] {
                SlotRecord::Listen { channel, informed } => {
                    assert!(informed);
                    assert_eq!(channel, info.channel);
                }
                other => panic!("expected an informing Listen record, got {other:?}"),
            }
            // Exactly one informing record.
            let informings = p
                .records()
                .iter()
                .filter(|r| matches!(r, SlotRecord::Listen { informed: true, .. }))
                .count();
            assert_eq!(informings, 1);
        }
    }

    #[test]
    fn no_recording_by_default() {
        let model = StaticChannels::local(shared_core(4, 3, 1).unwrap(), 5);
        let mut protos = vec![CogCast::source(0u8)];
        protos.extend((1..4).map(|_| CogCast::node()));
        let mut net = Network::new(model, protos, 5).unwrap();
        net.run_slots(10);
        assert!(net.protocols().iter().all(|p| p.records().is_empty()));
    }

    #[test]
    fn works_under_dynamic_channel_assignment() {
        // Section 7: COGCAST provides the same guarantee when the
        // non-core channels churn every slot.
        let (n, c, k) = (16, 6, 2);
        for seed in 0..3 {
            let model = DynamicSharedCore::new(n, c, k, 60, 1.0, seed).unwrap();
            let budget = bounds::cogcast_slots(n, c, k, bounds::DEFAULT_ALPHA);
            let run = complete_on(model, seed, budget);
            assert!(run.completed(), "dynamic run failed for seed {seed}");
        }
    }

    #[test]
    fn latency_quantiles_are_monotone_and_bracket_completion() {
        let n = 40;
        let model = StaticChannels::local(shared_core(n, 6, 2).unwrap(), 4);
        let run = complete_on(model, 4, 1_000_000);
        let p50 = run.latency_quantile(0.5, n).unwrap();
        let p90 = run.latency_quantile(0.9, n).unwrap();
        let p100 = run.latency_quantile(1.0, n).unwrap();
        assert!(p50 <= p90 && p90 <= p100);
        assert_eq!(Some(p100), run.slots, "full quantile = completion slot");
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1]")]
    fn latency_quantile_rejects_zero() {
        let run = BroadcastRun {
            slots: Some(1),
            budget: 1,
            informed_per_slot: vec![1],
        };
        run.latency_quantile(0.0, 1);
    }

    #[test]
    fn multiple_sources_speed_up_the_epidemic() {
        // The protocol has no single-source assumption: any set of
        // initially-informed nodes works, and more seeds finish faster.
        let (n, c, k) = (64usize, 8usize, 2usize);
        let mean = |sources: usize| -> f64 {
            let trials = 12;
            let mut total = 0u64;
            for seed in 0..trials {
                let model = StaticChannels::local(shared_core(n, c, k).unwrap(), seed);
                let protos: Vec<CogCast<u8>> = (0..n)
                    .map(|i| {
                        if i < sources {
                            CogCast::source(1)
                        } else {
                            CogCast::node()
                        }
                    })
                    .collect();
                let mut net = Network::new(model, protos, seed).unwrap();
                let outcome = net.run(10_000_000, |net| net.all_done());
                total += outcome.slots().expect("completes");
            }
            total as f64 / trials as f64
        };
        let one = mean(1);
        let eight = mean(8);
        assert!(
            eight < one,
            "8 sources ({eight}) should beat 1 source ({one})"
        );
    }

    #[test]
    fn faster_with_larger_overlap() {
        // Average completion over seeds should decrease markedly from
        // k=1 to k=c (same c).
        let avg = |k: usize| -> f64 {
            let mut total = 0u64;
            let trials = 20;
            for seed in 0..trials {
                let model = StaticChannels::local(shared_core(24, 8, k).unwrap(), seed);
                let run = complete_on(model, seed, 1_000_000);
                total += run.slots.unwrap();
            }
            total as f64 / trials as f64
        };
        let slow = avg(1);
        let fast = avg(8);
        assert!(
            slow > fast * 2.0,
            "k=1 ({slow}) should be much slower than k=8 ({fast})"
        );
    }
}
