//! Aggregation functions carried up the COGCOMP distribution tree.
//!
//! COGCOMP's message-size discussion (end of Section 5) observes that for
//! *associative* functions each node can fold its subtree locally and
//! forward only the folded result, keeping messages `O(polylog n)`. The
//! [`Aggregate`] trait captures exactly an associative, commutative merge;
//! [`Collect`] is the "send everything" fallback that exists mainly so
//! tests can verify that *every* node's contribution reaches the source
//! exactly once.

use serde::{Deserialize, Serialize};

/// An associative, commutative aggregation value.
///
/// Implementations must satisfy, for all `a`, `b`, `c`:
/// - associativity: `merge(merge(a, b), c) == merge(a, merge(b, c))`
/// - commutativity: `merge(a, b) == merge(b, a)`
///
/// (Both are property-tested for the provided implementations.)
///
/// `Send` is a supertrait because aggregation values ride in messages
/// that cross worker threads — both across parallel trials and across
/// the engine's intra-slot worker pool. Aggregates are plain data, so
/// this costs implementations nothing.
pub trait Aggregate: Clone + std::fmt::Debug + PartialEq + Send {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: &Self);
}

/// Sum of `u64` values (wrapping, so merges never panic).
///
/// # Examples
///
/// ```
/// use crn_core::aggregate::{Aggregate, Sum};
/// let mut a = Sum(3);
/// a.merge(&Sum(4));
/// assert_eq!(a, Sum(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Sum(pub u64);

impl Aggregate for Sum {
    fn merge(&mut self, other: &Self) {
        self.0 = self.0.wrapping_add(other.0);
    }
}

/// Minimum of `u64` values.
///
/// # Examples
///
/// ```
/// use crn_core::aggregate::{Aggregate, Min};
/// let mut a = Min(9);
/// a.merge(&Min(2));
/// assert_eq!(a, Min(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Min(pub u64);

impl Aggregate for Min {
    fn merge(&mut self, other: &Self) {
        self.0 = self.0.min(other.0);
    }
}

/// Maximum of `u64` values.
///
/// # Examples
///
/// ```
/// use crn_core::aggregate::{Aggregate, Max};
/// let mut a = Max(1);
/// a.merge(&Max(5));
/// assert_eq!(a, Max(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Max(pub u64);

impl Aggregate for Max {
    fn merge(&mut self, other: &Self) {
        self.0 = self.0.max(other.0);
    }
}

/// Counts contributions (each node starts with `Count(1)`).
///
/// # Examples
///
/// ```
/// use crn_core::aggregate::{Aggregate, Count};
/// let mut a = Count(1);
/// a.merge(&Count(1));
/// assert_eq!(a, Count(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Count(pub u64);

impl Aggregate for Count {
    fn merge(&mut self, other: &Self) {
        self.0 = self.0.wrapping_add(other.0);
    }
}

/// Collects every contributed value into a sorted multiset.
///
/// Unlike the associative scalars this grows with the subtree, so it is
/// *not* what a deployment would ship — but it lets tests assert that
/// aggregation delivered each node's value exactly once.
///
/// # Examples
///
/// ```
/// use crn_core::aggregate::{Aggregate, Collect};
/// let mut a = Collect::of(3);
/// a.merge(&Collect::of(1));
/// a.merge(&Collect::of(2));
/// assert_eq!(a.values(), &[1, 2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Collect(Vec<u64>);

impl Collect {
    /// A singleton collection.
    pub fn of(v: u64) -> Self {
        Collect(vec![v])
    }

    /// The collected values, sorted ascending.
    pub fn values(&self) -> &[u64] {
        &self.0
    }
}

impl Aggregate for Collect {
    fn merge(&mut self, other: &Self) {
        self.0.extend_from_slice(&other.0);
        self.0.sort_unstable();
    }
}

/// Mean accumulator: pairs a sum with a count so the source can report
/// an exact average — the "quality of service metric" use case from the
/// paper's introduction.
///
/// # Examples
///
/// ```
/// use crn_core::aggregate::{Aggregate, MeanAcc};
/// let mut a = MeanAcc::of(10);
/// a.merge(&MeanAcc::of(20));
/// assert_eq!(a.mean(), 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MeanAcc {
    /// Sum of contributed values.
    pub sum: u64,
    /// Number of contributions.
    pub count: u64,
}

impl MeanAcc {
    /// A single observation.
    pub fn of(v: u64) -> Self {
        MeanAcc { sum: v, count: 1 }
    }

    /// The mean of all merged observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Aggregate for MeanAcc {
    fn merge(&mut self, other: &Self) {
        self.sum = self.sum.wrapping_add(other.sum);
        self.count = self.count.wrapping_add(other.count);
    }
}

/// Logical conjunction: "do *all* nodes satisfy the predicate?"
///
/// # Examples
///
/// ```
/// use crn_core::aggregate::{Aggregate, All};
/// let mut a = All(true);
/// a.merge(&All(false));
/// assert_eq!(a, All(false));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct All(pub bool);

impl Aggregate for All {
    fn merge(&mut self, other: &Self) {
        self.0 &= other.0;
    }
}

/// Logical disjunction: "does *any* node satisfy the predicate?"
///
/// # Examples
///
/// ```
/// use crn_core::aggregate::{Aggregate, Any};
/// let mut a = Any(false);
/// a.merge(&Any(true));
/// assert_eq!(a, Any(true));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Any(pub bool);

impl Aggregate for Any {
    fn merge(&mut self, other: &Self) {
        self.0 |= other.0;
    }
}

/// A 128-element set union over small ids (bitmask semantics): e.g.
/// "which channels did anyone observe as busy?"
///
/// # Examples
///
/// ```
/// use crn_core::aggregate::{Aggregate, BitSet};
/// let mut a = BitSet::of(3);
/// a.merge(&BitSet::of(10));
/// assert!(a.contains(3) && a.contains(10) && !a.contains(4));
/// assert_eq!(a.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct BitSet(pub u128);

impl BitSet {
    /// A singleton set.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 128`.
    pub fn of(bit: u32) -> Self {
        assert!(bit < 128, "BitSet supports ids 0..128, got {bit}");
        BitSet(1u128 << bit)
    }

    /// Membership test (false for `bit >= 128`).
    pub fn contains(self, bit: u32) -> bool {
        bit < 128 && self.0 & (1u128 << bit) != 0
    }

    /// Number of elements.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True for the empty set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl Aggregate for BitSet {
    fn merge(&mut self, other: &Self) {
        self.0 |= other.0;
    }
}

/// A fixed 16-bucket histogram, each bucket a saturating counter: the
/// distribution-shaped network snapshot from the paper's QoS use case.
///
/// # Examples
///
/// ```
/// use crn_core::aggregate::{Aggregate, Histogram16};
/// let mut h = Histogram16::of(2);
/// h.merge(&Histogram16::of(2));
/// h.merge(&Histogram16::of(15));
/// assert_eq!(h.buckets()[2], 2);
/// assert_eq!(h.buckets()[15], 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Histogram16 {
    buckets: [u32; 16],
}

impl Histogram16 {
    /// A histogram holding one observation in `bucket`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= 16`.
    pub fn of(bucket: usize) -> Self {
        assert!(bucket < 16, "bucket {bucket} out of range");
        let mut buckets = [0u32; 16];
        buckets[bucket] = 1;
        Histogram16 { buckets }
    }

    /// The bucket counters.
    pub fn buckets(&self) -> &[u32; 16] {
        &self.buckets
    }

    /// Total observations (saturating).
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|&b| b as u64).sum()
    }
}

impl Aggregate for Histogram16 {
    fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn merged<A: Aggregate>(mut a: A, b: &A) -> A {
        a.merge(b);
        a
    }

    #[test]
    fn sum_min_max_count_basics() {
        assert_eq!(merged(Sum(1), &Sum(2)), Sum(3));
        assert_eq!(merged(Min(5), &Min(9)), Min(5));
        assert_eq!(merged(Max(5), &Max(9)), Max(9));
        assert_eq!(merged(Count(3), &Count(4)), Count(7));
    }

    #[test]
    fn sum_wraps_instead_of_panicking() {
        assert_eq!(merged(Sum(u64::MAX), &Sum(2)), Sum(1));
    }

    #[test]
    fn collect_orders_values() {
        let mut c = Collect::of(9);
        c.merge(&Collect::of(1));
        c.merge(&Collect::of(5));
        assert_eq!(c.values(), &[1, 5, 9]);
    }

    #[test]
    fn collect_keeps_duplicates() {
        let mut c = Collect::of(2);
        c.merge(&Collect::of(2));
        assert_eq!(c.values(), &[2, 2]);
    }

    #[test]
    fn mean_acc_exact() {
        let mut m = MeanAcc::of(1);
        for v in 2..=9 {
            m.merge(&MeanAcc::of(v));
        }
        assert_eq!(m.mean(), 5.0);
        assert_eq!(m.count, 9);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(MeanAcc::default().mean(), 0.0);
    }

    macro_rules! assoc_comm_props {
        ($name:ident, $ty:ty, $mk:expr) => {
            proptest! {
                #[test]
                fn $name(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
                    let (x, y, z): ($ty, $ty, $ty) = ($mk(a), $mk(b), $mk(c));
                    // commutativity
                    prop_assert_eq!(merged(x.clone(), &y), merged(y.clone(), &x));
                    // associativity
                    let left = merged(merged(x.clone(), &y), &z);
                    let right = merged(x.clone(), &merged(y.clone(), &z));
                    prop_assert_eq!(left, right);
                }
            }
        };
    }

    assoc_comm_props!(prop_sum_assoc_comm, Sum, Sum);
    assoc_comm_props!(prop_min_assoc_comm, Min, Min);
    assoc_comm_props!(prop_max_assoc_comm, Max, Max);
    assoc_comm_props!(prop_count_assoc_comm, Count, Count);
    assoc_comm_props!(prop_collect_assoc_comm, Collect, Collect::of);
    assoc_comm_props!(prop_mean_assoc_comm, MeanAcc, MeanAcc::of);
    assoc_comm_props!(prop_all_assoc_comm, All, |v: u64| All(v.is_multiple_of(2)));
    assoc_comm_props!(prop_any_assoc_comm, Any, |v: u64| Any(v.is_multiple_of(2)));
    assoc_comm_props!(prop_bitset_assoc_comm, BitSet, |v: u64| BitSet::of(
        (v % 128) as u32
    ));
    assoc_comm_props!(prop_hist_assoc_comm, Histogram16, |v: u64| Histogram16::of(
        (v % 16) as usize
    ));

    #[test]
    fn all_any_truth_tables() {
        assert_eq!(merged(All(true), &All(true)), All(true));
        assert_eq!(merged(All(true), &All(false)), All(false));
        assert_eq!(merged(Any(false), &Any(false)), Any(false));
        assert_eq!(merged(Any(false), &Any(true)), Any(true));
    }

    #[test]
    fn bitset_union_semantics() {
        let mut s = BitSet::default();
        assert!(s.is_empty());
        for bit in [0u32, 64, 127] {
            s.merge(&BitSet::of(bit));
        }
        assert_eq!(s.len(), 3);
        assert!(s.contains(127));
        assert!(!s.contains(1));
        assert!(!s.contains(200), "out-of-range ids are never members");
        // Idempotent: merging the same element changes nothing.
        let before = s;
        s.merge(&BitSet::of(64));
        assert_eq!(s, before);
    }

    #[test]
    #[should_panic(expected = "0..128")]
    fn bitset_rejects_large_ids() {
        BitSet::of(128);
    }

    #[test]
    fn histogram_counts_and_saturates() {
        let mut h = Histogram16::of(0);
        let full = Histogram16 {
            buckets: [u32::MAX; 16],
        };
        h.merge(&full);
        assert_eq!(h.buckets()[0], u32::MAX, "saturating, not wrapping");
        assert_eq!(h.buckets()[1], u32::MAX);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn histogram_rejects_large_buckets() {
        Histogram16::of(16);
    }
}
