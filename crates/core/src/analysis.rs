//! The Section 4 analysis, executable: per-slot inform-probability
//! floors from Claims 1–3 and their empirical measurement.
//!
//! The proof of Theorem 4 rests on two stage-wise claims (for
//! `c ≤ n`):
//!
//! - **stage one** (≤ `c/2` informed): each informed node
//!   *independently informs* some uninformed node — same channel,
//!   no other informed node there — with probability `Ω(k/c)`
//!   (Claims 1–2);
//! - **stage two** (≥ `c/2` informed): each uninformed node becomes
//!   informed with probability `Ω(k/c)` (Claim 3).
//!
//! [`stage_floor`] gives those floors with the explicit constants the
//! proofs yield; [`measure_stage_one`] and [`measure_stage_two`]
//! estimate the corresponding empirical rates from engine traces, and
//! the tests check measurement ≥ floor. This pins the *analysis* (not
//! just the end-to-end theorem) to the implementation.

use crate::cogcast::CogCast;
use crn_sim::{ChannelModel, Network, SimError};
use serde::{Deserialize, Serialize};

/// The explicit stage floor `k/(4e·c)` for the `c ≤ n` case.
///
/// Derivation (Claims 1–2): the independent-inform probability is at
/// least `(1/c)·e^{-1}·Σ_i (1 − (1−1/c)^{min(z_i,c)})`, and the
/// channel-distribution argument lower-bounds the sum term by
/// `min{kc/4, (k/2+1)c}·(1−e^{-1})/c² ≥ k/(4c)·(1−e^{-1})`; folding
/// the constants conservatively gives `k/(4e·c)`.
///
/// # Examples
///
/// ```
/// use crn_core::analysis::stage_floor;
/// let f = stage_floor(16, 4);
/// assert!(f > 0.0 && f < 1.0);
/// assert!(stage_floor(16, 8) > f, "floor grows with k");
/// ```
pub fn stage_floor(c: usize, k: usize) -> f64 {
    k as f64 / (4.0 * std::f64::consts::E * c as f64)
}

/// An empirical stage-rate measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageRate {
    /// Number of (node, slot) opportunities observed.
    pub opportunities: u64,
    /// Number of successes among them.
    pub successes: u64,
}

impl StageRate {
    /// The empirical per-opportunity success rate.
    pub fn rate(&self) -> f64 {
        if self.opportunities == 0 {
            0.0
        } else {
            self.successes as f64 / self.opportunities as f64
        }
    }
}

/// Measures the stage-one *independent inform* rate: over all slots in
/// which at most `c/2` nodes are informed, the fraction of
/// (informed node, slot) pairs in which that node was the **only**
/// broadcaster on its channel and at least one uninformed node was
/// listening there.
///
/// Aggregates over `trials` seeded runs built by `make_model`.
///
/// # Errors
///
/// Propagates [`SimError`] from network construction.
pub fn measure_stage_one<CM: ChannelModel>(
    mut make_model: impl FnMut(u64) -> CM,
    trials: u64,
    budget: u64,
) -> Result<StageRate, SimError> {
    let mut opportunities = 0;
    let mut successes = 0;
    for seed in 0..trials {
        let model = make_model(seed);
        let n = model.n();
        let c = model.c();
        let mut protos = vec![CogCast::source(())];
        protos.extend((1..n).map(|_| CogCast::node()));
        let mut net = Network::new(model, protos, seed)?;
        for _ in 0..budget {
            let informed = net.protocols().iter().filter(|p| p.is_informed()).count();
            if informed * 2 > c || informed == n {
                break;
            }
            let activity = net.step().clone();
            opportunities += informed as u64;
            // Independent informs: channels with exactly one
            // broadcaster (all broadcasters are informed in COGCAST)
            // and at least one listener (all listeners are uninformed).
            successes += activity
                .channels
                .iter()
                .filter(|ch| ch.broadcasters.len() == 1 && !ch.listeners.is_empty())
                .count() as u64;
        }
    }
    Ok(StageRate {
        opportunities,
        successes,
    })
}

/// Measures the stage-two inform rate: over all slots in which at
/// least `c/2` nodes are informed (and not all), the fraction of
/// (uninformed node, slot) pairs in which the node became informed.
///
/// # Errors
///
/// Propagates [`SimError`] from network construction.
pub fn measure_stage_two<CM: ChannelModel>(
    mut make_model: impl FnMut(u64) -> CM,
    trials: u64,
    budget: u64,
) -> Result<StageRate, SimError> {
    let mut opportunities = 0;
    let mut successes = 0;
    for seed in 0..trials {
        let model = make_model(seed);
        let n = model.n();
        let c = model.c();
        let mut protos = vec![CogCast::source(())];
        protos.extend((1..n).map(|_| CogCast::node()));
        let mut net = Network::new(model, protos, seed)?;
        for _ in 0..budget {
            let informed = net.protocols().iter().filter(|p| p.is_informed()).count();
            if informed == n {
                break;
            }
            let in_stage_two = informed * 2 >= c;
            net.step();
            let now = net.protocols().iter().filter(|p| p.is_informed()).count();
            if in_stage_two {
                opportunities += (n - informed) as u64;
                successes += (now - informed) as u64;
            }
        }
    }
    Ok(StageRate {
        opportunities,
        successes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_sim::assignment::shared_core;
    use crn_sim::channel_model::StaticChannels;

    #[test]
    fn floor_scales_with_k_over_c() {
        assert!((stage_floor(16, 4) / stage_floor(32, 4) - 2.0).abs() < 1e-9);
        assert!((stage_floor(16, 8) / stage_floor(16, 4) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stage_one_rate_meets_the_claim_floor() {
        // c <= n as the claims require.
        let (n, c, k) = (64usize, 16usize, 4usize);
        let rate = measure_stage_one(
            |seed| StaticChannels::local(shared_core(n, c, k).unwrap(), seed),
            60,
            10_000,
        )
        .unwrap();
        assert!(rate.opportunities > 100, "not enough stage-one data");
        assert!(
            rate.rate() >= stage_floor(c, k),
            "stage one: measured {} < floor {}",
            rate.rate(),
            stage_floor(c, k)
        );
    }

    #[test]
    fn stage_two_rate_meets_the_claim_floor() {
        let (n, c, k) = (64usize, 16usize, 4usize);
        let rate = measure_stage_two(
            |seed| StaticChannels::local(shared_core(n, c, k).unwrap(), seed),
            40,
            10_000,
        )
        .unwrap();
        assert!(rate.opportunities > 100, "not enough stage-two data");
        assert!(
            rate.rate() >= stage_floor(c, k),
            "stage two: measured {} < floor {}",
            rate.rate(),
            stage_floor(c, k)
        );
    }

    #[test]
    fn rates_improve_with_k() {
        let (n, c) = (48usize, 12usize);
        let rate_at = |k: usize| {
            measure_stage_one(
                |seed| StaticChannels::local(shared_core(n, c, k).unwrap(), seed),
                40,
                10_000,
            )
            .unwrap()
            .rate()
        };
        let r1 = rate_at(1);
        let r6 = rate_at(6);
        assert!(
            r6 > r1,
            "more overlap must mean faster informs: {r1} vs {r6}"
        );
    }

    #[test]
    fn empty_measurement_rate_is_zero() {
        let r = StageRate {
            opportunities: 0,
            successes: 0,
        };
        assert_eq!(r.rate(), 0.0);
    }
}
