//! # crn-core — COGCAST and COGCOMP
//!
//! The primary contribution of *Efficient Communication in Cognitive
//! Radio Networks* (Gilbert, Kuhn, Newport, Zheng; PODC 2015):
//!
//! - [`cogcast`] — the epidemic local-broadcast protocol of Section 4,
//!   completing in `O((c/k)·max{1, c/n}·lg n)` slots w.h.p. (Theorem 4);
//! - [`cogcomp`] — the four-phase data-aggregation protocol of
//!   Section 5, completing in `O((c/k)·max{1, c/n}·lg n + n)` slots
//!   w.h.p. (Theorem 10);
//! - [`tree`] — the distribution tree COGCAST implicitly builds and
//!   COGCOMP aggregates along (Lemma 5);
//! - [`aggregate`] — associative aggregation values (min/max/sum/count,
//!   plus exact-collection helpers for testing);
//! - [`bounds`] — the theorem bounds as concrete slot budgets.
//!
//! Protocols run on the [`crn_sim`] substrate, which implements the
//! paper's Section 2 model (local channel labels, randomized collision
//! resolution with feedback).
//!
//! ## Broadcast in five lines
//!
//! ```
//! use crn_core::{bounds, cogcast::run_broadcast_default};
//! use crn_sim::{assignment::shared_core, channel_model::StaticChannels};
//!
//! let model = StaticChannels::local(shared_core(32, 8, 2)?, 42);
//! let run = run_broadcast_default(model, 42, bounds::DEFAULT_ALPHA)?;
//! assert!(run.completed());
//! # Ok::<(), crn_sim::SimError>(())
//! ```
//!
//! ## Aggregation in five lines
//!
//! ```
//! use crn_core::aggregate::Max;
//! use crn_core::cogcomp::run_aggregation_default;
//! use crn_sim::{assignment::shared_core, channel_model::StaticChannels};
//!
//! let model = StaticChannels::local(shared_core(10, 4, 2)?, 1);
//! let readings: Vec<Max> = (0..10).map(|i| Max(i * 3)).collect();
//! let run = run_aggregation_default(model, readings, 1)?;
//! assert_eq!(run.result, Some(Max(27)));
//! # Ok::<(), crn_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregate;
pub mod analysis;
pub mod bounds;
pub mod cogcast;
pub mod cogcomp;
pub mod tree;

pub use aggregate::Aggregate;
pub use cogcast::{BroadcastRun, CogCast};
pub use cogcomp::{
    AggregationRun, CogComp, CogCompConfig, CogCompMsg, ConfirmedBroadcast, Coordination,
    RepeatedAggregationRun,
};
pub use tree::{DistributionTree, TreeError};
