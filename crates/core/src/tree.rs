//! The distribution tree implicitly built by COGCAST (Section 5,
//! Lemma 5).
//!
//! Each node designates as its parent the node whose transmission first
//! informed it; since an informed node never listens again, each node is
//! informed exactly once and the parent pointers form a tree rooted at
//! the source. COGCOMP aggregates along this tree; the tests here and in
//! the integration suite verify the tree's structural invariants.

use crate::cogcast::CogCast;
use crn_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A validation failure while extracting a distribution tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// A non-root node never learned the message, so it has no parent.
    Uninformed {
        /// The node that is missing from the tree.
        node: NodeId,
    },
    /// A parent pointer escapes the node range.
    BadParent {
        /// The node with the invalid pointer.
        node: NodeId,
        /// The out-of-range parent it named.
        parent: NodeId,
    },
    /// Following parent pointers from `node` never reaches the root
    /// (a cycle, which a correct COGCAST run can never produce).
    Unrooted {
        /// A node on the cycle.
        node: NodeId,
    },
    /// A node claims to have been informed no later than its parent.
    TimeInversion {
        /// The child whose informed-slot precedes its parent's.
        node: NodeId,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Uninformed { node } => write!(f, "node {node} was never informed"),
            TreeError::BadParent { node, parent } => {
                write!(f, "node {node} names out-of-range parent {parent}")
            }
            TreeError::Unrooted { node } => {
                write!(f, "node {node} does not reach the root (cycle)")
            }
            TreeError::TimeInversion { node } => {
                write!(f, "node {node} was informed before its parent")
            }
        }
    }
}

impl Error for TreeError {}

/// The distribution tree of one COGCAST execution.
///
/// # Examples
///
/// ```
/// use crn_core::tree::DistributionTree;
/// use crn_sim::NodeId;
/// // root 0; 1 and 2 informed by 0 in slots 3 and 5.
/// let t = DistributionTree::from_parents(
///     NodeId(0),
///     vec![None, Some((NodeId(0), 3)), Some((NodeId(0), 5))],
/// )?;
/// assert_eq!(t.children(NodeId(0)), &[NodeId(1), NodeId(2)]);
/// assert_eq!(t.depth(NodeId(2)), 1);
/// # Ok::<(), crn_core::tree::TreeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributionTree {
    root: NodeId,
    /// For each node: `(parent, informed_slot)`; `None` for the root.
    parents: Vec<Option<(NodeId, u64)>>,
    /// For each node: its children sorted by id.
    children: Vec<Vec<NodeId>>,
    /// For each node: hop distance from the root.
    depths: Vec<u32>,
}

impl DistributionTree {
    /// Builds and validates a tree from per-node `(parent, slot)` data.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeError`] if a non-root node lacks a parent, a
    /// parent pointer is out of range, parent pointers contain a cycle,
    /// or a child's informed slot does not come strictly after its
    /// parent's.
    pub fn from_parents(
        root: NodeId,
        parents: Vec<Option<(NodeId, u64)>>,
    ) -> Result<Self, TreeError> {
        let n = parents.len();
        for (i, p) in parents.iter().enumerate() {
            let node = NodeId(i as u32);
            match p {
                None if node != root => return Err(TreeError::Uninformed { node }),
                Some((parent, _)) if parent.index() >= n => {
                    return Err(TreeError::BadParent {
                        node,
                        parent: *parent,
                    })
                }
                Some(_) if node == root => return Err(TreeError::BadParent { node, parent: root }),
                _ => {}
            }
        }

        // Depth computation by relaxation; a node left unset after n
        // rounds is on a cycle. O(n·height), and these trees are shallow.
        let mut depths = vec![u32::MAX; n];
        depths[root.index()] = 0;
        let mut changed = true;
        let mut rounds = 0;
        while changed {
            changed = false;
            rounds += 1;
            if rounds > n + 1 {
                // A cycle would loop forever; find a node still unset.
                let node = (0..n).find(|&i| depths[i] == u32::MAX).unwrap_or(0);
                return Err(TreeError::Unrooted {
                    node: NodeId(node as u32),
                });
            }
            for i in 0..n {
                if let Some((parent, _)) = parents[i] {
                    let pd = depths[parent.index()];
                    if pd != u32::MAX && depths[i] == u32::MAX {
                        depths[i] = pd + 1;
                        changed = true;
                    }
                }
            }
        }
        if let Some(node) = (0..n).find(|&i| depths[i] == u32::MAX) {
            return Err(TreeError::Unrooted {
                node: NodeId(node as u32),
            });
        }

        // Informed slots must strictly increase along tree edges
        // (a node can only inform others *after* the slot it was
        // informed in).
        for i in 0..n {
            if let Some((parent, slot)) = parents[i] {
                if let Some((_, pslot)) = parents[parent.index()] {
                    if pslot >= slot {
                        return Err(TreeError::TimeInversion {
                            node: NodeId(i as u32),
                        });
                    }
                }
            }
        }

        let mut children = vec![Vec::new(); n];
        for (i, p) in parents.iter().enumerate() {
            if let Some((parent, _)) = p {
                children[parent.index()].push(NodeId(i as u32));
            }
        }
        for c in &mut children {
            c.sort_unstable();
        }

        Ok(DistributionTree {
            root,
            parents,
            children,
            depths,
        })
    }

    /// Extracts the tree from a completed COGCAST run.
    ///
    /// Node `i` of `protos` must be the protocol instance of `NodeId(i)`;
    /// the source (the unique instance with no `informed` record that
    /// reports `is_source`) becomes the root.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeError`] if some node is still uninformed or the
    /// recorded parents do not form a valid tree.
    pub fn from_cogcast<M: Clone + std::fmt::Debug>(
        protos: &[CogCast<M>],
    ) -> Result<Self, TreeError> {
        let root = protos
            .iter()
            .position(|p| p.is_source())
            .map(|i| NodeId(i as u32))
            .unwrap_or(NodeId(0));
        let parents = protos
            .iter()
            .map(|p| p.informed().map(|i| (i.from, i.slot)))
            .collect();
        DistributionTree::from_parents(root, parents)
    }

    /// Extracts the tree from a completed COGCOMP run (the phase-one
    /// tree COGCOMP aggregates along).
    ///
    /// # Errors
    ///
    /// Returns a [`TreeError`] if some node never heard `Init` or the
    /// parents do not form a valid tree.
    pub fn from_cogcomp<V: crate::aggregate::Aggregate>(
        protos: &[crate::cogcomp::CogComp<V>],
    ) -> Result<Self, TreeError> {
        let root = protos
            .iter()
            .position(|p| p.is_source())
            .map(|i| NodeId(i as u32))
            .unwrap_or(NodeId(0));
        let parents = protos
            .iter()
            .map(|p| p.informed().map(|i| (i.from, i.slot)))
            .collect();
        DistributionTree::from_parents(root, parents)
    }

    /// The root (source) node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True if the tree contains only the root.
    pub fn is_empty(&self) -> bool {
        self.parents.len() <= 1
    }

    /// The parent of `node`, or `None` for the root.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parents[node.index()].map(|(p, _)| p)
    }

    /// The slot in which `node` was informed, or `None` for the root.
    pub fn informed_slot(&self, node: NodeId) -> Option<u64> {
        self.parents[node.index()].map(|(_, s)| s)
    }

    /// The children of `node`, sorted by id.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Hop distance of `node` from the root.
    pub fn depth(&self, node: NodeId) -> u32 {
        self.depths[node.index()]
    }

    /// The maximum depth over all nodes.
    pub fn height(&self) -> u32 {
        self.depths.iter().copied().max().unwrap_or(0)
    }

    /// Number of leaf nodes (nodes with no children; the root counts if
    /// alone).
    pub fn leaves(&self) -> usize {
        self.children.iter().filter(|c| c.is_empty()).count()
    }

    /// The size of the subtree rooted at `node` (including itself).
    pub fn subtree_size(&self, node: NodeId) -> usize {
        let mut size = 1;
        for &c in self.children(node) {
            size += self.subtree_size(c);
        }
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> DistributionTree {
        // 0 <- 1 <- 2 <- ... informed at slots 1, 2, ...
        let parents = (0..n)
            .map(|i| {
                if i == 0 {
                    None
                } else {
                    Some((NodeId(i as u32 - 1), i as u64))
                }
            })
            .collect();
        DistributionTree::from_parents(NodeId(0), parents).unwrap()
    }

    #[test]
    fn chain_structure() {
        let t = chain(5);
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.len(), 5);
        assert_eq!(t.height(), 4);
        assert_eq!(t.leaves(), 1);
        assert_eq!(t.depth(NodeId(3)), 3);
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(2)));
        assert_eq!(t.parent(NodeId(0)), None);
        assert_eq!(t.subtree_size(NodeId(0)), 5);
        assert_eq!(t.subtree_size(NodeId(2)), 3);
        assert_eq!(t.informed_slot(NodeId(4)), Some(4));
        assert_eq!(t.informed_slot(NodeId(0)), None);
    }

    #[test]
    fn star_structure() {
        let parents = vec![
            None,
            Some((NodeId(0), 1)),
            Some((NodeId(0), 1)),
            Some((NodeId(0), 2)),
        ];
        let t = DistributionTree::from_parents(NodeId(0), parents).unwrap();
        assert_eq!(t.children(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(t.height(), 1);
        assert_eq!(t.leaves(), 3);
    }

    #[test]
    fn uninformed_node_rejected() {
        let parents = vec![None, None];
        assert_eq!(
            DistributionTree::from_parents(NodeId(0), parents).unwrap_err(),
            TreeError::Uninformed { node: NodeId(1) }
        );
    }

    #[test]
    fn cycle_rejected() {
        let parents = vec![None, Some((NodeId(2), 5)), Some((NodeId(1), 6))];
        let err = DistributionTree::from_parents(NodeId(0), parents).unwrap_err();
        assert!(matches!(err, TreeError::Unrooted { .. }), "{err:?}");
    }

    #[test]
    fn out_of_range_parent_rejected() {
        let parents = vec![None, Some((NodeId(9), 1))];
        assert!(matches!(
            DistributionTree::from_parents(NodeId(0), parents).unwrap_err(),
            TreeError::BadParent { .. }
        ));
    }

    #[test]
    fn root_with_parent_rejected() {
        let parents = vec![Some((NodeId(1), 1)), None];
        // NodeId(0) is the declared root but has a parent.
        assert!(matches!(
            DistributionTree::from_parents(NodeId(0), parents).unwrap_err(),
            TreeError::BadParent { .. }
        ));
    }

    #[test]
    fn time_inversion_rejected() {
        // Node 2 informed at slot 3 by node 1, which was informed at
        // slot 5: impossible.
        let parents = vec![None, Some((NodeId(0), 5)), Some((NodeId(1), 3))];
        assert_eq!(
            DistributionTree::from_parents(NodeId(0), parents).unwrap_err(),
            TreeError::TimeInversion { node: NodeId(2) }
        );
    }

    #[test]
    fn equal_slot_on_edge_rejected() {
        let parents = vec![None, Some((NodeId(0), 4)), Some((NodeId(1), 4))];
        assert!(matches!(
            DistributionTree::from_parents(NodeId(0), parents).unwrap_err(),
            TreeError::TimeInversion { .. }
        ));
    }

    #[test]
    fn singleton_tree() {
        let t = DistributionTree::from_parents(NodeId(0), vec![None]).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.leaves(), 1);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn nonzero_root_supported() {
        let parents = vec![Some((NodeId(2), 1)), Some((NodeId(2), 2)), None];
        let t = DistributionTree::from_parents(NodeId(2), parents).unwrap();
        assert_eq!(t.root(), NodeId(2));
        assert_eq!(t.children(NodeId(2)), &[NodeId(0), NodeId(1)]);
    }

    #[test]
    fn error_display_mentions_node() {
        let e = TreeError::Uninformed { node: NodeId(7) };
        assert!(e.to_string().contains("n7"));
    }

    #[test]
    fn from_cogcomp_extracts_the_phase_one_tree() {
        use crate::aggregate::Count;
        use crate::bounds;
        use crate::cogcomp::{CogComp, CogCompConfig};
        use crn_sim::assignment::shared_core;
        use crn_sim::channel_model::StaticChannels;
        use crn_sim::Network;

        let (n, c, k) = (18usize, 5usize, 2usize);
        let cfg = CogCompConfig::new(n, c, k, bounds::DEFAULT_ALPHA);
        let model = StaticChannels::local(shared_core(n, c, k).unwrap(), 6);
        let mut protos = vec![CogComp::source(cfg, Count(1))];
        protos.extend((1..n).map(|_| CogComp::node(cfg, Count(1))));
        let mut net = Network::new(model, protos, 6).unwrap();
        assert!(net.run_to_completion(cfg.recommended_budget()).is_done());
        let protos = net.into_protocols();

        let tree = DistributionTree::from_cogcomp(&protos).unwrap();
        assert_eq!(tree.root(), NodeId(0));
        assert_eq!(tree.subtree_size(tree.root()), n);
        // Every node's informer-cluster count equals its child-cluster
        // structure: the sum of children counts across nodes is n - 1.
        let edges: usize = (0..n).map(|i| tree.children(NodeId(i as u32)).len()).sum();
        assert_eq!(edges, n - 1);
    }
}
