//! Closed-form slot budgets from the paper's theorem statements.
//!
//! These functions turn the asymptotic bounds into concrete slot counts
//! with an explicit constant (`alpha`), so that protocols know how long
//! to run and experiments can compare measured completion times against
//! the predicted shapes.

/// `lg n` as used throughout the paper, floored at 1 so bounds never
/// degenerate for tiny `n`.
///
/// # Examples
///
/// ```
/// use crn_core::bounds::lg;
/// assert_eq!(lg(1), 1.0);
/// assert_eq!(lg(2), 1.0);
/// assert_eq!(lg(1024), 10.0);
/// ```
pub fn lg(n: usize) -> f64 {
    (n.max(2) as f64).log2().max(1.0)
}

/// The COGCAST budget of Theorem 4:
/// `alpha · (c/k) · max{1, c/n} · lg n` slots, rounded up.
///
/// `alpha` absorbs the constant hidden in the `Θ(·)`; the experiments in
/// this repository use `alpha = 10` by default (see
/// [`DEFAULT_ALPHA`]), which makes completion within the budget
/// empirically "with high probability" across all tested `(n, c, k)`.
///
/// # Panics
///
/// Panics if `k == 0` or `k > c` or `n == 0`.
///
/// # Examples
///
/// ```
/// use crn_core::bounds::cogcast_slots;
/// // n >= c: the bound reduces to (c/k)·lg n.
/// let t = cogcast_slots(1024, 16, 4, 1.0);
/// assert_eq!(t, 40);
/// ```
pub fn cogcast_slots(n: usize, c: usize, k: usize, alpha: f64) -> u64 {
    assert!(n >= 1, "n must be at least 1");
    assert!(k >= 1 && k <= c, "need 1 <= k <= c (k = {k}, c = {c})");
    let c_f = c as f64;
    let k_f = k as f64;
    let n_f = n as f64;
    let bound = alpha * (c_f / k_f) * (c_f / n_f).max(1.0) * lg(n);
    bound.ceil().max(1.0) as u64
}

/// The COGCOMP budget of Theorem 10:
/// `alpha · (c/k) · max{1, c/n} · lg n + beta · n` slots.
///
/// # Panics
///
/// Panics on the same parameter violations as [`cogcast_slots`].
///
/// # Examples
///
/// ```
/// use crn_core::bounds::{cogcast_slots, cogcomp_slots};
/// let t = cogcomp_slots(100, 10, 2, 1.0, 1.0);
/// assert_eq!(t, cogcast_slots(100, 10, 2, 1.0) + 100);
/// ```
pub fn cogcomp_slots(n: usize, c: usize, k: usize, alpha: f64, beta: f64) -> u64 {
    cogcast_slots(n, c, k, alpha) + (beta * n as f64).ceil() as u64
}

/// The rendezvous-broadcast baseline bound from the introduction:
/// `alpha · (c²/k) · lg n` slots (randomized rendezvous, each of the
/// `n − 1` receivers must meet the source; high probability costs the
/// extra `lg n`).
///
/// # Panics
///
/// Panics if `k == 0` or `k > c` or `n == 0`.
///
/// # Examples
///
/// ```
/// use crn_core::bounds::rendezvous_broadcast_slots;
/// assert_eq!(rendezvous_broadcast_slots(4, 4, 2, 1.0), 16);
/// ```
pub fn rendezvous_broadcast_slots(n: usize, c: usize, k: usize, alpha: f64) -> u64 {
    assert!(n >= 1, "n must be at least 1");
    assert!(k >= 1 && k <= c, "need 1 <= k <= c (k = {k}, c = {c})");
    let bound = alpha * (c * c) as f64 / k as f64 * lg(n);
    bound.ceil().max(1.0) as u64
}

/// The rendezvous-aggregation baseline bound from the introduction:
/// `alpha · (c²·n/k)` slots (fair contention: each of the `n − 1`
/// senders must win a rendezvous with the source).
///
/// # Panics
///
/// Panics if `k == 0` or `k > c` or `n == 0`.
///
/// # Examples
///
/// ```
/// use crn_core::bounds::rendezvous_aggregation_slots;
/// assert_eq!(rendezvous_aggregation_slots(10, 4, 2, 1.0), 80);
/// ```
pub fn rendezvous_aggregation_slots(n: usize, c: usize, k: usize, alpha: f64) -> u64 {
    assert!(n >= 1, "n must be at least 1");
    assert!(k >= 1 && k <= c, "need 1 <= k <= c (k = {k}, c = {c})");
    let bound = alpha * (c * c) as f64 * n as f64 / k as f64;
    bound.ceil().max(1.0) as u64
}

/// The Lemma 11 lower bound for the `(c,k)`-bipartite hitting game:
/// `c²/(αk)` with `α = 2(β/(β−1))²` for the `k ≤ c/β` regime.
///
/// # Examples
///
/// ```
/// use crn_core::bounds::hitting_game_floor;
/// // β = 2 gives α = 8.
/// assert_eq!(hitting_game_floor(16, 2, 2.0), (256.0 / (8.0 * 2.0)) as u64);
/// ```
pub fn hitting_game_floor(c: usize, k: usize, beta: f64) -> u64 {
    let alpha = 2.0 * (beta / (beta - 1.0)).powi(2);
    ((c * c) as f64 / (alpha * k as f64)).floor() as u64
}

/// The Theorem 16 expectation floor for global-label broadcast:
/// `(c+1)/(k+1)` slots before the source first lands on an overlapping
/// channel in the shared-core setup.
///
/// # Examples
///
/// ```
/// use crn_core::bounds::global_label_floor;
/// assert!((global_label_floor(9, 4) - 2.0).abs() < 1e-9);
/// ```
pub fn global_label_floor(c: usize, k: usize) -> f64 {
    (c as f64 + 1.0) / (k as f64 + 1.0)
}

/// Default `alpha` used by the experiments when sizing COGCAST budgets.
pub const DEFAULT_ALPHA: f64 = 10.0;

/// Default `beta` (phase-four headroom multiplier) for COGCOMP budgets.
pub const DEFAULT_BETA: f64 = 4.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lg_is_floored() {
        assert_eq!(lg(0), 1.0);
        assert_eq!(lg(1), 1.0);
        assert_eq!(lg(2), 1.0);
        assert!((lg(8) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cogcast_slots_reduces_when_n_ge_c() {
        // For n >= c, bound = alpha*(c/k)*lg n.
        let t = cogcast_slots(256, 8, 2, 2.0);
        assert_eq!(t, (2.0f64 * 4.0 * 8.0).ceil() as u64);
    }

    #[test]
    fn cogcast_slots_inflates_when_c_gt_n() {
        let small = cogcast_slots(16, 16, 4, 1.0);
        let big = cogcast_slots(16, 64, 4, 1.0);
        // c/n factor kicks in: 64/16 = 4 times more channels than nodes.
        assert!(big > small * 4, "big={big}, small={small}");
    }

    #[test]
    fn cogcast_slots_monotone_in_k_inverse() {
        let k1 = cogcast_slots(100, 20, 1, 1.0);
        let k5 = cogcast_slots(100, 20, 5, 1.0);
        let k20 = cogcast_slots(100, 20, 20, 1.0);
        assert!(k1 > k5 && k5 > k20);
        // 1/k scaling (within ceil rounding).
        assert!((k1 as i64 - (k5 as i64) * 5).abs() <= 5, "k1={k1}, k5={k5}");
    }

    #[test]
    #[should_panic(expected = "1 <= k <= c")]
    fn cogcast_slots_rejects_k_zero() {
        cogcast_slots(10, 4, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "1 <= k <= c")]
    fn cogcast_slots_rejects_k_gt_c() {
        cogcast_slots(10, 4, 5, 1.0);
    }

    #[test]
    fn cogcomp_adds_linear_term() {
        let base = cogcast_slots(64, 8, 2, 3.0);
        assert_eq!(cogcomp_slots(64, 8, 2, 3.0, 2.0), base + 128);
    }

    #[test]
    fn baseline_bounds_dominate_cogcast_for_large_c() {
        // The paper's headline claim: COGCAST is a factor c faster.
        let n = 1024;
        for c in [8usize, 32, 128] {
            let k = 2;
            let ours = cogcast_slots(n, c, k, 1.0);
            let theirs = rendezvous_broadcast_slots(n, c, k, 1.0);
            assert_eq!(theirs, ours * c as u64);
        }
    }

    #[test]
    fn hitting_game_floor_beta_two() {
        // α = 8 at β = 2.
        assert_eq!(hitting_game_floor(32, 4, 2.0), 1024 / 32);
    }

    #[test]
    fn global_label_floor_matches_formula() {
        assert!((global_label_floor(15, 3) - 4.0).abs() < 1e-12);
        assert!((global_label_floor(1, 1) - 1.0).abs() < 1e-12);
    }
}
